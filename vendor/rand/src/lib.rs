//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface the code needs: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on determinism under a fixed
//! seed, which this implementation provides: same seed ⇒ same sequence,
//! stable across platforms and releases of this vendored copy.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation (the `gen_range` subset).
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform-range sampling machinery (mirrors `rand::distributions::uniform`).
pub mod distributions {
    /// Range sampling traits.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draw one sample; panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                        (self.start as i128 + hi) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                        (lo as i128 + off) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        let v = self.start as f64
                            + (self.end as f64 - self.start as f64) * unit;
                        // Guard against rounding up to the excluded endpoint.
                        if v as $t >= self.end {
                            self.start
                        } else {
                            v as $t
                        }
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }
}

/// Concrete RNG types.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs for why this
    /// is acceptable here (determinism, not stream compatibility, is the
    /// contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = r.gen_range(0..2);
            assert!(w == 0 || w == 1);
            let x = r.gen_range(0..=4u8);
            assert!(x <= 4);
            let y = r.gen_range(-3..3i64);
            assert!((-3..3).contains(&y));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
            let w: f64 = r.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut r = StdRng::seed_from_u64(6);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
