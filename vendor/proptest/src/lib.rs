//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the same surface the tests are written against — the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, `collection::vec`, `option::of`, `Just`, `prop_map`, and
//! `prop_flat_map` — implemented as seeded random-case generation.
//! Differences from upstream: no shrinking of failing cases (the failing
//! inputs are printed via the assertion message instead), and case
//! generation is deterministic per test name, so failures reproduce.

#![warn(missing_docs)]

/// Test-runner configuration and errors.
pub mod test_runner {
    /// Per-test configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The RNG driving case generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Deterministic per-test RNG (FNV-1a over the test name).
    pub fn rng_for(test_name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a strategy from it, then its value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy yielding a fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Vector length specification: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)` — vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option<S::Value>` (≈50% `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..2) == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `of(strategy)` — optional values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $argpat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 0usize..5).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn flat_map_and_just_compose(
            (a, b) in pair(),
            opt in crate::option::of(0u64..10),
        ) {
            prop_assert!(b >= a);
            if let Some(v) = opt {
                prop_assert!(v < 10);
            }
            prop_assert_eq!(a, b - (b - a));
        }

        #[test]
        fn early_return_ok_works(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 5);
        let mut r1 = crate::test_runner::rng_for("x");
        let mut r2 = crate::test_runner::rng_for("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
