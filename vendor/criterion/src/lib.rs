//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! crates.io is unreachable in the build environment, so the bench
//! targets link against this minimal harness instead: same macros and
//! builder-style API (`benchmark_group`, `bench_with_input`, `iter`),
//! honest wall-clock measurement (configurable warm-up and measurement
//! windows, mean/min/max over timed batches), plain-text reporting. No
//! statistical regression analysis, HTML reports, or plotting.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (a configuration holder here).
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            _criterion: self,
        }
    }
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness is time-budgeted, not
    /// sample-count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Record throughput for subsequent benchmarks (display-only here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, self.warm_up, self.measurement, |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// End the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Conversion of the various id forms criterion accepts.
pub trait IntoBenchId {
    /// The display id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    phase: Phase,
    /// Batch timings collected during measurement.
    samples: Vec<Duration>,
    /// Iterations per timed batch.
    batch: u64,
    deadline: Instant,
}

enum Phase {
    WarmUp,
    Measure,
}

impl Bencher {
    /// Run `routine` repeatedly until the current phase's time budget is
    /// spent, timing batches of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.phase {
            Phase::WarmUp => {
                let mut iters: u64 = 0;
                let start = Instant::now();
                while Instant::now() < self.deadline {
                    std::hint::black_box(routine());
                    iters += 1;
                }
                // Pick a batch size targeting ~10ms per timed batch.
                let elapsed = start.elapsed().as_secs_f64().max(1e-9);
                let per_iter = elapsed / iters.max(1) as f64;
                self.batch = ((0.01 / per_iter) as u64).clamp(1, 1_000_000);
            }
            Phase::Measure => {
                while Instant::now() < self.deadline {
                    let start = Instant::now();
                    for _ in 0..self.batch {
                        std::hint::black_box(routine());
                    }
                    let dt = start.elapsed();
                    self.samples.push(dt / self.batch.max(1) as u32);
                }
            }
        }
    }
}

fn run_one<F>(name: &str, warm_up: Duration, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        phase: Phase::WarmUp,
        samples: Vec::new(),
        batch: 1,
        deadline: Instant::now() + warm_up,
    };
    f(&mut b);
    b.phase = Phase::Measure;
    b.deadline = Instant::now() + measurement;
    f(&mut b);

    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
