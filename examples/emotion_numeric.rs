//! Numeric truth inference: the N_Emotion scenario.
//!
//! Workers score the emotional intensity of texts in `[-100, 100]`. This
//! example runs all five numeric methods of the benchmark (Figure 6 /
//! Table 6) and reproduces the paper's humbling finding: the plain Mean
//! is extremely hard to beat, because worker variances cannot be
//! estimated accurately enough from 700 tasks and part of the error is
//! shared across the crowd anyway.
//!
//! Run with: `cargo run --release --example emotion_numeric`

use crowd_truth::data::datasets::PaperDataset;
use crowd_truth::data::subsample_redundancy;
use crowd_truth::prelude::*;

fn main() {
    // Full scale: 700 tasks, 38 workers, 10 answers per task.
    let dataset = PaperDataset::NEmotion.generate(1.0, 31);
    println!(
        "N_Emotion (simulated): {} texts, {} workers, redundancy {:.0}\n",
        dataset.num_tasks(),
        dataset.num_workers(),
        dataset.redundancy()
    );

    let options = InferenceOptions::seeded(3);
    println!("complete data (Table 6's numeric columns):");
    println!("  {:8} {:>8} {:>8}", "method", "MAE", "RMSE");
    for method in [
        Method::Catd,
        Method::Pm,
        Method::LfcN,
        Method::Mean,
        Method::Median,
    ] {
        let result = method
            .build()
            .infer(&dataset, &options)
            .expect("numeric supported");
        println!(
            "  {:8} {:>8.2} {:>8.2}",
            method.name(),
            mae(&dataset, &result.truths),
            rmse(&dataset, &result.truths),
        );
    }

    // Figure 6's shape: error versus redundancy for Mean and LFC_N.
    println!("\nerror vs redundancy (Figure 6's shape):");
    println!("  {:>3} {:>10} {:>10}", "r", "Mean MAE", "LFC_N MAE");
    for r in [1, 2, 4, 6, 8, 10] {
        let sub = subsample_redundancy(&dataset, r, 100 + r as u64);
        let mean = MeanAgg.infer(&sub, &options).expect("numeric");
        let lfcn = LfcN::default().infer(&sub, &options).expect("numeric");
        println!(
            "  {:>3} {:>10.2} {:>10.2}",
            r,
            mae(&sub, &mean.truths),
            mae(&sub, &lfcn.truths),
        );
    }
    println!(
        "\n(the curves flatten after r ≈ 6 and Mean stays competitive — the paper's\n \
         conclusion that numeric truth inference is not well-solved)"
    );
}
