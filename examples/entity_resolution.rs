//! Entity resolution at scale: the D_Product scenario.
//!
//! The paper's introduction motivates truth inference with crowdsourced
//! entity resolution — "are these two product listings the same item?" —
//! where 'same' pairs are rare (≈13%) and workers are much better at
//! spotting differences than confirming sameness. This example:
//!
//! 1. simulates a D_Product-style answer log,
//! 2. runs the direct baseline (MV), a worker-probability method (ZC),
//!    and two confusion-matrix methods (D&S, LFC),
//! 3. reports Accuracy *and* F1 — the metric that actually matters under
//!    class imbalance — reproducing the paper's headline finding that
//!    confusion-matrix methods win on F1,
//! 4. inspects a learned confusion matrix to show the asymmetry
//!    (`q_FF > q_TT`) the paper explains in §6.3.1,
//! 5. exports the log in the authors' TSV format.
//!
//! Run with: `cargo run --release --example entity_resolution`

use crowd_truth::data::datasets::PaperDataset;
use crowd_truth::prelude::*;

fn main() {
    // 20% scale keeps this example snappy; pass full 1.0 for Table 5 sizes.
    let dataset = PaperDataset::DProduct.generate(0.2, 42);
    println!(
        "D_Product (simulated): {} pairs, {} workers, {} answers, redundancy {:.0}",
        dataset.num_tasks(),
        dataset.num_workers(),
        dataset.num_answers(),
        dataset.redundancy()
    );
    let positives = dataset
        .truths()
        .iter()
        .filter(|t| matches!(t, Some(crowd_truth::data::Answer::Label(0))))
        .count();
    println!(
        "truth balance: {} same / {} different\n",
        positives,
        dataset.num_truths() - positives
    );

    let options = InferenceOptions::seeded(7);
    println!("{:10} {:>9} {:>9}", "method", "Accuracy", "F1-score");
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(Mv),
        Box::new(Zc::default()),
        Box::new(Ds),
        Box::new(Lfc::default()),
    ];
    for method in &methods {
        let result = method
            .infer(&dataset, &options)
            .expect("method supports decision-making");
        println!(
            "{:10} {:>8.2}% {:>8.2}%",
            method.name(),
            100.0 * accuracy(&dataset, &result.truths),
            100.0 * f1_score(&dataset, &result.truths),
        );
    }

    // Peek inside D&S: the confusion matrix of the most prolific worker.
    let ds = Ds.infer(&dataset, &options).expect("D&S runs");
    let busiest = (0..dataset.num_workers())
        .max_by_key(|&w| dataset.worker_degree(w))
        .expect("non-empty worker set");
    if let WorkerQuality::Confusion(m) = &ds.worker_quality[busiest] {
        println!(
            "\nbusiest worker (w{busiest}, {} answers) confusion matrix:",
            dataset.worker_degree(busiest)
        );
        println!("              answers T   answers F");
        println!("  truth T      {:>8.2}    {:>8.2}", m[0][0], m[0][1]);
        println!("  truth F      {:>8.2}    {:>8.2}", m[1][0], m[1][1]);
        println!(
            "  (the paper's §6.3.1: q_FF ({:.2}) > q_TT ({:.2}) — spotting a difference\n   \
             is easier than confirming sameness, which is why a single-probability\n   \
             worker model underfits here)",
            m[1][1], m[0][0]
        );
    }

    // Export in the release TSV format.
    let dir = std::env::temp_dir().join("crowd_truth_d_product");
    let path = crowd_truth::data::io::write_tsv(&dataset, &dir).expect("export TSV");
    println!("\nanswer log exported to {}", path.display());
}
