//! Sentiment analysis with golden tasks: the D_PosSent scenario.
//!
//! Reproduces both golden-task mechanisms of the paper on a simulated
//! tweet-sentiment dataset:
//!
//! - **qualification test** (§6.3.2): bootstrap 20 scored answers per
//!   worker and initialise worker qualities from them;
//! - **hidden test** (§6.3.3): reveal the truth of p% of tasks to the
//!   method and evaluate on the rest.
//!
//! Run with: `cargo run --release --example sentiment_golden`

use crowd_truth::core::QualityInit;
use crowd_truth::data::datasets::PaperDataset;
use crowd_truth::data::{bootstrap_qualification, GoldenSplit};
use crowd_truth::metrics::accuracy_on;
use crowd_truth::prelude::*;

fn main() {
    let dataset = PaperDataset::DPosSent.generate(0.5, 99);
    println!(
        "D_PosSent (simulated): {} tweets, {} workers, redundancy {:.0}\n",
        dataset.num_tasks(),
        dataset.num_workers(),
        dataset.redundancy()
    );

    // --- Qualification test -------------------------------------------
    println!("qualification test (20 golden tasks per worker, §6.3.2):");
    let qual = bootstrap_qualification(&dataset, 20, 5);
    let scored = qual.accuracy.iter().flatten().count();
    println!("  scored {} of {} workers", scored, dataset.num_workers());

    let plain = InferenceOptions::seeded(5);
    let with_qual = InferenceOptions {
        quality_init: QualityInit::Qualification(qual.accuracy.clone()),
        ..InferenceOptions::seeded(5)
    };
    println!(
        "  {:6} {:>12} {:>12} {:>8}",
        "method", "no qual", "with qual", "delta"
    );
    for method in [
        Method::Zc,
        Method::Ds,
        Method::Lfc,
        Method::Pm,
        Method::Catd,
    ] {
        let base = method
            .build()
            .infer(&dataset, &plain)
            .expect("decision-making supported");
        let qualed = method
            .build()
            .infer(&dataset, &with_qual)
            .expect("decision-making supported");
        let a0 = accuracy(&dataset, &base.truths);
        let a1 = accuracy(&dataset, &qualed.truths);
        println!(
            "  {:6} {:>11.2}% {:>11.2}% {:>+7.2}%",
            method.name(),
            100.0 * a0,
            100.0 * a1,
            100.0 * (a1 - a0)
        );
    }
    println!(
        "  (the paper's finding: with 20 answers per task the benefit is marginal —\n   \
         worker quality is already identifiable without supervision)\n"
    );

    // --- Hidden test ---------------------------------------------------
    println!("hidden test (reveal p% of truths, evaluate on the rest, §6.3.3):");
    println!(
        "  {:6} {:>8} {:>8} {:>8}",
        "method", "p=0%", "p=20%", "p=50%"
    );
    for method in [Method::Zc, Method::Ds, Method::Catd] {
        let mut row = format!("  {:6}", method.name());
        for p in [0.0, 0.2, 0.5] {
            let split = GoldenSplit::sample(&dataset, p, 17);
            let opts = InferenceOptions {
                golden: (p > 0.0).then(|| split.revealed.clone()),
                ..InferenceOptions::seeded(17)
            };
            let result = method.build().infer(&dataset, &opts).expect("supported");
            let acc = accuracy_on(&dataset, &result.truths, Some(&split.eval));
            row.push_str(&format!(" {:>7.2}%", 100.0 * acc));
        }
        println!("{row}");
    }
}
