//! Quickstart: the paper's running example (Tables 1–2, Section 3).
//!
//! Six entity-resolution tasks answered by three workers of varying
//! quality. Majority Voting gets `t6` wrong and flips a coin on `t1`;
//! PM models worker quality and recovers all six truths.
//!
//! Run with: `cargo run --example quickstart`

use crowd_truth::prelude::*;

fn main() {
    let dataset = crowd_truth::data::toy::paper_example();
    println!(
        "Dataset: {} tasks, {} workers, {} answers\n",
        dataset.num_tasks(),
        dataset.num_workers(),
        dataset.num_answers()
    );

    let options = InferenceOptions::seeded(11);

    // Majority voting: the baseline the paper starts from.
    let mv = Mv
        .infer(&dataset, &options)
        .expect("MV runs on categorical data");
    // PM: the optimization method Section 3 walks through.
    let pm = Pm::default()
        .infer(&dataset, &options)
        .expect("PM runs on categorical data");

    println!("task   MV    PM    truth");
    for task in 0..dataset.num_tasks() {
        let fmt = |a: &crowd_truth::data::Answer| {
            if a.label() == Some(0) {
                "T"
            } else {
                "F"
            }
        };
        let truth = dataset.truth(task).expect("toy example has full truth");
        println!(
            "t{}     {}     {}     {}",
            task + 1,
            fmt(&mv.truths[task]),
            fmt(&pm.truths[task]),
            fmt(&truth),
        );
    }

    println!("\nMV accuracy: {:.2}", accuracy(&dataset, &mv.truths));
    println!("PM accuracy: {:.2}", accuracy(&dataset, &pm.truths));

    println!("\nPM worker qualities (w3 is the careful worker):");
    for (w, q) in pm.worker_quality.iter().enumerate() {
        println!("  w{}: {:.2}", w + 1, q.scalar().unwrap_or(0.0));
    }
}
