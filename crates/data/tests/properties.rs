//! Property-based tests of the data substrate: builder/dataset adjacency
//! invariants, redundancy sub-sampling, golden splits, and simulator
//! marginals under arbitrary configurations.

use proptest::prelude::*;

use crowd_data::{
    subsample_redundancy, CrowdSimulator, DatasetBuilder, GoldenSplit, HardTaskMode,
    SimulatorConfig, TaskType, WorkerModel,
};

/// Random but valid simulator configurations.
fn arb_config() -> impl Strategy<Value = SimulatorConfig> {
    (
        5usize..40,  // tasks
        3usize..12,  // workers
        1usize..3,   // redundancy (bounded below workers)
        2u8..5,      // choices
        0.0f64..0.3, // spammers
        0.0f64..1.5, // zipf
        0.2f64..1.0, // truth fraction
        0.0f64..0.5, // hard fraction
    )
        .prop_map(
            |(tasks, workers, redundancy, choices, spam, zipf, truth_frac, hard)| SimulatorConfig {
                name: "prop".into(),
                task_type: TaskType::SingleChoice { choices },
                num_tasks: tasks,
                num_workers: workers,
                redundancy: redundancy.min(workers),
                truth_prior: vec![1.0 / choices as f64; choices as usize],
                worker_model: WorkerModel::OneCoin {
                    alpha: 4.0,
                    beta: 2.0,
                },
                spammer_fraction: spam,
                zipf_exponent: zipf,
                truth_fraction: truth_frac,
                numeric_task_offset_std: 0.0,
                hard_task_fraction: hard,
                hard_task_accuracy: 0.3,
                hard_task_mode: HardTaskMode::Flatten,
                truth_only_on_hard: false,
                heavy_worker_model: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the configuration, the generated dataset satisfies the
    /// structural invariants: exact redundancy, distinct workers per
    /// task, degrees consistent with the log, labels in range.
    #[test]
    fn simulator_output_is_structurally_valid(cfg in arb_config(), seed in 0u64..1000) {
        let redundancy = cfg.redundancy;
        let choices = cfg.task_type.num_choices().unwrap();
        let d = CrowdSimulator::new(cfg, seed).generate();

        prop_assert_eq!(d.num_answers(), d.num_tasks() * redundancy);
        let mut degree_sum = 0usize;
        for t in 0..d.num_tasks() {
            let mut ws: Vec<usize> = d.answers_for_task(t).map(|r| r.worker).collect();
            prop_assert_eq!(ws.len(), redundancy);
            ws.sort_unstable();
            ws.dedup();
            prop_assert_eq!(ws.len(), redundancy, "duplicate worker on task {}", t);
        }
        for w in 0..d.num_workers() {
            degree_sum += d.worker_degree(w);
        }
        prop_assert_eq!(degree_sum, d.num_answers());
        for r in d.records() {
            prop_assert!(r.answer.label().unwrap() < choices);
        }
        for truth in d.truths().iter().flatten() {
            prop_assert!(truth.label().unwrap() < choices);
        }
    }

    /// Sub-sampling at any r keeps per-task degrees at min(r, degree) and
    /// never invents records.
    #[test]
    fn subsample_degrees_are_capped(cfg in arb_config(), seed in 0u64..100, r in 1usize..6) {
        let d = CrowdSimulator::new(cfg, seed).generate();
        let sub = subsample_redundancy(&d, r, seed);
        for t in 0..d.num_tasks() {
            prop_assert_eq!(sub.task_degree(t), d.task_degree(t).min(r));
        }
        prop_assert!(sub.num_answers() <= d.num_answers());
    }

    /// Golden splits partition the truth-labelled tasks for any fraction.
    #[test]
    fn golden_split_partitions(cfg in arb_config(), seed in 0u64..100, frac in 0.0f64..1.0) {
        let d = CrowdSimulator::new(cfg, seed).generate();
        let split = GoldenSplit::sample(&d, frac, seed);
        let total = d.num_truths();
        prop_assert_eq!(split.golden.len() + split.eval.len(), total);
        let mut all: Vec<usize> = split.golden.iter().chain(&split.eval).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), total, "overlap between golden and eval");
        for &t in &split.golden {
            prop_assert!(split.revealed[t].is_some());
        }
    }

    /// The builder accepts any permutation of valid inserts and the
    /// adjacency always matches the record log.
    #[test]
    fn builder_adjacency_matches_log(
        edges in proptest::collection::vec((0usize..15, 0usize..8, 0u8..3), 0..80),
    ) {
        let mut b = DatasetBuilder::new("p", TaskType::SingleChoice { choices: 3 }, 15, 8);
        let mut seen = std::collections::HashSet::new();
        let mut inserted = 0usize;
        for (t, w, l) in edges {
            if seen.insert((t, w)) {
                b.add_label(t, w, l).unwrap();
                inserted += 1;
            } else {
                prop_assert!(b.add_label(t, w, l).is_err(), "duplicate must be rejected");
            }
        }
        let d = b.build();
        prop_assert_eq!(d.num_answers(), inserted);
        let by_task: usize = (0..15).map(|t| d.task_degree(t)).sum();
        let by_worker: usize = (0..8).map(|w| d.worker_degree(w)).sum();
        prop_assert_eq!(by_task, inserted);
        prop_assert_eq!(by_worker, inserted);
    }

    /// Simulators are pure functions of (config, seed).
    #[test]
    fn simulator_is_deterministic(cfg in arb_config(), seed in 0u64..200) {
        let a = CrowdSimulator::new(cfg.clone(), seed).generate();
        let b = CrowdSimulator::new(cfg, seed).generate();
        prop_assert_eq!(a.records(), b.records());
        prop_assert_eq!(a.truths(), b.truths());
    }
}
