//! The core data model: tasks, workers, answers, and ground truth.
//!
//! Notation follows Table 3 of the paper: a dataset holds the answer set
//! `V = {v_i^w}`, and exposes `W_i` (workers that answered task `t_i`) and
//! `T^w` (tasks answered by worker `w`) as precomputed adjacency lists so
//! every method's two-step iteration is a linear scan.

use crate::error::DataError;

/// The kind of tasks a dataset contains (Definition 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskType {
    /// Two-choice true/false tasks (label 0 = 'T', label 1 = 'F' by the
    /// convention used throughout this workspace).
    DecisionMaking,
    /// Single-choice tasks with a fixed number of candidate choices.
    SingleChoice {
        /// Number of candidate choices (the paper's `ℓ`).
        choices: u8,
    },
    /// Tasks answered with a real number (e.g. N_Emotion's score in
    /// `[-100, 100]`).
    Numeric,
}

impl TaskType {
    /// Number of categorical choices, or `None` for numeric tasks.
    pub fn num_choices(&self) -> Option<u8> {
        match self {
            Self::DecisionMaking => Some(2),
            Self::SingleChoice { choices } => Some(*choices),
            Self::Numeric => None,
        }
    }

    /// Whether answers are categorical labels.
    pub fn is_categorical(&self) -> bool {
        !matches!(self, Self::Numeric)
    }
}

/// One answer value (Definition 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Answer {
    /// A categorical choice, `0 ≤ label < ℓ`. For decision-making tasks
    /// label 0 is 'T' (the positive class for F1) and label 1 is 'F'.
    Label(u8),
    /// A numeric value.
    Numeric(f64),
}

impl Answer {
    /// The label if categorical.
    pub fn label(&self) -> Option<u8> {
        match self {
            Self::Label(l) => Some(*l),
            Self::Numeric(_) => None,
        }
    }

    /// The numeric value if numeric.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Self::Numeric(v) => Some(*v),
            Self::Label(_) => None,
        }
    }
}

/// The positive-class label ('T') for decision-making tasks.
pub const LABEL_TRUE: u8 = 0;
/// The negative-class label ('F') for decision-making tasks.
pub const LABEL_FALSE: u8 = 1;

/// One row of the answer log: worker `worker` answered task `task` with
/// `answer` (the paper's `v_i^w`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerRecord {
    /// Dense task index in `0..num_tasks`.
    pub task: usize,
    /// Dense worker index in `0..num_workers`.
    pub worker: usize,
    /// The answer value.
    pub answer: Answer,
}

/// An immutable crowdsourcing dataset: the answer log plus adjacency and
/// (possibly partial) ground truth.
///
/// Construct via [`crate::DatasetBuilder`], the simulators in
/// [`crate::datasets`], or [`crate::io::read_tsv`].
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    task_type: TaskType,
    num_tasks: usize,
    num_workers: usize,
    records: Vec<AnswerRecord>,
    /// Indices into `records`, grouped by task (the paper's `W_i`).
    by_task: Vec<Vec<u32>>,
    /// Indices into `records`, grouped by worker (the paper's `T^w`).
    by_worker: Vec<Vec<u32>>,
    /// Ground truth per task; `None` where unknown (S_Rel and S_Adult
    /// publish truth only for a subset of tasks).
    truths: Vec<Option<Answer>>,
    /// Cached `max_i |W_i|` — computed once at build so sweep planners
    /// and shard sizers don't re-scan the adjacency per call.
    max_task_degree: usize,
    /// Cached `|V|/n` (0 for the empty-task-universe degenerate case).
    redundancy: f64,
}

impl Dataset {
    /// Internal constructor used by the builder (which has already
    /// validated everything).
    pub(crate) fn from_parts(
        name: String,
        task_type: TaskType,
        num_tasks: usize,
        num_workers: usize,
        records: Vec<AnswerRecord>,
        truths: Vec<Option<Answer>>,
    ) -> Self {
        let mut by_task: Vec<Vec<u32>> = vec![Vec::new(); num_tasks];
        let mut by_worker: Vec<Vec<u32>> = vec![Vec::new(); num_workers];
        for (idx, r) in records.iter().enumerate() {
            by_task[r.task].push(idx as u32);
            by_worker[r.worker].push(idx as u32);
        }
        let max_task_degree = by_task.iter().map(|t| t.len()).max().unwrap_or(0);
        let redundancy = if num_tasks == 0 {
            0.0
        } else {
            records.len() as f64 / num_tasks as f64
        };
        Self {
            name,
            task_type,
            num_tasks,
            num_workers,
            records,
            by_task,
            by_worker,
            truths,
            max_task_degree,
            redundancy,
        }
    }

    /// Dataset name (e.g. `"D_Product"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task type.
    pub fn task_type(&self) -> TaskType {
        self.task_type
    }

    /// Number of categorical choices `ℓ`, or `None` for numeric datasets.
    pub fn num_choices(&self) -> Option<u8> {
        self.task_type.num_choices()
    }

    /// Number of tasks `n`.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of workers `|W|`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of collected answers `|V|`.
    pub fn num_answers(&self) -> usize {
        self.records.len()
    }

    /// Average answers per task, the paper's `|V|/n` (Table 5).
    /// Cached at build time — O(1).
    pub fn redundancy(&self) -> f64 {
        self.redundancy
    }

    /// The full answer log.
    pub fn records(&self) -> &[AnswerRecord] {
        &self.records
    }

    /// Answers for task `i` (the paper's `{v_i^w : w ∈ W_i}`).
    pub fn answers_for_task(&self, task: usize) -> impl Iterator<Item = &AnswerRecord> + '_ {
        self.by_task[task]
            .iter()
            .map(move |&idx| &self.records[idx as usize])
    }

    /// Answers by worker `w` (the paper's `{v_i^w : t_i ∈ T^w}`).
    pub fn answers_by_worker(&self, worker: usize) -> impl Iterator<Item = &AnswerRecord> + '_ {
        self.by_worker[worker]
            .iter()
            .map(move |&idx| &self.records[idx as usize])
    }

    /// Number of workers that answered task `i` (`|W_i|`).
    pub fn task_degree(&self, task: usize) -> usize {
        self.by_task[task].len()
    }

    /// Number of tasks worker `w` answered (`|T^w|`).
    pub fn worker_degree(&self, worker: usize) -> usize {
        self.by_worker[worker].len()
    }

    /// The largest `|W_i|` over all tasks — the true upper bound of a
    /// redundancy sweep's x-axis. On ragged logs this exceeds the
    /// *rounded mean* redundancy ([`Dataset::redundancy`]), which would
    /// silently truncate the axis. Cached at build time — O(1).
    pub fn max_task_degree(&self) -> usize {
        self.max_task_degree
    }

    /// Ground truth of task `i`, if known.
    pub fn truth(&self, task: usize) -> Option<Answer> {
        self.truths[task]
    }

    /// All ground truths (indexed by task; `None` = unknown).
    pub fn truths(&self) -> &[Option<Answer>] {
        &self.truths
    }

    /// Number of tasks with known ground truth (Table 5's `#truth`).
    pub fn num_truths(&self) -> usize {
        self.truths.iter().filter(|t| t.is_some()).count()
    }

    /// Validate a candidate answer against the task type.
    pub fn check_answer(&self, answer: &Answer) -> Result<(), DataError> {
        match (self.task_type, answer) {
            (TaskType::Numeric, Answer::Numeric(_)) => Ok(()),
            (TaskType::Numeric, Answer::Label(_)) => Err(DataError::AnswerKindMismatch {
                detail: "label answer on a numeric dataset".into(),
            }),
            (t, Answer::Label(l)) => {
                let choices = t.num_choices().expect("categorical");
                if *l < choices {
                    Ok(())
                } else {
                    Err(DataError::LabelOutOfRange {
                        label: *l,
                        num_choices: choices,
                    })
                }
            }
            (_, Answer::Numeric(_)) => Err(DataError::AnswerKindMismatch {
                detail: "numeric answer on a categorical dataset".into(),
            }),
        }
    }

    /// Produce a copy of this dataset that keeps only the given answer
    /// records (used by the redundancy sub-sampling protocol). Ground
    /// truth, task/worker universe and name are preserved.
    pub fn with_records(&self, records: Vec<AnswerRecord>) -> Self {
        Self::from_parts(
            self.name.clone(),
            self.task_type,
            self.num_tasks,
            self.num_workers,
            records,
            self.truths.clone(),
        )
    }

    /// Produce a copy with a different truth vector (used by hidden-test
    /// experiments to blank out truths that should not be visible).
    ///
    /// # Panics
    /// Panics if `truths.len() != num_tasks`.
    pub fn with_truths(&self, truths: Vec<Option<Answer>>) -> Self {
        assert_eq!(truths.len(), self.num_tasks, "truth vector length mismatch");
        let mut copy = self.clone();
        copy.truths = truths;
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new("tiny", TaskType::DecisionMaking, 3, 2);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(0, 1, 1).unwrap();
        b.add_label(1, 0, 1).unwrap();
        b.add_label(2, 1, 0).unwrap();
        b.set_truth_label(0, 0).unwrap();
        b.set_truth_label(1, 1).unwrap();
        b.build()
    }

    #[test]
    fn adjacency_matches_log() {
        let d = tiny();
        assert_eq!(d.num_answers(), 4);
        assert_eq!(d.task_degree(0), 2);
        assert_eq!(d.task_degree(1), 1);
        assert_eq!(d.task_degree(2), 1);
        assert_eq!(d.worker_degree(0), 2);
        assert_eq!(d.worker_degree(1), 2);
        let w_for_t0: Vec<usize> = d.answers_for_task(0).map(|r| r.worker).collect();
        assert_eq!(w_for_t0, vec![0, 1]);
        let t_for_w1: Vec<usize> = d.answers_by_worker(1).map(|r| r.task).collect();
        assert_eq!(t_for_w1, vec![0, 2]);
    }

    #[test]
    fn redundancy_is_answers_over_tasks() {
        let d = tiny();
        assert!((d.redundancy() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_task_degree_exceeds_rounded_mean_on_ragged_logs() {
        // Degrees 2/1/1: mean 4/3 rounds to 1, but one task has 2
        // answers — the sweep x-axis must reach 2, not 1.
        let d = tiny();
        assert_eq!(d.max_task_degree(), 2);
        assert_eq!(d.redundancy().round() as usize, 1);
        // Degenerate: a dataset with no answers.
        let empty = DatasetBuilder::new("e", TaskType::DecisionMaking, 2, 1).build();
        assert_eq!(empty.max_task_degree(), 0);
    }

    #[test]
    fn cached_degree_stats_pinned_on_ragged_log() {
        // The cached values must equal the scan-on-demand results they
        // replaced: degrees 2/1/1 → max 2, |V|/n = 4/3; and derived
        // copies must refresh (with_records) or preserve (with_truths)
        // them correctly.
        let d = tiny();
        assert_eq!(d.max_task_degree(), 2);
        assert!((d.redundancy() - 4.0 / 3.0).abs() < 1e-15);
        let sub = d.with_records(d.records()[..1].to_vec());
        assert_eq!(sub.max_task_degree(), 1);
        assert!((sub.redundancy() - 1.0 / 3.0).abs() < 1e-15);
        let blanked = d.with_truths(vec![None; 3]);
        assert_eq!(blanked.max_task_degree(), 2);
        assert!((blanked.redundancy() - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn partial_truth_counted() {
        let d = tiny();
        assert_eq!(d.num_truths(), 2);
        assert_eq!(d.truth(0), Some(Answer::Label(0)));
        assert_eq!(d.truth(2), None);
    }

    #[test]
    fn check_answer_enforces_kinds_and_ranges() {
        let d = tiny();
        assert!(d.check_answer(&Answer::Label(1)).is_ok());
        assert!(matches!(
            d.check_answer(&Answer::Label(2)),
            Err(DataError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            d.check_answer(&Answer::Numeric(1.0)),
            Err(DataError::AnswerKindMismatch { .. })
        ));
    }

    #[test]
    fn with_records_preserves_universe() {
        let d = tiny();
        let kept: Vec<AnswerRecord> = d
            .records()
            .iter()
            .filter(|r| r.worker == 0)
            .copied()
            .collect();
        let sub = d.with_records(kept);
        assert_eq!(sub.num_tasks(), 3);
        assert_eq!(sub.num_workers(), 2);
        assert_eq!(sub.num_answers(), 2);
        assert_eq!(sub.truth(0), Some(Answer::Label(0)));
    }

    #[test]
    fn task_type_choices() {
        assert_eq!(TaskType::DecisionMaking.num_choices(), Some(2));
        assert_eq!(TaskType::SingleChoice { choices: 4 }.num_choices(), Some(4));
        assert_eq!(TaskType::Numeric.num_choices(), None);
        assert!(TaskType::DecisionMaking.is_categorical());
        assert!(!TaskType::Numeric.is_categorical());
    }
}
