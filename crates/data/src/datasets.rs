//! Statistically matched stand-ins for the paper's five datasets (Table 5).
//!
//! The authors' raw answer logs are no longer downloadable, so each
//! function here configures the [`CrowdSimulator`] with the *published*
//! marginals of the corresponding dataset:
//!
//! | Dataset   | n      | \|V\|   | \|V\|/n | \|W\| | type             |
//! |-----------|--------|---------|---------|-------|------------------|
//! | D_Product | 8,315  | 24,945  | 3       | 176   | decision-making  |
//! | D_PosSent | 1,000  | 20,000  | 20      | 85    | decision-making  |
//! | S_Rel     | 20,232 | 98,453  | 4.9     | 766   | single-choice (4)|
//! | S_Adult   | 11,040 | 92,721  | 8.4     | 825   | single-choice (4)|
//! | N_Emotion | 700    | 7,000   | 10      | 38    | numeric          |
//!
//! plus the qualitative structure reported in Sections 6.1–6.2 (truth
//! balance, long-tail participation, per-worker accuracy distributions,
//! the class-asymmetric error structure of D_Product, and S_Adult's
//! heavy-worker pathology). See `DESIGN.md` §5 for the substitution
//! argument. Every generator takes a `scale ∈ (0, 1]` so tests and quick
//! runs can use proportionally smaller instances, and a seed.

use crate::generator::{CrowdSimulator, HardTaskMode, SimulatorConfig, WorkerModel};
use crate::model::{Dataset, TaskType};

/// Identifier for one of the paper's five datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Entity resolution over product pairs (decision-making).
    DProduct,
    /// Tweet sentiment toward a company (decision-making).
    DPosSent,
    /// TREC topic/document relevance, 4 choices (single-choice).
    SRel,
    /// Website adult-content rating G/PG/R/X, 4 choices (single-choice).
    SAdult,
    /// Emotion score of a text in `[-100, 100]` (numeric).
    NEmotion,
}

impl PaperDataset {
    /// All five datasets, in the paper's order.
    pub const ALL: [PaperDataset; 5] = [
        PaperDataset::DProduct,
        PaperDataset::DPosSent,
        PaperDataset::SRel,
        PaperDataset::SAdult,
        PaperDataset::NEmotion,
    ];

    /// The paper's name for the dataset.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DProduct => "D_Product",
            Self::DPosSent => "D_PosSent",
            Self::SRel => "S_Rel",
            Self::SAdult => "S_Adult",
            Self::NEmotion => "N_Emotion",
        }
    }

    /// Generate the simulated dataset at the given scale.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        match self {
            Self::DProduct => d_product(scale, seed),
            Self::DPosSent => d_possent(scale, seed),
            Self::SRel => s_rel(scale, seed),
            Self::SAdult => s_adult(scale, seed),
            Self::NEmotion => n_emotion(scale, seed),
        }
    }

    /// The simulator configuration at the given scale (exposed for
    /// diagnostics and tests).
    pub fn config(&self, scale: f64) -> SimulatorConfig {
        match self {
            Self::DProduct => d_product_config(scale),
            Self::DPosSent => d_possent_config(scale),
            Self::SRel => s_rel_config(scale),
            Self::SAdult => s_adult_config(scale),
            Self::NEmotion => n_emotion_config(scale),
        }
    }

    /// The task type of this dataset.
    pub fn task_type(&self) -> TaskType {
        match self {
            Self::DProduct | Self::DPosSent => TaskType::DecisionMaking,
            Self::SRel | Self::SAdult => TaskType::SingleChoice { choices: 4 },
            Self::NEmotion => TaskType::Numeric,
        }
    }
}

fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

/// D_Product: entity resolution (CrowdER data). 8,315 tasks, 176 workers,
/// redundancy 3. Truth is imbalanced — 1,101 'T' vs 7,034 'F' on the 8,135
/// labelled pairs (prior ≈ 0.135 : 0.865). Workers have the asymmetric
/// error profile the paper calls out in §6.3.1(4): spotting one difference
/// settles a "different" pair (high `q_FF`), while a "same" pair needs
/// every feature checked (low `q_TT`). Per-worker average accuracy ≈ 0.79
/// (Figure 3a).
fn d_product_config(scale: f64) -> SimulatorConfig {
    SimulatorConfig {
        name: "D_Product".into(),
        task_type: TaskType::DecisionMaking,
        num_tasks: scaled(8315, scale, 60),
        num_workers: scaled(176, scale, 12),
        redundancy: 3,
        truth_prior: vec![0.135, 0.865],
        // label 0 = 'T' (same entity): hard, mean diag ≈ 0.62;
        // label 1 = 'F' (different): easy, mean diag ≈ 0.82.
        // Average accuracy ≈ 0.135·0.62 + 0.865·0.82 ≈ 0.79.
        // Wide spread on the hard 'T' class: some workers check every
        // feature (q_TT near 1), many give up early (q_TT near chance).
        // The spread is what lets confusion-matrix methods pull ahead of
        // MV on F1 (Table 6: D&S 71.6% vs MV 59.1%).
        worker_model: WorkerModel::ClassConditional {
            diag: vec![(1.55, 0.95), (8.5, 1.5)],
        },
        spammer_fraction: 0.02,
        zipf_exponent: 1.1,
        truth_fraction: 1.0,
        numeric_task_offset_std: 0.0,
        // A small share of genuinely ambiguous pairs caps MV near the
        // paper's 89.7%.
        hard_task_fraction: 0.04,
        hard_task_accuracy: 0.35,
        hard_task_mode: HardTaskMode::Flatten,
        truth_only_on_hard: false,
        heavy_worker_model: None,
    }
}

/// Build D_Product at the given scale.
pub fn d_product(scale: f64, seed: u64) -> Dataset {
    CrowdSimulator::new(d_product_config(scale), seed).generate()
}

/// D_PosSent: tweet sentiment. 1,000 tasks, 85 workers, redundancy 20,
/// nearly balanced truth (528 : 472). Workers passed a qualification test,
/// so quality is high and symmetric (average accuracy 0.79, Figure 3b);
/// with 20 answers per task every reasonable method saturates ≈ 96%
/// accuracy, which is exactly the paper's finding.
fn d_possent_config(scale: f64) -> SimulatorConfig {
    SimulatorConfig {
        name: "D_PosSent".into(),
        task_type: TaskType::DecisionMaking,
        num_tasks: scaled(1000, scale, 60),
        num_workers: scaled(85, scale, 25),
        redundancy: 20,
        truth_prior: vec![0.528, 0.472],
        worker_model: WorkerModel::OneCoin {
            alpha: 11.1,
            beta: 2.9,
        }, // mean ≈ 0.79
        spammer_fraction: 0.04,
        zipf_exponent: 0.9,
        truth_fraction: 1.0,
        numeric_task_offset_std: 0.0,
        // Ambiguous tweets: the crowd majority is wrong on ~4–5% of
        // tasks, capping every method near the paper's 96% ceiling
        // despite 20 answers per task.
        hard_task_fraction: 0.05,
        hard_task_accuracy: 0.30,
        hard_task_mode: HardTaskMode::Flatten,
        truth_only_on_hard: false,
        // The most prolific workers are noticeably sloppier than the
        // average (mean ≈ 0.62): per-answer agreement drops toward the
        // paper's highly inconsistent C = 0.85 while the unweighted
        // per-worker average stays ≈ 0.79 (Figure 3b).
        heavy_worker_model: Some((
            6,
            WorkerModel::OneCoin {
                alpha: 6.2,
                beta: 3.8,
            },
        )),
    }
}

/// Build D_PosSent at the given scale.
pub fn d_possent(scale: f64, seed: u64) -> Dataset {
    CrowdSimulator::new(d_possent_config(scale), seed).generate()
}

/// S_Rel: TREC relevance judging, 4 choices. 20,232 tasks (truth published
/// for 4,460), 766 workers, redundancy ≈ 4.9. Workers are poor — average
/// accuracy 0.53 with a wide spread and many near-chance workers (Figure
/// 3c) — which is why method quality tops out around 60% and methods
/// sensitive to low-quality workers (ZC, CATD) degrade (§6.3.1).
fn s_rel_config(scale: f64) -> SimulatorConfig {
    SimulatorConfig {
        name: "S_Rel".into(),
        task_type: TaskType::SingleChoice { choices: 4 },
        num_tasks: scaled(20232, scale, 80),
        num_workers: scaled(766, scale, 30),
        redundancy: 5,
        // relevance skews toward the two "relevant" grades in TREC crowd
        // data; mild imbalance keeps MV honest.
        truth_prior: vec![0.35, 0.30, 0.25, 0.10],
        // Label-asymmetric confusion: judges mix up *adjacent* relevance
        // grades far more than distant ones, and over-call "relevant".
        // Population accuracy ≈ 0.54 (Figure 3c's average of 0.53); the
        // asymmetry is what confusion-matrix methods exploit and one-coin
        // models cannot (§6.3.4).
        worker_model: WorkerModel::ConfusionMatrix {
            base: vec![
                vec![0.55, 0.30, 0.12, 0.03],
                vec![0.22, 0.45, 0.28, 0.05],
                vec![0.05, 0.25, 0.62, 0.08],
                vec![0.04, 0.08, 0.28, 0.60],
            ],
            concentration: 10.0,
        },
        spammer_fraction: 0.12,
        zipf_exponent: 1.2,
        truth_fraction: 4460.0 / 20232.0,
        numeric_task_offset_std: 0.0,
        // Topic/document relevance is often borderline: a third of the
        // tasks are hard, raising the consistency statistic toward the
        // paper's C = 0.82 and keeping method accuracy in the 45–62%
        // band of Figure 5(a).
        hard_task_fraction: 0.42,
        // Scale mode: good judges stay relatively better on borderline
        // documents, so worker-modelling methods keep their edge (the
        // paper's D&S/LFC/BCC > MV ordering on S_Rel).
        hard_task_accuracy: 0.55,
        hard_task_mode: HardTaskMode::Scale,
        truth_only_on_hard: false,
        heavy_worker_model: None,
    }
}

/// Build S_Rel at the given scale.
pub fn s_rel(scale: f64, seed: u64) -> Dataset {
    CrowdSimulator::new(s_rel_config(scale), seed).generate()
}

/// S_Adult: website adult-content rating, 4 choices. 11,040 tasks (truth
/// for 1,517), 825 workers, redundancy ≈ 8.4. The paper's striking
/// signature: the answer log is the *most consistent* of the four
/// categorical datasets (C = 0.39) yet every method is stuck at ≈36%
/// accuracy, within a 1.2-point band. That combination requires the gold
/// subset to sit on tasks where the crowd is collectively near-blind:
/// most pages are obvious 'G's the crowd agrees on (and which carry no
/// gold), while the 1,517 gold tasks are the genuinely hard rating
/// decisions where per-answer accuracy barely beats the 25% chance
/// level — so no reweighting scheme can separate methods there.
fn s_adult_config(scale: f64) -> SimulatorConfig {
    SimulatorConfig {
        name: "S_Adult".into(),
        task_type: TaskType::SingleChoice { choices: 4 },
        num_tasks: scaled(11040, scale, 80),
        num_workers: scaled(825, scale, 30),
        redundancy: 8,
        truth_prior: vec![0.55, 0.20, 0.15, 0.10],
        // On the easy majority of pages workers are near-unanimous.
        worker_model: WorkerModel::OneCoin {
            alpha: 12.0,
            beta: 2.1,
        },
        spammer_fraction: 0.03,
        zipf_exponent: 1.3,
        truth_fraction: 1.0, // unused: truth_only_on_hard
        numeric_task_offset_std: 0.0,
        hard_task_fraction: 1517.0 / 11040.0,
        hard_task_accuracy: 0.31,
        hard_task_mode: HardTaskMode::Flatten,
        truth_only_on_hard: true,
        heavy_worker_model: None,
    }
}

/// Build S_Adult at the given scale.
pub fn s_adult(scale: f64, seed: u64) -> Dataset {
    CrowdSimulator::new(s_adult_config(scale), seed).generate()
}

/// N_Emotion: emotion scoring in `[-100, 100]`. 700 tasks, 38 workers,
/// redundancy 10. Per-worker RMSE ranges over `[20, 45]` with average
/// 28.9 (Figure 3e); workers carry idiosyncratic bias, which is what keeps
/// the variance-weighting methods (LFC_N, CATD, PM) from beating plain
/// Mean (§6.3.1 numeric summary).
fn n_emotion_config(scale: f64) -> SimulatorConfig {
    SimulatorConfig {
        name: "N_Emotion".into(),
        task_type: TaskType::Numeric,
        num_tasks: scaled(700, scale, 50),
        num_workers: scaled(38, scale, 12),
        redundancy: 10,
        truth_prior: vec![-100.0, 100.0],
        // Noise decomposition (RMS): 12 shared per-task, 7 per-worker
        // bias, 16–34 per-answer. This lands the paper's three anchors
        // together — per-worker RMSE in [20, 45] averaging ≈29 (Fig 3e),
        // Mean RMSE ≈ 15–18 (Table 6), consistency C in the low 20s
        // (§6.2.1) — which no decomposition matches exactly (see
        // EXPERIMENTS.md).
        worker_model: WorkerModel::Numeric {
            bias_std: 8.0,
            sigma_lo: 18.0,
            sigma_hi: 36.0,
        },
        spammer_fraction: 0.0,
        zipf_exponent: 0.6,
        truth_fraction: 1.0,
        numeric_task_offset_std: 14.0,
        hard_task_fraction: 0.0,
        hard_task_accuracy: 0.5,
        hard_task_mode: HardTaskMode::Flatten,
        truth_only_on_hard: false,
        heavy_worker_model: None,
    }
}

/// Build N_Emotion at the given scale.
pub fn n_emotion(scale: f64, seed: u64) -> Dataset {
    CrowdSimulator::new(n_emotion_config(scale), seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Answer;

    #[test]
    fn full_scale_matches_table_5() {
        // Shapes only (cheap to verify without generating the big logs).
        let p = d_product_config(1.0);
        assert_eq!(p.num_tasks, 8315);
        assert_eq!(p.num_workers, 176);
        assert_eq!(p.redundancy, 3);

        let s = d_possent_config(1.0);
        assert_eq!(s.num_tasks, 1000);
        assert_eq!(s.num_workers, 85);
        assert_eq!(s.redundancy, 20);

        let r = s_rel_config(1.0);
        assert_eq!(r.num_tasks, 20232);
        assert_eq!(r.num_workers, 766);

        let a = s_adult_config(1.0);
        assert_eq!(a.num_tasks, 11040);
        assert_eq!(a.num_workers, 825);

        let e = n_emotion_config(1.0);
        assert_eq!(e.num_tasks, 700);
        assert_eq!(e.num_workers, 38);
        assert_eq!(e.redundancy, 10);
    }

    #[test]
    fn d_product_truth_imbalance() {
        let d = d_product(0.25, 1);
        let pos = d
            .truths()
            .iter()
            .filter(|t| matches!(t, Some(Answer::Label(0))))
            .count();
        let frac = pos as f64 / d.num_tasks() as f64;
        assert!((frac - 0.135).abs() < 0.03, "positive fraction {frac}");
    }

    #[test]
    fn d_product_worker_accuracy_near_079() {
        let d = d_product(0.25, 2);
        // Aggregate per-worker accuracy (unweighted mean over workers with
        // at least one answer), as in Figure 3a.
        let mut accs = Vec::new();
        for w in 0..d.num_workers() {
            let mut total = 0usize;
            let mut correct = 0usize;
            for r in d.answers_by_worker(w) {
                if let Some(t) = d.truth(r.task) {
                    total += 1;
                    if r.answer == t {
                        correct += 1;
                    }
                }
            }
            if total > 0 {
                accs.push(correct as f64 / total as f64);
            }
        }
        let avg = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!((avg - 0.79).abs() < 0.06, "avg worker accuracy {avg}");
    }

    #[test]
    fn s_rel_workers_are_poor() {
        let d = s_rel(0.1, 3);
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in d.records() {
            if let Some(t) = d.truth(r.task) {
                total += 1;
                if r.answer == t {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.35 && acc < 0.60, "per-answer accuracy {acc}");
    }

    #[test]
    fn s_adult_gold_tasks_are_collectively_hard() {
        let d = s_adult(0.2, 4);
        // Per-answer accuracy *on the gold subset* is near the hard-task
        // level — the crowd is blind exactly where the evaluation looks,
        // which is what pins every method at ≈36% in Table 6.
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in d.records() {
            if let Some(t) = d.truth(r.task) {
                total += 1;
                if r.answer == t {
                    correct += 1;
                }
            }
        }
        let gold_acc = correct as f64 / total as f64;
        assert!(
            gold_acc < 0.40,
            "gold per-answer accuracy {gold_acc} should be near 0.27"
        );
        // Meanwhile overall answers are highly consistent (most tasks are
        // easy): agreement with the per-task majority is high.
        let mut agree = 0usize;
        let mut seen = 0usize;
        for task in 0..d.num_tasks() {
            let mut counts = [0usize; 4];
            for r in d.answers_for_task(task) {
                counts[r.answer.label().unwrap() as usize] += 1;
            }
            let maj = counts.iter().copied().max().unwrap();
            let deg: usize = counts.iter().sum();
            agree += maj;
            seen += deg;
        }
        let consistency = agree as f64 / seen as f64;
        assert!(
            consistency > 0.75,
            "majority agreement {consistency} should be high"
        );
    }

    #[test]
    fn n_emotion_worker_rmse_band() {
        let d = n_emotion(1.0, 5);
        let mut rmses = Vec::new();
        for w in 0..d.num_workers() {
            let mut sq = 0.0;
            let mut c = 0usize;
            for r in d.answers_by_worker(w) {
                let t = d.truth(r.task).unwrap().numeric().unwrap();
                sq += (r.answer.numeric().unwrap() - t).powi(2);
                c += 1;
            }
            if c > 0 {
                rmses.push((sq / c as f64).sqrt());
            }
        }
        let avg = rmses.iter().sum::<f64>() / rmses.len() as f64;
        assert!((avg - 28.9).abs() < 6.0, "avg worker RMSE {avg}");
    }

    #[test]
    fn all_iterates_every_dataset() {
        for ds in PaperDataset::ALL {
            let d = ds.generate(0.02, 9);
            assert!(d.num_tasks() > 0, "{} generated empty", ds.name());
            assert_eq!(d.task_type(), ds.task_type());
        }
    }
}
