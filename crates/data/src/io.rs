//! TSV IO in the format of the authors' published release.
//!
//! The paper's code release ships each dataset as an answer file with
//! header `question\tworker\tanswer` and a truth file with header
//! `question\ttruth`. This module reads and writes that format so the
//! real datasets can replace the simulators when available, and so our
//! simulated logs can be exported for use with the original Python code.
//!
//! Task and worker identifiers are arbitrary strings in the files and are
//! densified to `0..n` indices on load (first-appearance order).

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::builder::DatasetBuilder;
use crate::error::DataError;
use crate::model::{Answer, Dataset, TaskType};

/// Read a dataset from an answer TSV and an optional truth TSV.
///
/// `task_type` decides how the `answer` column is parsed: as a label index
/// for categorical types, as an `f64` for numeric. Lines are
/// `task \t worker \t answer`; a single header line is skipped when its
/// first field is not parseable as data (i.e. always for our files).
pub fn read_tsv(
    answers_path: &Path,
    truths_path: Option<&Path>,
    task_type: TaskType,
    name: &str,
) -> Result<Dataset, DataError> {
    let answer_rows = read_rows(answers_path, 3)?;
    let truth_rows = match truths_path {
        Some(p) => read_rows(p, 2)?,
        None => Vec::new(),
    };

    let mut task_ids: HashMap<String, usize> = HashMap::new();
    let mut worker_ids: HashMap<String, usize> = HashMap::new();
    for row in &answer_rows {
        let next = task_ids.len();
        task_ids.entry(row[0].clone()).or_insert(next);
        let next = worker_ids.len();
        worker_ids.entry(row[1].clone()).or_insert(next);
    }
    // Truth files may mention tasks that received no answers; they still
    // belong to the task universe.
    for row in &truth_rows {
        let next = task_ids.len();
        task_ids.entry(row[0].clone()).or_insert(next);
    }

    let mut builder = DatasetBuilder::new(name, task_type, task_ids.len(), worker_ids.len());
    for (line, row) in answer_rows.iter().enumerate() {
        let task = task_ids[&row[0]];
        let worker = worker_ids[&row[1]];
        let answer = parse_answer(&row[2], task_type, line + 2)?;
        builder.add_answer(task, worker, answer)?;
    }
    for (line, row) in truth_rows.iter().enumerate() {
        let task = task_ids[&row[0]];
        let truth = parse_answer(&row[1], task_type, line + 2)?;
        builder.set_truth(task, truth)?;
    }
    Ok(builder.build())
}

/// Write `dataset` as `answers.tsv` (+ `truths.tsv` when any truth is
/// known) into `dir`, in the release format. Returns the answer-file path.
pub fn write_tsv(dataset: &Dataset, dir: &Path) -> Result<std::path::PathBuf, DataError> {
    std::fs::create_dir_all(dir)?;
    let answers_path = dir.join("answers.tsv");
    let mut out = BufWriter::new(std::fs::File::create(&answers_path)?);
    writeln!(out, "question\tworker\tanswer")?;
    for r in dataset.records() {
        writeln!(out, "t{}\tw{}\t{}", r.task, r.worker, fmt_answer(&r.answer))?;
    }
    out.flush()?;

    if dataset.num_truths() > 0 {
        let truths_path = dir.join("truths.tsv");
        let mut out = BufWriter::new(std::fs::File::create(&truths_path)?);
        writeln!(out, "question\ttruth")?;
        for (task, truth) in dataset.truths().iter().enumerate() {
            if let Some(t) = truth {
                writeln!(out, "t{}\t{}", task, fmt_answer(t))?;
            }
        }
        out.flush()?;
    }
    Ok(answers_path)
}

fn fmt_answer(a: &Answer) -> String {
    match a {
        Answer::Label(l) => l.to_string(),
        Answer::Numeric(v) => format!("{v}"),
    }
}

fn parse_answer(s: &str, task_type: TaskType, line: usize) -> Result<Answer, DataError> {
    if task_type.is_categorical() {
        let label: u8 = s.parse().map_err(|_| DataError::Parse {
            line,
            detail: format!("expected label index, got {s:?}"),
        })?;
        Ok(Answer::Label(label))
    } else {
        let v: f64 = s.parse().map_err(|_| DataError::Parse {
            line,
            detail: format!("expected numeric answer, got {s:?}"),
        })?;
        Ok(Answer::Numeric(v))
    }
}

/// Read the rows of a TSV file, skipping the first line if it looks like a
/// header (non-numeric last field) and validating the column count.
fn read_rows(path: &Path, cols: usize) -> Result<Vec<Vec<String>>, DataError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut rows = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<String> = trimmed.split('\t').map(|f| f.to_string()).collect();
        if i == 0
            && fields
                .last()
                .map(|f| f.parse::<f64>().is_err())
                .unwrap_or(false)
        {
            continue; // header
        }
        if fields.len() != cols {
            return Err(DataError::Parse {
                line: i + 1,
                detail: format!("expected {cols} tab-separated fields, got {}", fields.len()),
            });
        }
        rows.push(fields);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::toy::paper_example;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd_io_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_categorical() {
        let dir = tmpdir("cat");
        let d = paper_example();
        write_tsv(&d, &dir).unwrap();
        let loaded = read_tsv(
            &dir.join("answers.tsv"),
            Some(&dir.join("truths.tsv")),
            TaskType::DecisionMaking,
            "roundtrip",
        )
        .unwrap();
        assert_eq!(loaded.num_tasks(), d.num_tasks());
        assert_eq!(loaded.num_workers(), d.num_workers());
        assert_eq!(loaded.num_answers(), d.num_answers());
        assert_eq!(loaded.num_truths(), d.num_truths());
        // Answer multiset must survive (indices may permute, values not).
        let mut a: Vec<String> = d.records().iter().map(|r| fmt_answer(&r.answer)).collect();
        let mut b: Vec<String> = loaded
            .records()
            .iter()
            .map(|r| fmt_answer(&r.answer))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roundtrip_numeric() {
        let dir = tmpdir("num");
        let d = datasets::n_emotion(0.1, 5);
        write_tsv(&d, &dir).unwrap();
        let loaded = read_tsv(
            &dir.join("answers.tsv"),
            Some(&dir.join("truths.tsv")),
            TaskType::Numeric,
            "roundtrip",
        )
        .unwrap();
        assert_eq!(loaded.num_answers(), d.num_answers());
        assert_eq!(loaded.num_truths(), d.num_truths());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_malformed_rows() {
        let dir = tmpdir("bad");
        let p = dir.join("answers.tsv");
        std::fs::write(&p, "question\tworker\tanswer\nt0\tw0\n").unwrap();
        let err = read_tsv(&p, None, TaskType::DecisionMaking, "bad");
        assert!(matches!(err, Err(DataError::Parse { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_label() {
        let dir = tmpdir("badlabel");
        let p = dir.join("answers.tsv");
        std::fs::write(&p, "question\tworker\tanswer\nt0\tw0\tseven\n").unwrap();
        let err = read_tsv(&p, None, TaskType::DecisionMaking, "bad");
        assert!(matches!(err, Err(DataError::Parse { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_tsv(
            Path::new("/definitely/not/here.tsv"),
            None,
            TaskType::DecisionMaking,
            "x",
        );
        assert!(matches!(err, Err(DataError::Io(_))));
    }
}
