//! # crowd-data — data model and dataset substrate for truth inference
//!
//! The benchmark paper evaluates on five real crowdsourcing answer logs
//! (Table 5). This crate provides:
//!
//! - the **data model** (tasks, workers, answers, ground truth) with the
//!   adjacency structure the methods iterate over — the paper's `V`,
//!   `W_i` (workers that answered task `t_i`) and `T^w` (tasks answered
//!   by worker `w`);
//! - a configurable **crowd simulator** ([`generator`]) that produces
//!   answer logs with controlled worker-quality distributions, long-tail
//!   worker participation (Figure 2) and class-conditional error structure;
//! - **statistically matched stand-ins** for the paper's five datasets
//!   ([`datasets`]) — the real logs are no longer downloadable, so each
//!   module bakes in the published marginals (task counts, worker counts,
//!   redundancy, truth balance, worker-accuracy distributions);
//! - **golden-task machinery** ([`golden`]): qualification-test bootstrap
//!   (Section 6.3.2) and hidden-test splits (Section 6.3.3);
//! - the paper's **redundancy sub-sampling** protocol ([`redundancy`],
//!   Section 6.3.1);
//! - **TSV IO** ([`io`]) compatible with the authors' published format, so
//!   the real data drops in when available;
//! - the paper's **running example** ([`toy`], Tables 1–2).

#![warn(missing_docs)]

pub mod assignment;
pub mod builder;
pub mod datasets;
pub mod error;
pub mod generator;
pub mod golden;
pub mod io;
pub mod model;
pub mod redundancy;
pub mod toy;

pub use assignment::{collect, AssignmentStrategy, CollectionRun, StreamBatch, StreamSession};
pub use builder::DatasetBuilder;
pub use error::DataError;
pub use generator::{CrowdSimulator, HardTaskMode, SimulatorConfig, StreamSim, WorkerModel};
pub use golden::{bootstrap_qualification, GoldenSplit, QualificationResult};
pub use model::{Answer, AnswerRecord, Dataset, TaskType};
pub use redundancy::subsample_redundancy;
