//! Online task assignment — the paper's future direction §7(6).
//!
//! The benchmark treats truth inference as a *static* problem over a
//! fixed answer log. The paper points out that how answers are
//! *collected* matters: "it is interesting to see how the answers
//! collected by different task assignment strategies can affect the
//! truth inference quality". This module implements that experiment: a
//! platform simulator that spends a fixed answer budget under different
//! assignment strategies, producing logs the inference methods can then
//! be compared on.
//!
//! Strategies:
//!
//! - [`AssignmentStrategy::Uniform`] — the paper's default: every task
//!   gets the same redundancy.
//! - [`AssignmentStrategy::QualityFocused`] — route work to the workers
//!   with the best running quality estimate (greedy exploitation with an
//!   ε floor for exploration), as quality-aware platforms do.
//! - [`AssignmentStrategy::UncertaintyAdaptive`] — QASCA-flavoured: a
//!   baseline pass of `base` answers per task, then the remaining budget
//!   goes to the tasks whose current answer distribution has the highest
//!   entropy.
//!
//! [`StreamSession`] turns a finished [`CollectionRun`] (or any static
//! dataset) back into a *stream*: the answer log replayed in arrival
//! order as fixed-size batches, which is what the `crowd-stream`
//! incremental-inference engine consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::DatasetBuilder;
use crate::error::DataError;
use crate::generator::{CrowdSimulator, SimulatorConfig, WorkerParams};
use crate::model::{Answer, AnswerRecord, Dataset};

/// How the platform decides who answers what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignmentStrategy {
    /// Fixed redundancy `budget / n` per task, workers drawn by
    /// participation weight (the paper's data-collection model).
    Uniform,
    /// Tasks still visited uniformly, but each answer is requested from
    /// the best available worker by running empirical agreement, with
    /// probability `explore` of a uniformly random worker instead.
    QualityFocused {
        /// Exploration probability in `[0, 1]`.
        explore: f64,
    },
    /// `base` answers per task first, then the remaining budget is spent
    /// on the highest-entropy tasks, one extra answer at a time.
    UncertaintyAdaptive {
        /// Baseline answers per task before adaptation.
        base: usize,
    },
}

/// The outcome of a simulated collection run: the answer log plus how
/// many answers were actually spent.
#[derive(Debug)]
pub struct CollectionRun {
    /// The collected dataset (with ground truth attached for scoring).
    pub dataset: Dataset,
    /// Answers spent (≤ budget; bounded by `n × m`).
    pub spent: usize,
}

/// Simulate collecting `budget` answers for `config`'s task universe
/// under the given strategy.
///
/// Worker behaviour (qualities, spammers) comes from the same
/// [`CrowdSimulator`] machinery as the static datasets, so a strategy
/// comparison isolates the *assignment* effect.
///
/// # Errors
/// Returns [`DataError::Unsupported`] for numeric task universes — the
/// assignment policies score answers against label pluralities, which
/// have no numeric analogue here.
pub fn collect(
    config: &SimulatorConfig,
    strategy: AssignmentStrategy,
    budget: usize,
    seed: u64,
) -> Result<CollectionRun, DataError> {
    let Some(choices) = config.task_type.num_choices() else {
        return Err(DataError::Unsupported {
            detail: format!(
                "assignment simulation covers categorical tasks; '{}' is numeric",
                config.name
            ),
        });
    };
    let l = choices as usize;
    let n = config.num_tasks;
    let m = config.num_workers;

    // Reuse the simulator for worker parameters and truths by generating
    // a throwaway run with redundancy 1, then re-drawing answers under
    // our own assignment policy.
    let mut sim_cfg = config.clone();
    sim_cfg.redundancy = 1;
    let mut sim = CrowdSimulator::new(sim_cfg, seed);
    let reference = sim.generate();
    let truths: Vec<u8> = (0..n)
        .map(|t| reference.truth(t).and_then(|a| a.label()).unwrap_or(0))
        .collect();

    let worker_accuracy: Vec<f64> = (0..m)
        .map(|w| match sim.worker_params(w) {
            WorkerParams::OneCoin { accuracy } => *accuracy,
            WorkerParams::ClassConditional { diag } => diag.iter().sum::<f64>() / diag.len() as f64,
            WorkerParams::ConfusionMatrix { rows } => {
                rows.iter().enumerate().map(|(j, r)| r[j]).sum::<f64>() / rows.len() as f64
            }
            WorkerParams::Numeric { .. } => 0.5,
            WorkerParams::Spammer => 1.0 / l as f64,
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let mut builder = DatasetBuilder::new(
        format!("{}-{:?}", config.name, strategy_tag(strategy)),
        config.task_type,
        n,
        m,
    );
    let mut answered: Vec<Vec<bool>> = vec![vec![false; m]; n];
    let mut counts: Vec<Vec<f64>> = vec![vec![0.0; l]; n];
    // Running per-worker agreement estimate for QualityFocused:
    // (agreements + 1, answers + 2) Laplace.
    let mut agree = vec![1.0f64; m];
    let mut total = vec![2.0f64; m];
    let mut spent = 0usize;

    let draw_answer = |rng: &mut StdRng, worker: usize, task: usize| -> u8 {
        let truth = truths[task];
        if rng.gen_range(0.0..1.0) < worker_accuracy[worker] {
            truth
        } else {
            let r = rng.gen_range(0..l - 1) as u8;
            if r >= truth {
                r + 1
            } else {
                r
            }
        }
    };

    let pick_any_free = |rng: &mut StdRng, answered: &[bool]| -> Option<usize> {
        let free: Vec<usize> = (0..m).filter(|&w| !answered[w]).collect();
        if free.is_empty() {
            None
        } else {
            Some(free[rng.gen_range(0..free.len())])
        }
    };

    let assign_one = |rng: &mut StdRng,
                      task: usize,
                      answered: &mut Vec<Vec<bool>>,
                      counts: &mut Vec<Vec<f64>>,
                      agree: &mut Vec<f64>,
                      total: &mut Vec<f64>,
                      builder: &mut DatasetBuilder,
                      quality_focused: Option<f64>|
     -> bool {
        let worker = match quality_focused {
            Some(explore) if rng.gen_range(0.0..1.0) >= explore => {
                // Best estimated worker among the free ones.
                (0..m).filter(|&w| !answered[task][w]).max_by(|&a, &b| {
                    (agree[a] / total[a])
                        .partial_cmp(&(agree[b] / total[b]))
                        .expect("finite estimates")
                })
            }
            _ => pick_any_free(rng, &answered[task]),
        };
        let Some(worker) = worker else { return false };
        let label = draw_answer(rng, worker, task);
        answered[task][worker] = true;
        // Agreement bookkeeping: score the answer against the task's
        // current plurality, but only once at least two prior answers
        // exist — judging against a single prior answer (or nothing)
        // would dilute the estimates with coin flips.
        if counts[task].iter().sum::<f64>() >= 2.0 {
            let plurality = counts[task]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(k, _)| k as u8)
                .expect("non-empty counts");
            if label == plurality {
                agree[worker] += 1.0;
            }
            total[worker] += 1.0;
        }
        counts[task][label as usize] += 1.0;
        builder
            .add_label(task, worker, label)
            .expect("fresh (task, worker) pair");
        true
    };

    match strategy {
        AssignmentStrategy::Uniform => {
            'outer: loop {
                for task in 0..n {
                    if spent >= budget {
                        break 'outer;
                    }
                    if assign_one(
                        &mut rng,
                        task,
                        &mut answered,
                        &mut counts,
                        &mut agree,
                        &mut total,
                        &mut builder,
                        None,
                    ) {
                        spent += 1;
                    } else if (0..n).all(|t| answered[t].iter().all(|&a| a)) {
                        break 'outer; // universe exhausted
                    }
                }
            }
        }
        AssignmentStrategy::QualityFocused { explore } => {
            // Calibration: two uniform rounds so every task has a
            // plurality to score against.
            let calibration = 2.min(budget / n.max(1));
            'cal: for _ in 0..calibration {
                for task in 0..n {
                    if spent >= budget {
                        break 'cal;
                    }
                    if assign_one(
                        &mut rng,
                        task,
                        &mut answered,
                        &mut counts,
                        &mut agree,
                        &mut total,
                        &mut builder,
                        None,
                    ) {
                        spent += 1;
                    }
                }
            }
            // Batch re-score the calibration answers against the settled
            // pluralities (the online scorer skipped the first two
            // answers of every task).
            let interim = builder.snapshot_records();
            for (task, worker, label) in interim {
                let plurality = counts[task]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(k, _)| k as u8)
                    .expect("non-empty");
                if label == plurality {
                    agree[worker] += 1.0;
                }
                total[worker] += 1.0;
            }
            // Exploitation rounds.
            'exploit: loop {
                for task in 0..n {
                    if spent >= budget {
                        break 'exploit;
                    }
                    if assign_one(
                        &mut rng,
                        task,
                        &mut answered,
                        &mut counts,
                        &mut agree,
                        &mut total,
                        &mut builder,
                        Some(explore),
                    ) {
                        spent += 1;
                    } else if (0..n).all(|t| answered[t].iter().all(|&a| a)) {
                        break 'exploit;
                    }
                }
            }
        }
        AssignmentStrategy::UncertaintyAdaptive { base } => {
            // Phase 1: uniform base pass.
            'base: for _ in 0..base {
                for task in 0..n {
                    if spent >= budget {
                        break 'base;
                    }
                    if assign_one(
                        &mut rng,
                        task,
                        &mut answered,
                        &mut counts,
                        &mut agree,
                        &mut total,
                        &mut builder,
                        None,
                    ) {
                        spent += 1;
                    }
                }
            }
            // Phase 2: entropy-greedy.
            while spent < budget {
                let task = (0..n)
                    .filter(|&t| answered[t].iter().any(|&a| !a))
                    .max_by(|&a, &b| {
                        entropy(&counts[a])
                            .partial_cmp(&entropy(&counts[b]))
                            .expect("finite entropy")
                    });
                let Some(task) = task else { break };
                if assign_one(
                    &mut rng,
                    task,
                    &mut answered,
                    &mut counts,
                    &mut agree,
                    &mut total,
                    &mut builder,
                    None,
                ) {
                    spent += 1;
                } else {
                    break;
                }
            }
        }
    }

    for (t, &truth) in truths.iter().enumerate() {
        if reference.truth(t).is_some() {
            builder
                .set_truth(t, Answer::Label(truth))
                .expect("valid truth");
        }
    }
    Ok(CollectionRun {
        dataset: builder.build(),
        spent,
    })
}

/// One batch of a replayed answer stream: the records that "arrived"
/// during one tick, in arrival order.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// 0-based batch index (the tick).
    pub round: usize,
    /// Answers that arrived this tick, in arrival order.
    pub records: Vec<AnswerRecord>,
}

/// Replays a collection run (or any dataset's answer log) as a sequence
/// of timed batches — the stream source for the `crowd-stream`
/// subsystem.
///
/// The simulator's answer log is already in *arrival order* (the order
/// the platform issued assignments), so slicing it into consecutive
/// batches reproduces the paper's §7(6) online setting: answers trickle
/// in, and inference has to keep up incrementally instead of re-running
/// from scratch.
#[derive(Debug, Clone)]
pub struct StreamSession {
    records: Vec<AnswerRecord>,
    batch_size: usize,
    cursor: usize,
    round: usize,
}

impl StreamSession {
    /// Replay `run`'s answers in collection order, `batch_size` at a
    /// time (the final batch may be shorter).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn replay(run: &CollectionRun, batch_size: usize) -> Self {
        Self::from_records(run.dataset.records().to_vec(), batch_size)
    }

    /// Replay a static dataset's answer log as a stream (record order
    /// stands in for arrival order).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn from_dataset(dataset: &Dataset, batch_size: usize) -> Self {
        Self::from_records(dataset.records().to_vec(), batch_size)
    }

    fn from_records(records: Vec<AnswerRecord>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            records,
            batch_size,
            cursor: 0,
            round: 0,
        }
    }

    /// Total answers in the session (delivered + pending).
    pub fn num_answers(&self) -> usize {
        self.records.len()
    }

    /// Answers not yet delivered.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.cursor
    }
}

impl Iterator for StreamSession {
    type Item = StreamBatch;

    fn next(&mut self) -> Option<StreamBatch> {
        if self.cursor >= self.records.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.records.len());
        let batch = StreamBatch {
            round: self.round,
            records: self.records[self.cursor..end].to_vec(),
        };
        self.cursor = end;
        self.round += 1;
        Some(batch)
    }
}

fn strategy_tag(s: AssignmentStrategy) -> &'static str {
    match s {
        AssignmentStrategy::Uniform => "uniform",
        AssignmentStrategy::QualityFocused { .. } => "quality",
        AssignmentStrategy::UncertaintyAdaptive { .. } => "adaptive",
    }
}

/// Shannon entropy of an unnormalized count vector (0 for empty).
fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return f64::INFINITY; // unanswered tasks are maximally uncertain
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkerModel;
    use crate::model::TaskType;

    fn base_config() -> SimulatorConfig {
        SimulatorConfig {
            name: "assign".into(),
            task_type: TaskType::DecisionMaking,
            num_tasks: 150,
            num_workers: 25,
            redundancy: 1, // overridden by the collector
            truth_prior: vec![0.5, 0.5],
            worker_model: WorkerModel::OneCoin {
                alpha: 5.0,
                beta: 3.0,
            }, // wide skills
            spammer_fraction: 0.15,
            zipf_exponent: 0.0,
            truth_fraction: 1.0,
            numeric_task_offset_std: 0.0,
            hard_task_fraction: 0.0,
            hard_task_accuracy: 0.5,
            hard_task_mode: crate::generator::HardTaskMode::Flatten,
            truth_only_on_hard: false,
            heavy_worker_model: None,
        }
    }

    #[test]
    fn budget_is_respected_by_all_strategies() {
        let cfg = base_config();
        for strategy in [
            AssignmentStrategy::Uniform,
            AssignmentStrategy::QualityFocused { explore: 0.1 },
            AssignmentStrategy::UncertaintyAdaptive { base: 2 },
        ] {
            let run = collect(&cfg, strategy, 600, 9).expect("categorical config");
            assert_eq!(run.spent, 600, "{strategy:?}");
            assert_eq!(run.dataset.num_answers(), 600);
            // No duplicate (task, worker) pairs by construction (builder
            // would have panicked), and every answer indexes in range.
            assert_eq!(run.dataset.num_tasks(), 150);
        }
    }

    #[test]
    fn uniform_spreads_answers_evenly() {
        let run = collect(&base_config(), AssignmentStrategy::Uniform, 600, 3)
            .expect("categorical config");
        for t in 0..run.dataset.num_tasks() {
            assert_eq!(run.dataset.task_degree(t), 4);
        }
    }

    #[test]
    fn adaptive_concentrates_on_uncertain_tasks() {
        let run = collect(
            &base_config(),
            AssignmentStrategy::UncertaintyAdaptive { base: 2 },
            600,
            3,
        )
        .expect("categorical config");
        let degrees: Vec<usize> = (0..run.dataset.num_tasks())
            .map(|t| run.dataset.task_degree(t))
            .collect();
        let max = *degrees.iter().max().unwrap();
        let min = *degrees.iter().min().unwrap();
        assert!(min >= 2, "baseline pass must cover everything");
        assert!(
            max > 4,
            "adaptive phase should pile onto contested tasks, max {max}"
        );
    }

    #[test]
    fn quality_focused_prefers_good_workers() {
        let cfg = base_config();
        // Per-answer accuracy under quality routing should beat uniform.
        // A single collection run is noisy (the router learns from ~900
        // answers), so compare means over a few seeds.
        let acc = |d: &Dataset| {
            let mut c = 0usize;
            for r in d.records() {
                if Some(r.answer) == d.truth(r.task) {
                    c += 1;
                }
            }
            c as f64 / d.num_answers() as f64
        };
        let seeds = [3u64, 5, 7, 11];
        let mean = |strategy: AssignmentStrategy| {
            seeds
                .iter()
                .map(|&s| {
                    acc(&collect(&cfg, strategy, 900, s)
                        .expect("categorical")
                        .dataset)
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let routed = mean(AssignmentStrategy::QualityFocused { explore: 0.1 });
        let uniform = mean(AssignmentStrategy::Uniform);
        assert!(
            routed > uniform + 0.01,
            "quality routing {routed} should beat uniform {uniform}"
        );
    }

    #[test]
    fn numeric_config_yields_typed_error() {
        let mut cfg = base_config();
        cfg.task_type = TaskType::Numeric;
        let err = collect(&cfg, AssignmentStrategy::Uniform, 100, 1)
            .expect_err("numeric must be rejected");
        assert!(matches!(err, crate::error::DataError::Unsupported { .. }));
        assert!(err.to_string().contains("categorical"));
    }

    #[test]
    fn stream_session_replays_run_in_arrival_order() {
        let run = collect(&base_config(), AssignmentStrategy::Uniform, 450, 3)
            .expect("categorical config");
        let session = StreamSession::replay(&run, 100);
        assert_eq!(session.num_answers(), 450);
        let batches: Vec<_> = session.collect();
        assert_eq!(batches.len(), 5);
        assert_eq!(batches[4].records.len(), 50, "short final batch");
        // Rounds are consecutive and the concatenation reproduces the
        // collection log exactly.
        let mut replayed = Vec::new();
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.round, i);
            replayed.extend_from_slice(&b.records);
        }
        assert_eq!(replayed.as_slice(), run.dataset.records());
    }

    #[test]
    fn stream_session_remaining_tracks_cursor() {
        let run = collect(&base_config(), AssignmentStrategy::Uniform, 120, 5)
            .expect("categorical config");
        let mut session = StreamSession::replay(&run, 50);
        assert_eq!(session.remaining(), 120);
        session.next().unwrap();
        assert_eq!(session.remaining(), 70);
        session.next().unwrap();
        session.next().unwrap();
        assert_eq!(session.remaining(), 0);
        assert!(session.next().is_none());
    }

    #[test]
    fn budget_capped_by_universe() {
        let mut cfg = base_config();
        cfg.num_tasks = 10;
        cfg.num_workers = 4;
        let run = collect(&cfg, AssignmentStrategy::Uniform, 10_000, 1).expect("categorical");
        assert_eq!(run.spent, 40, "cannot spend past n × m");
    }
}
