//! Validated construction of [`Dataset`]s.

use std::collections::HashSet;

use crate::error::DataError;
use crate::model::{Answer, AnswerRecord, Dataset, TaskType};

/// Incrementally assembles a [`Dataset`], validating every answer and
/// truth assignment against the task type as it goes.
#[derive(Debug)]
pub struct DatasetBuilder {
    name: String,
    task_type: TaskType,
    num_tasks: usize,
    num_workers: usize,
    records: Vec<AnswerRecord>,
    seen: HashSet<(usize, usize)>,
    truths: Vec<Option<Answer>>,
}

impl DatasetBuilder {
    /// Start a dataset with a fixed task/worker universe.
    pub fn new(
        name: impl Into<String>,
        task_type: TaskType,
        num_tasks: usize,
        num_workers: usize,
    ) -> Self {
        Self {
            name: name.into(),
            task_type,
            num_tasks,
            num_workers,
            records: Vec::new(),
            seen: HashSet::new(),
            truths: vec![None; num_tasks],
        }
    }

    fn check_indices(&self, task: usize, worker: usize) -> Result<(), DataError> {
        if task >= self.num_tasks {
            return Err(DataError::TaskOutOfRange {
                task,
                num_tasks: self.num_tasks,
            });
        }
        if worker >= self.num_workers {
            // Reuse the task error shape for workers to keep the enum small;
            // callers mostly care that construction failed loudly.
            return Err(DataError::TaskOutOfRange {
                task: worker,
                num_tasks: self.num_workers,
            });
        }
        Ok(())
    }

    fn check_answer(&self, answer: &Answer) -> Result<(), DataError> {
        match (self.task_type, answer) {
            (TaskType::Numeric, Answer::Numeric(v)) => {
                if v.is_finite() {
                    Ok(())
                } else {
                    Err(DataError::AnswerKindMismatch {
                        detail: format!("non-finite numeric answer {v}"),
                    })
                }
            }
            (TaskType::Numeric, Answer::Label(_)) => Err(DataError::AnswerKindMismatch {
                detail: "label answer on a numeric dataset".into(),
            }),
            (t, Answer::Label(l)) => {
                let choices = t.num_choices().expect("categorical task type");
                if *l < choices {
                    Ok(())
                } else {
                    Err(DataError::LabelOutOfRange {
                        label: *l,
                        num_choices: choices,
                    })
                }
            }
            (_, Answer::Numeric(_)) => Err(DataError::AnswerKindMismatch {
                detail: "numeric answer on a categorical dataset".into(),
            }),
        }
    }

    /// Record `worker`'s answer for `task`.
    pub fn add_answer(
        &mut self,
        task: usize,
        worker: usize,
        answer: Answer,
    ) -> Result<(), DataError> {
        self.check_indices(task, worker)?;
        self.check_answer(&answer)?;
        if !self.seen.insert((task, worker)) {
            return Err(DataError::DuplicateAnswer { task, worker });
        }
        self.records.push(AnswerRecord {
            task,
            worker,
            answer,
        });
        Ok(())
    }

    /// Convenience: record a categorical answer.
    pub fn add_label(&mut self, task: usize, worker: usize, label: u8) -> Result<(), DataError> {
        self.add_answer(task, worker, Answer::Label(label))
    }

    /// Convenience: record a numeric answer.
    pub fn add_numeric(&mut self, task: usize, worker: usize, value: f64) -> Result<(), DataError> {
        self.add_answer(task, worker, Answer::Numeric(value))
    }

    /// Set the ground truth of a task.
    pub fn set_truth(&mut self, task: usize, truth: Answer) -> Result<(), DataError> {
        if task >= self.num_tasks {
            return Err(DataError::TaskOutOfRange {
                task,
                num_tasks: self.num_tasks,
            });
        }
        self.check_answer(&truth)?;
        self.truths[task] = Some(truth);
        Ok(())
    }

    /// Convenience: set a categorical ground truth.
    pub fn set_truth_label(&mut self, task: usize, label: u8) -> Result<(), DataError> {
        self.set_truth(task, Answer::Label(label))
    }

    /// Convenience: set a numeric ground truth.
    pub fn set_truth_numeric(&mut self, task: usize, value: f64) -> Result<(), DataError> {
        self.set_truth(task, Answer::Numeric(value))
    }

    /// Number of answers recorded so far.
    pub fn num_answers(&self) -> usize {
        self.records.len()
    }

    /// Snapshot of the categorical answers recorded so far as
    /// `(task, worker, label)` triples (numeric answers are skipped).
    /// Used by online collection policies that need to re-score interim
    /// answers.
    pub fn snapshot_records(&self) -> Vec<(usize, usize, u8)> {
        self.records
            .iter()
            .filter_map(|r| r.answer.label().map(|l| (r.task, r.worker, l)))
            .collect()
    }

    /// Finish and produce the immutable [`Dataset`].
    pub fn build(self) -> Dataset {
        Dataset::from_parts(
            self.name,
            self.task_type,
            self.num_tasks,
            self.num_workers,
            self.records,
            self.truths,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_answers() {
        let mut b = DatasetBuilder::new("d", TaskType::DecisionMaking, 2, 2);
        b.add_label(0, 0, 0).unwrap();
        assert!(matches!(
            b.add_label(0, 0, 1),
            Err(DataError::DuplicateAnswer { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_task_and_worker() {
        let mut b = DatasetBuilder::new("d", TaskType::DecisionMaking, 2, 2);
        assert!(b.add_label(2, 0, 0).is_err());
        assert!(b.add_label(0, 5, 0).is_err());
    }

    #[test]
    fn rejects_label_out_of_range() {
        let mut b = DatasetBuilder::new("d", TaskType::SingleChoice { choices: 3 }, 1, 1);
        assert!(b.add_label(0, 0, 2).is_ok());
        let mut b2 = DatasetBuilder::new("d", TaskType::SingleChoice { choices: 3 }, 1, 1);
        assert!(matches!(
            b2.add_label(0, 0, 3),
            Err(DataError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_kind_mismatch() {
        let mut b = DatasetBuilder::new("d", TaskType::Numeric, 1, 1);
        assert!(b.add_label(0, 0, 0).is_err());
        assert!(b.add_numeric(0, 0, 3.5).is_ok());
        let mut b2 = DatasetBuilder::new("d", TaskType::Numeric, 1, 1);
        assert!(b2.add_numeric(0, 0, f64::NAN).is_err());
    }

    #[test]
    fn truth_validation() {
        let mut b = DatasetBuilder::new("d", TaskType::DecisionMaking, 2, 1);
        assert!(b.set_truth_label(0, 1).is_ok());
        assert!(b.set_truth_label(0, 9).is_err());
        assert!(b.set_truth_label(7, 0).is_err());
        assert!(b.set_truth_numeric(1, 1.0).is_err());
    }

    #[test]
    fn build_produces_consistent_dataset() {
        let mut b = DatasetBuilder::new("d", TaskType::Numeric, 2, 2);
        b.add_numeric(0, 0, 1.0).unwrap();
        b.add_numeric(0, 1, 3.0).unwrap();
        b.add_numeric(1, 0, -2.0).unwrap();
        b.set_truth_numeric(0, 2.0).unwrap();
        let d = b.build();
        assert_eq!(d.name(), "d");
        assert_eq!(d.num_answers(), 3);
        assert_eq!(d.num_truths(), 1);
        assert_eq!(d.truth(0), Some(Answer::Numeric(2.0)));
    }
}
