//! Golden-task machinery: qualification tests and hidden tests.
//!
//! Section 6.3.2 of the paper initializes worker qualities from a
//! *qualification test*: for each worker, bootstrap-sample 20 of her
//! answers (with replacement), assume those tasks' truths are known, and
//! score her. Section 6.3.3 evaluates a *hidden test*: reveal the truth of
//! a random p% of tasks to the method and evaluate on the remainder.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Answer, Dataset};

/// Result of simulating a qualification test for every worker.
#[derive(Debug, Clone)]
pub struct QualificationResult {
    /// Per-worker fraction of the sampled golden tasks answered correctly
    /// (`None` for workers with no scorable answers).
    pub accuracy: Vec<Option<f64>>,
    /// For numeric datasets, the per-worker RMSE over the sampled golden
    /// tasks (`None` where unscorable).
    pub rmse: Vec<Option<f64>>,
    /// Number of golden tasks sampled per worker.
    pub test_size: usize,
}

/// Simulate a qualification test via bootstrap sampling, exactly as in
/// §6.3.2: for each worker draw `test_size` of her (answer, truth) pairs
/// with replacement — only answers whose task has known truth participate
/// — and compute her score.
pub fn bootstrap_qualification(
    dataset: &Dataset,
    test_size: usize,
    seed: u64,
) -> QualificationResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accuracy = vec![None; dataset.num_workers()];
    let mut rmse = vec![None; dataset.num_workers()];

    for w in 0..dataset.num_workers() {
        let scorable: Vec<(&Answer, Answer)> = dataset
            .answers_by_worker(w)
            .filter_map(|r| dataset.truth(r.task).map(|t| (&r.answer, t)))
            .collect();
        if scorable.is_empty() {
            continue;
        }
        let mut correct = 0usize;
        let mut sq_err = 0.0;
        let mut numeric = false;
        for _ in 0..test_size {
            let (ans, truth) = scorable[rng.gen_range(0..scorable.len())];
            match (ans, truth) {
                (Answer::Label(a), Answer::Label(t)) if a == &t => {
                    correct += 1;
                }
                (Answer::Numeric(a), Answer::Numeric(t)) => {
                    numeric = true;
                    sq_err += (a - t).powi(2);
                }
                _ => {}
            }
        }
        if numeric {
            rmse[w] = Some((sq_err / test_size as f64).sqrt());
            // A numeric "accuracy" proxy in (0, 1]: shrink with error so
            // methods that expect a probability can still be initialized.
            let r = (sq_err / test_size as f64).sqrt();
            accuracy[w] = Some(1.0 / (1.0 + r / 10.0));
        } else {
            accuracy[w] = Some(correct as f64 / test_size as f64);
        }
    }

    QualificationResult {
        accuracy,
        rmse,
        test_size,
    }
}

/// A hidden-test split: the tasks whose truth is revealed to the method,
/// and the evaluation set (everything else with known truth).
#[derive(Debug, Clone)]
pub struct GoldenSplit {
    /// Task indices whose truth the method may see.
    pub golden: Vec<usize>,
    /// Task indices held out for evaluation.
    pub eval: Vec<usize>,
    /// Truth vector with only golden tasks revealed (input to methods).
    pub revealed: Vec<Option<Answer>>,
}

impl GoldenSplit {
    /// Sample a hidden-test split revealing `fraction` of the tasks with
    /// known truth (the paper's p%, §6.3.3).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn sample(dataset: &Dataset, fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction in [0,1], got {fraction}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let with_truth: Vec<usize> = (0..dataset.num_tasks())
            .filter(|&t| dataset.truth(t).is_some())
            .collect();
        let mut shuffled = with_truth;
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let k = (fraction * shuffled.len() as f64).round() as usize;
        let golden: Vec<usize> = shuffled[..k].to_vec();
        let eval: Vec<usize> = shuffled[k..].to_vec();

        let mut revealed = vec![None; dataset.num_tasks()];
        for &t in &golden {
            revealed[t] = dataset.truth(t);
        }
        Self {
            golden,
            eval,
            revealed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::toy::paper_example;

    #[test]
    fn qualification_scores_toy_workers_in_order() {
        let d = paper_example();
        let q = bootstrap_qualification(&d, 200, 42);
        // Ground-truth accuracies are w1: 2/6, w2: 2/5, w3: 6/6; the
        // bootstrap estimate should preserve the ordering.
        let a: Vec<f64> = q.accuracy.iter().map(|x| x.unwrap()).collect();
        assert!(a[2] > a[1] && a[1] > a[0], "got {a:?}");
        assert!((a[2] - 1.0).abs() < 1e-9, "w3 is perfect: {}", a[2]);
    }

    #[test]
    fn qualification_handles_numeric() {
        let d = datasets::n_emotion(0.2, 7);
        let q = bootstrap_qualification(&d, 20, 1);
        let scored = q.rmse.iter().flatten().count();
        assert!(scored > 0);
        for r in q.rmse.iter().flatten() {
            assert!(*r >= 0.0);
        }
        for a in q.accuracy.iter().flatten() {
            assert!(*a > 0.0 && *a <= 1.0);
        }
    }

    #[test]
    fn golden_split_partitions_truth_tasks() {
        let d = datasets::d_possent(0.3, 3);
        let split = GoldenSplit::sample(&d, 0.3, 5);
        let total = d.num_truths();
        assert_eq!(split.golden.len() + split.eval.len(), total);
        assert!((split.golden.len() as f64 / total as f64 - 0.3).abs() < 0.01);
        // Revealed vector shows truth exactly on golden tasks.
        for &t in &split.golden {
            assert!(split.revealed[t].is_some());
        }
        for &t in &split.eval {
            assert!(split.revealed[t].is_none());
        }
    }

    #[test]
    fn golden_split_zero_and_full() {
        let d = paper_example();
        let none = GoldenSplit::sample(&d, 0.0, 1);
        assert!(none.golden.is_empty());
        assert_eq!(none.eval.len(), 6);
        let all = GoldenSplit::sample(&d, 1.0, 1);
        assert_eq!(all.golden.len(), 6);
        assert!(all.eval.is_empty());
    }

    #[test]
    fn golden_split_only_uses_known_truth() {
        let d = datasets::s_rel(0.05, 11); // partial truth
        let split = GoldenSplit::sample(&d, 0.5, 2);
        for &t in split.golden.iter().chain(&split.eval) {
            assert!(d.truth(t).is_some());
        }
    }
}
