//! Error type for dataset construction and IO.

use std::fmt;

/// Errors raised while building, validating, or loading datasets.
#[derive(Debug)]
pub enum DataError {
    /// An answer referenced a task index outside `0..num_tasks`.
    TaskOutOfRange {
        /// The offending task index.
        task: usize,
        /// The number of tasks in the dataset.
        num_tasks: usize,
    },
    /// A categorical answer or truth used a label outside `0..num_choices`.
    LabelOutOfRange {
        /// The offending label.
        label: u8,
        /// The number of choices in the task type.
        num_choices: u8,
    },
    /// An answer's kind (label vs numeric) did not match the task type.
    AnswerKindMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The same worker answered the same task twice.
    DuplicateAnswer {
        /// The task index.
        task: usize,
        /// The worker index.
        worker: usize,
    },
    /// The requested operation does not support this configuration
    /// (e.g. the assignment simulator on a numeric task universe).
    Unsupported {
        /// What was asked and why it cannot be served.
        detail: String,
    },
    /// A malformed line or value in a TSV file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// An underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TaskOutOfRange { task, num_tasks } => {
                write!(
                    f,
                    "task index {task} out of range (dataset has {num_tasks} tasks)"
                )
            }
            Self::LabelOutOfRange { label, num_choices } => {
                write!(
                    f,
                    "label {label} out of range (task type has {num_choices} choices)"
                )
            }
            Self::AnswerKindMismatch { detail } => write!(f, "answer kind mismatch: {detail}"),
            Self::DuplicateAnswer { task, worker } => {
                write!(f, "worker {worker} answered task {task} more than once")
            }
            Self::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            Self::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
