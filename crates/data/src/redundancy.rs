//! The paper's redundancy sub-sampling protocol (§6.3.1).
//!
//! "We vary the data redundancy r, where for each specific r, we randomly
//! select r out of the collected answers for each task, and construct a
//! dataset with the selected answers."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{AnswerRecord, Dataset};

/// Construct a copy of `dataset` keeping at most `r` randomly chosen
/// answers per task. Tasks with fewer than `r` answers keep everything
/// (matching the paper's protocol on ragged logs).
pub fn subsample_redundancy(dataset: &Dataset, r: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept: Vec<AnswerRecord> = Vec::with_capacity(dataset.num_tasks() * r);
    for task in 0..dataset.num_tasks() {
        let mut answers: Vec<AnswerRecord> = dataset.answers_for_task(task).copied().collect();
        if answers.len() > r {
            // Partial Fisher–Yates: the first r slots become a uniform
            // sample without replacement.
            for i in 0..r {
                let j = rng.gen_range(i..answers.len());
                answers.swap(i, j);
            }
            answers.truncate(r);
        }
        kept.extend(answers);
    }
    dataset.with_records(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::toy::paper_example;

    #[test]
    fn caps_every_task_at_r() {
        let d = datasets::d_possent(0.1, 3); // redundancy 20
        for r in [1, 5, 10] {
            let sub = subsample_redundancy(&d, r, 7);
            for task in 0..sub.num_tasks() {
                assert_eq!(sub.task_degree(task), r, "task {task} at r={r}");
            }
            assert_eq!(sub.num_answers(), r * sub.num_tasks());
        }
    }

    #[test]
    fn keeps_all_when_r_exceeds_degree() {
        let d = paper_example(); // degrees 2..3
        let sub = subsample_redundancy(&d, 10, 1);
        assert_eq!(sub.num_answers(), d.num_answers());
    }

    #[test]
    fn sample_is_a_subset_of_original() {
        let d = datasets::d_possent(0.05, 9);
        let sub = subsample_redundancy(&d, 3, 2);
        for r in sub.records() {
            assert!(
                d.answers_for_task(r.task)
                    .any(|o| o.worker == r.worker && o.answer == r.answer),
                "record {r:?} not in original"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = datasets::d_possent(0.05, 9);
        let a = subsample_redundancy(&d, 3, 1);
        let b = subsample_redundancy(&d, 3, 2);
        assert_ne!(a.records(), b.records());
        // Same seed reproduces.
        let a2 = subsample_redundancy(&d, 3, 1);
        assert_eq!(a.records(), a2.records());
    }

    #[test]
    fn truth_preserved() {
        let d = paper_example();
        let sub = subsample_redundancy(&d, 1, 5);
        assert_eq!(sub.truths(), d.truths());
    }
}
