//! The crowd simulator: generates answer logs with controlled statistics.
//!
//! The real answer logs behind Table 5 are not redistributable here, so the
//! benchmark is driven by this simulator instead (see DESIGN.md §5). The
//! simulator reproduces the *observable* statistics the paper reports:
//!
//! - task counts, worker counts and per-task redundancy (Table 5);
//! - long-tail worker participation via Zipf-weighted assignment
//!   (Figure 2: "most workers answer a few tasks and only a few workers
//!   answer plenty of tasks");
//! - worker-quality distributions (Figure 3), including class-conditional
//!   error structure — the paper explains D_Product workers have high
//!   specificity (`q_FF`) but low sensitivity (`q_TT`), which is exactly
//!   why confusion-matrix methods win there;
//! - spammer fractions (workers who answer uniformly at random);
//! - numeric workers with per-worker bias and variance (Section 4.2.3).
//!
//! Everything is seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::DatasetBuilder;
use crate::model::{Dataset, TaskType};
use crowd_stats::dist::{sample_beta, sample_categorical, sample_gaussian};

/// How hard tasks degrade worker answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HardTaskMode {
    /// Every non-spammer answers at exactly `hard_task_accuracy` on hard
    /// tasks — skill is erased, so no method can separate workers there
    /// (the S_Adult signature).
    #[default]
    Flatten,
    /// Each worker's own correct-probability is multiplied by
    /// `hard_task_accuracy` (floored at chance) — skilled workers stay
    /// relatively better, so confusion-matrix methods retain their edge
    /// (the S_Rel regime of borderline-relevance judging).
    Scale,
}

/// How a simulated worker produces answers.
#[derive(Debug, Clone)]
pub enum WorkerModel {
    /// Single-probability worker: answers correctly with probability `p`
    /// drawn from `Beta(alpha, beta)`; errors are uniform over the
    /// remaining choices. The classic one-coin model (Section 4.2.1).
    OneCoin {
        /// Beta prior alpha for the per-worker accuracy.
        alpha: f64,
        /// Beta prior beta for the per-worker accuracy.
        beta: f64,
    },
    /// Confusion-matrix worker: one accuracy per true class, so error
    /// rates can be class-asymmetric (Section 4.2.2). `diag[j]` gives the
    /// Beta parameters for `Pr(answer = j | truth = j)`; off-diagonal mass
    /// is uniform over the other choices.
    ClassConditional {
        /// Per-class `(alpha, beta)` Beta parameters for the diagonal.
        diag: Vec<(f64, f64)>,
    },
    /// Full-confusion-matrix worker: each worker's row-stochastic
    /// confusion matrix is drawn from Dirichlet distributions centred on
    /// a population `base` matrix, `row_j ~ Dirichlet(concentration ·
    /// base[j])`. Unlike [`WorkerModel::ClassConditional`], errors are
    /// *label-asymmetric* (e.g. relevance judges confusing adjacent
    /// grades, raters defaulting to 'G') — the structure that lets
    /// confusion-matrix methods beat one-coin models on real
    /// single-choice data (§6.3.4).
    ConfusionMatrix {
        /// Population-level row-stochastic `ℓ × ℓ` confusion matrix.
        base: Vec<Vec<f64>>,
        /// Dirichlet concentration: larger = workers cluster tighter
        /// around `base`.
        concentration: f64,
    },
    /// Numeric worker with Gaussian bias and variance (Section 4.2.3):
    /// answers `truth + bias + N(0, sigma²)`, with `bias ~ N(0,
    /// bias_std²)` and `sigma` uniform in `[sigma_lo, sigma_hi]`.
    Numeric {
        /// Standard deviation of the per-worker bias.
        bias_std: f64,
        /// Lower bound of the per-worker noise standard deviation.
        sigma_lo: f64,
        /// Upper bound of the per-worker noise standard deviation.
        sigma_hi: f64,
    },
}

/// Full configuration of a simulated crowdsourcing run.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Dataset name.
    pub name: String,
    /// Task type (decides the answer representation).
    pub task_type: TaskType,
    /// Number of tasks `n`.
    pub num_tasks: usize,
    /// Number of workers `|W|`.
    pub num_workers: usize,
    /// Answers collected per task (Table 5's `|V|/n`).
    pub redundancy: usize,
    /// Class prior over truths for categorical tasks (length `ℓ`), or the
    /// `(lo, hi)` range truths are drawn uniformly from for numeric tasks
    /// encoded as a two-element vector.
    pub truth_prior: Vec<f64>,
    /// Worker behaviour model.
    pub worker_model: WorkerModel,
    /// Fraction of workers that are spammers (answer uniformly at random,
    /// or uniformly in the numeric range).
    pub spammer_fraction: f64,
    /// Zipf exponent for worker participation; larger means heavier tail
    /// (a handful of workers answer most tasks). 0 = uniform.
    pub zipf_exponent: f64,
    /// Fraction of tasks whose ground truth is published (S_Rel and
    /// S_Adult only release a subset; 1.0 elsewhere).
    pub truth_fraction: f64,
    /// Standard deviation of a per-task offset shared by *all* workers on
    /// numeric tasks (0 for categorical datasets). Real numeric crowd
    /// data shows correlated errors — the paper's consistency statistic
    /// C = 20.44 for N_Emotion sits well below the average per-worker
    /// RMSE of 28.9, which is only possible when part of each worker's
    /// error is common to the task. Ignored for categorical task types.
    pub numeric_task_offset_std: f64,
    /// Fraction of categorical tasks that are *hard*: on them every
    /// worker's per-answer accuracy is replaced by
    /// [`Self::hard_task_accuracy`], regardless of skill. Hard tasks are
    /// what caps real-data method quality below the independent-error
    /// ceiling (e.g. D_PosSent methods saturate at ≈96% despite 20
    /// answers per task) and what produces S_Adult's signature
    /// (consistent answers, C = 0.39, yet every method stuck at ≈36% on
    /// the gold subset). Ignored for numeric task types.
    pub hard_task_fraction: f64,
    /// Per-answer accuracy on hard tasks under [`HardTaskMode::Flatten`],
    /// or the multiplicative degradation factor under
    /// [`HardTaskMode::Scale`].
    pub hard_task_accuracy: f64,
    /// How hard tasks interact with worker skill.
    pub hard_task_mode: HardTaskMode,
    /// When true, ground truth is published exactly for the hard tasks
    /// (S_Adult's gold subset is concentrated on the hard, adult-rated
    /// pages) instead of a `truth_fraction` random sample.
    pub truth_only_on_hard: bool,
    /// Optional override for the `count` most participatory workers: they
    /// draw their parameters from this model instead of `worker_model`.
    ///
    /// This reproduces a structure the paper observes on S_Adult: the
    /// per-worker average accuracy is mediocre-but-okay (0.65) while every
    /// *method* scores ≈36%, which requires the heavy workers (who
    /// contribute most answers under the long tail) to be substantially
    /// worse than the light majority.
    pub heavy_worker_model: Option<(usize, WorkerModel)>,
}

impl SimulatorConfig {
    /// A small sane default for tests: 50 decision-making tasks, 10
    /// workers, redundancy 3, balanced truth, decent one-coin workers.
    pub fn small_decision() -> Self {
        Self {
            name: "SmallDecision".into(),
            task_type: TaskType::DecisionMaking,
            num_tasks: 50,
            num_workers: 10,
            redundancy: 3,
            truth_prior: vec![0.5, 0.5],
            worker_model: WorkerModel::OneCoin {
                alpha: 8.0,
                beta: 2.0,
            },
            spammer_fraction: 0.0,
            zipf_exponent: 1.0,
            truth_fraction: 1.0,
            numeric_task_offset_std: 0.0,
            hard_task_fraction: 0.0,
            hard_task_accuracy: 0.5,
            hard_task_mode: HardTaskMode::Flatten,
            truth_only_on_hard: false,
            heavy_worker_model: None,
        }
    }
}

/// Per-worker latent parameters drawn at simulation start; retrievable for
/// tests that check the estimators recover them.
#[derive(Debug, Clone)]
pub enum WorkerParams {
    /// One-coin accuracy.
    OneCoin {
        /// Probability of answering correctly.
        accuracy: f64,
    },
    /// Per-class diagonal accuracies.
    ClassConditional {
        /// `diag[j] = Pr(answer j | truth j)`.
        diag: Vec<f64>,
    },
    /// A full per-worker confusion matrix.
    ConfusionMatrix {
        /// `rows[j][k] = Pr(answer k | truth j)`.
        rows: Vec<Vec<f64>>,
    },
    /// Numeric bias and noise.
    Numeric {
        /// Additive bias.
        bias: f64,
        /// Noise standard deviation.
        sigma: f64,
    },
    /// Uniformly random answers.
    Spammer,
}

/// The simulator: holds the config and drawn worker parameters, and
/// produces [`Dataset`]s.
#[derive(Debug)]
pub struct CrowdSimulator {
    config: SimulatorConfig,
    workers: Vec<WorkerParams>,
    zipf_weights: Vec<f64>,
    rng: StdRng,
}

impl CrowdSimulator {
    /// Create a simulator, drawing per-worker latent parameters from the
    /// configured model.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (zero tasks/workers, empty or
    /// mis-sized truth prior, redundancy exceeding the worker count).
    pub fn new(config: SimulatorConfig, seed: u64) -> Self {
        assert!(config.num_tasks > 0, "need at least one task");
        assert!(config.num_workers > 0, "need at least one worker");
        assert!(
            config.redundancy <= config.num_workers,
            "redundancy {} cannot exceed worker count {} (a worker answers a task at most once)",
            config.redundancy,
            config.num_workers
        );
        assert!(
            (0.0..=1.0).contains(&config.spammer_fraction),
            "spammer_fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.truth_fraction),
            "truth_fraction in [0,1]"
        );
        match config.task_type {
            TaskType::Numeric => assert_eq!(
                config.truth_prior.len(),
                2,
                "numeric truth_prior must be [lo, hi]"
            ),
            t => assert_eq!(
                config.truth_prior.len(),
                t.num_choices().expect("categorical") as usize,
                "truth_prior length must equal the number of choices"
            ),
        }

        let mut rng = StdRng::seed_from_u64(seed);

        // Zipf participation weights over a random permutation of workers
        // (so worker index does not correlate with participation). Rank 0
        // is the heaviest worker.
        let mut perm: Vec<usize> = (0..config.num_workers).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut zipf_weights = vec![0.0; config.num_workers];
        let mut rank_of = vec![0usize; config.num_workers];
        for (rank, &w) in perm.iter().enumerate() {
            zipf_weights[w] = 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
            rank_of[w] = rank;
        }

        let workers = (0..config.num_workers)
            .map(|w| {
                let is_spammer =
                    (w as f64 + 0.5) / config.num_workers as f64 <= config.spammer_fraction;
                if is_spammer {
                    return WorkerParams::Spammer;
                }
                let model = match &config.heavy_worker_model {
                    Some((count, heavy)) if rank_of[w] < *count => heavy,
                    _ => &config.worker_model,
                };
                draw_worker_params(&mut rng, model)
            })
            .collect();

        Self {
            config,
            workers,
            zipf_weights,
            rng,
        }
    }

    /// Latent parameters of worker `w` (for tests and diagnostics).
    pub fn worker_params(&self, w: usize) -> &WorkerParams {
        &self.workers[w]
    }

    /// The configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Draw one complete dataset: truths, worker assignment, answers.
    pub fn generate(&mut self) -> Dataset {
        let n = self.config.num_tasks;
        let categorical = self.config.task_type.is_categorical();

        // 1. Truths.
        let truths: Vec<f64> = if categorical {
            (0..n)
                .map(|_| sample_categorical(&mut self.rng, &self.config.truth_prior) as f64)
                .collect()
        } else {
            let (lo, hi) = (self.config.truth_prior[0], self.config.truth_prior[1]);
            (0..n).map(|_| self.rng.gen_range(lo..hi)).collect()
        };

        // Hard-task mask for categorical tasks.
        let hard: Vec<bool> = if categorical && self.config.hard_task_fraction > 0.0 {
            (0..n)
                .map(|_| self.rng.gen_range(0.0..1.0) < self.config.hard_task_fraction)
                .collect()
        } else {
            vec![false; n]
        };

        // Shared per-task offsets for numeric tasks (correlated error).
        let offsets: Vec<f64> = if categorical || self.config.numeric_task_offset_std == 0.0 {
            vec![0.0; n]
        } else {
            (0..n)
                .map(|_| sample_gaussian(&mut self.rng, 0.0, self.config.numeric_task_offset_std))
                .collect()
        };

        // 2. Assignment: each task gets `redundancy` distinct workers,
        //    drawn by Zipf weight without replacement.
        let mut builder = DatasetBuilder::new(
            self.config.name.clone(),
            self.config.task_type,
            n,
            self.config.num_workers,
        );
        for task in 0..n {
            let chosen = self.pick_workers(self.config.redundancy);
            for worker in chosen {
                let answer = self.draw_answer(worker, truths[task] + offsets[task], hard[task]);
                match answer {
                    SimAnswer::Label(l) => builder
                        .add_label(task, worker, l)
                        .expect("simulator produced valid label"),
                    SimAnswer::Numeric(v) => builder
                        .add_numeric(task, worker, v)
                        .expect("simulator produced valid numeric"),
                }
            }
        }

        // 3. Publish ground truth: either exactly the hard tasks
        //    (S_Adult's gold structure) or a random subset.
        let publish_all = self.config.truth_fraction >= 1.0 && !self.config.truth_only_on_hard;
        for task in 0..n {
            let publish = if self.config.truth_only_on_hard {
                hard[task]
            } else {
                publish_all || self.rng.gen_range(0.0..1.0) < self.config.truth_fraction
            };
            if publish {
                if categorical {
                    builder
                        .set_truth_label(task, truths[task] as u8)
                        .expect("simulator produced valid truth");
                } else {
                    builder
                        .set_truth_numeric(task, truths[task])
                        .expect("simulator produced valid truth");
                }
            }
        }

        builder.build()
    }

    /// Weighted sample of `k` distinct workers.
    fn pick_workers(&mut self, k: usize) -> Vec<usize> {
        let mut weights = self.zipf_weights.clone();
        let mut chosen = Vec::with_capacity(k);
        for _ in 0..k {
            let w = sample_categorical(&mut self.rng, &weights);
            weights[w] = 0.0;
            chosen.push(w);
        }
        chosen
    }

    fn draw_answer(&mut self, worker: usize, truth: f64, hard: bool) -> SimAnswer {
        let choices = self.config.task_type.num_choices();
        // On hard tasks the worker's correct-probability is either
        // flattened to `hard_task_accuracy` (skill erased) or scaled by
        // it (skill preserved but degraded), depending on the mode.
        if hard {
            if let Some(l) = choices {
                if !matches!(self.workers[worker], WorkerParams::Spammer) {
                    let truth_label = truth as u8;
                    let chance = 1.0 / l as f64;
                    let p_correct = match self.config.hard_task_mode {
                        HardTaskMode::Flatten => self.config.hard_task_accuracy,
                        HardTaskMode::Scale => {
                            let base = match &self.workers[worker] {
                                WorkerParams::OneCoin { accuracy } => *accuracy,
                                WorkerParams::ClassConditional { diag } => {
                                    diag[truth_label as usize]
                                }
                                WorkerParams::ConfusionMatrix { rows } => {
                                    rows[truth_label as usize][truth_label as usize]
                                }
                                _ => chance,
                            };
                            (base * self.config.hard_task_accuracy).max(chance)
                        }
                    };
                    return if self.rng.gen_range(0.0..1.0) < p_correct {
                        SimAnswer::Label(truth_label)
                    } else {
                        SimAnswer::Label(random_other_label(&mut self.rng, l, truth_label))
                    };
                }
            }
        }
        match &self.workers[worker] {
            WorkerParams::Spammer => match choices {
                Some(l) => SimAnswer::Label(self.rng.gen_range(0..l)),
                None => {
                    let (lo, hi) = (self.config.truth_prior[0], self.config.truth_prior[1]);
                    SimAnswer::Numeric(self.rng.gen_range(lo..hi))
                }
            },
            WorkerParams::OneCoin { accuracy } => {
                let l = choices.expect("one-coin worker on categorical task");
                let truth = truth as u8;
                if self.rng.gen_range(0.0..1.0) < *accuracy {
                    SimAnswer::Label(truth)
                } else {
                    SimAnswer::Label(random_other_label(&mut self.rng, l, truth))
                }
            }
            WorkerParams::ClassConditional { diag } => {
                let l = choices.expect("class-conditional worker on categorical task");
                let truth = truth as u8;
                let p_correct = diag[truth as usize];
                if self.rng.gen_range(0.0..1.0) < p_correct {
                    SimAnswer::Label(truth)
                } else {
                    SimAnswer::Label(random_other_label(&mut self.rng, l, truth))
                }
            }
            WorkerParams::ConfusionMatrix { rows } => {
                let _ = choices.expect("confusion-matrix worker on categorical task");
                let truth = truth as u8;
                let row = rows[truth as usize].clone();
                SimAnswer::Label(sample_categorical(&mut self.rng, &row) as u8)
            }
            WorkerParams::Numeric { bias, sigma } => {
                SimAnswer::Numeric(truth + bias + sample_gaussian(&mut self.rng, 0.0, *sigma))
            }
        }
    }
}

enum SimAnswer {
    Label(u8),
    Numeric(f64),
}

// ---------------------------------------------------------------------------
// Streaming generator: million-task scale, O(1) memory, seed-stable.
// ---------------------------------------------------------------------------

/// splitmix64 — the finalizer used as the per-coordinate hash of the
/// streaming generator: every drawn quantity is a pure function of
/// `(seed, purpose, coordinates)`, so the stream can be replayed from any
/// point without carrying RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hash a purpose tag plus up to three coordinates into a u64.
fn mix(seed: u64, purpose: u64, a: u64, b: u64) -> u64 {
    splitmix64(
        seed ^ splitmix64(purpose ^ splitmix64(a).wrapping_add(b.wrapping_mul(0x9e3779b97f4a7c15))),
    )
}

/// Map a hash to a uniform f64 in `[0, 1)` (top 53 bits).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const PURPOSE_TRUTH: u64 = 0x54525554; // "TRUT"
const PURPOSE_ACC: u64 = 0x41434355; // "ACCU"
const PURPOSE_PICK: u64 = 0x5049434b; // "PICK"
const PURPOSE_ANS: u64 = 0x414e5357; // "ANSW"

/// A **streaming** crowd simulator for scale benchmarks: emits a
/// task-major `(task, worker, label)` record stream of `num_tasks ×
/// redundancy` answers in **O(1) memory** — no `Vec<AnswerRecord>`, no
/// RNG state. Every quantity (task truth, worker accuracy, per-task
/// worker picks, per-answer correctness) is a pure splitmix64 hash of
/// `(seed, purpose, coordinates)`, so:
///
/// - the stream is byte-identical across runs and platforms for a given
///   `(config, seed)` — seed-stable by construction;
/// - any subrange can be regenerated independently (the warm-resume
///   dirty-shard tests rebuild single shards from
///   [`StreamSim::task_records`]);
/// - generation never perturbs measurement: there is no shared RNG whose
///   consumption order could differ between sharded and flat paths.
///
/// Workers answer correctly with per-worker accuracy uniform in
/// `[0.55, 0.95]`; errors spread uniformly over the other `ℓ − 1`
/// labels; each task gets `redundancy` **distinct** workers (rejection
/// sampling over the hash stream).
#[derive(Debug, Clone, Copy)]
pub struct StreamSim {
    seed: u64,
    num_tasks: usize,
    num_workers: usize,
    num_choices: u8,
    redundancy: usize,
}

impl StreamSim {
    /// Configure a stream. `redundancy` must not exceed `num_workers`
    /// (a worker answers a task at most once), and the task type is
    /// always categorical with `num_choices ≥ 2`.
    ///
    /// # Panics
    /// Panics on zero tasks/workers, `num_choices < 2`, or
    /// `redundancy > num_workers`.
    pub fn new(
        seed: u64,
        num_tasks: usize,
        num_workers: usize,
        num_choices: u8,
        redundancy: usize,
    ) -> Self {
        assert!(num_tasks > 0, "need at least one task");
        assert!(num_workers > 0, "need at least one worker");
        assert!(num_choices >= 2, "need at least two choices");
        assert!(
            redundancy >= 1 && redundancy <= num_workers,
            "redundancy {redundancy} must be in 1..={num_workers}"
        );
        Self {
            seed,
            num_tasks,
            num_workers,
            num_choices,
            redundancy,
        }
    }

    /// Number of tasks `n`.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of workers `|W|`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of categorical choices `ℓ`.
    pub fn num_choices(&self) -> u8 {
        self.num_choices
    }

    /// Total answers the stream will emit (`n × redundancy`).
    pub fn num_answers(&self) -> usize {
        self.num_tasks * self.redundancy
    }

    /// Ground truth of `task` — a pure hash, no state.
    pub fn truth(&self, task: usize) -> u8 {
        (mix(self.seed, PURPOSE_TRUTH, task as u64, 0) % self.num_choices as u64) as u8
    }

    /// Latent accuracy of `worker`, uniform in `[0.55, 0.95]` — a pure
    /// hash, no state.
    pub fn worker_accuracy(&self, worker: usize) -> f64 {
        0.55 + 0.40 * unit(mix(self.seed, PURPOSE_ACC, worker as u64, 0))
    }

    /// The `redundancy` distinct workers assigned to `task`, in pick
    /// order (rejection sampling over the hash stream — each attempt is
    /// hashed by `(task, attempt)`, duplicates skipped).
    pub fn task_workers(&self, task: usize) -> Vec<u32> {
        let mut chosen: Vec<u32> = Vec::with_capacity(self.redundancy);
        let mut attempt = 0u64;
        while chosen.len() < self.redundancy {
            let w = (mix(self.seed, PURPOSE_PICK, task as u64, attempt) % self.num_workers as u64)
                as u32;
            attempt += 1;
            if !chosen.contains(&w) {
                chosen.push(w);
            }
        }
        chosen
    }

    /// The records of one task, in emission order — the subrange-replay
    /// primitive behind shard rebuilds.
    pub fn task_records(&self, task: usize) -> Vec<(u32, u32, u8)> {
        let truth = self.truth(task);
        self.task_workers(task)
            .into_iter()
            .map(|w| {
                let u = unit(mix(self.seed, PURPOSE_ANS, task as u64, w as u64));
                let label = if u < self.worker_accuracy(w as usize) {
                    truth
                } else {
                    // Uniform over the other ℓ − 1 labels, driven by the
                    // remaining hash bits.
                    let r = (mix(self.seed, PURPOSE_ANS ^ 0xff, task as u64, w as u64)
                        % (self.num_choices as u64 - 1)) as u8;
                    if r >= truth {
                        r + 1
                    } else {
                        r
                    }
                };
                (task as u32, w, label)
            })
            .collect()
    }

    /// The full task-major record stream: `(task, worker, label)` with
    /// tasks ascending — the canonical order the sharded substrate's
    /// bit-identity guarantee is anchored to.
    pub fn records(&self) -> impl Iterator<Item = (u32, u32, u8)> + '_ {
        (0..self.num_tasks).flat_map(move |task| self.task_records(task))
    }

    /// Materialise the stream as a [`Dataset`] (tests and small-scale
    /// cross-checks only — this is exactly the allocation the streaming
    /// path exists to avoid).
    pub fn to_dataset(&self, name: &str) -> Dataset {
        let mut b = DatasetBuilder::new(
            name.to_string(),
            TaskType::SingleChoice {
                choices: self.num_choices,
            },
            self.num_tasks,
            self.num_workers,
        );
        for (task, worker, label) in self.records() {
            b.add_label(task as usize, worker as usize, label)
                .expect("stream sim produced valid label");
        }
        for task in 0..self.num_tasks {
            b.set_truth_label(task, self.truth(task))
                .expect("stream sim produced valid truth");
        }
        b.build()
    }
}

/// Draw latent worker parameters from a behaviour model.
fn draw_worker_params<R: Rng + ?Sized>(rng: &mut R, model: &WorkerModel) -> WorkerParams {
    match model {
        WorkerModel::OneCoin { alpha, beta } => WorkerParams::OneCoin {
            accuracy: sample_beta(rng, *alpha, *beta),
        },
        WorkerModel::ClassConditional { diag } => WorkerParams::ClassConditional {
            diag: diag.iter().map(|&(a, b)| sample_beta(rng, a, b)).collect(),
        },
        WorkerModel::ConfusionMatrix {
            base,
            concentration,
        } => {
            let rows = base
                .iter()
                .map(|row| {
                    let alpha: Vec<f64> =
                        row.iter().map(|&p| (concentration * p).max(1e-3)).collect();
                    crowd_stats::dist::sample_dirichlet(rng, &alpha)
                })
                .collect();
            WorkerParams::ConfusionMatrix { rows }
        }
        WorkerModel::Numeric {
            bias_std,
            sigma_lo,
            sigma_hi,
        } => WorkerParams::Numeric {
            bias: sample_gaussian(rng, 0.0, *bias_std),
            sigma: rng.gen_range(*sigma_lo..=*sigma_hi),
        },
    }
}

/// Uniform draw over the `l - 1` labels different from `exclude`.
fn random_other_label<R: Rng + ?Sized>(rng: &mut R, l: u8, exclude: u8) -> u8 {
    debug_assert!(l >= 2);
    let r = rng.gen_range(0..l - 1);
    if r >= exclude {
        r + 1
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = SimulatorConfig::small_decision();
        let mut sim = CrowdSimulator::new(cfg, 7);
        let d = sim.generate();
        assert_eq!(d.num_tasks(), 50);
        assert_eq!(d.num_workers(), 10);
        assert_eq!(d.num_answers(), 150);
        for task in 0..50 {
            assert_eq!(d.task_degree(task), 3);
            // Distinct workers per task.
            let mut ws: Vec<usize> = d.answers_for_task(task).map(|r| r.worker).collect();
            ws.sort_unstable();
            ws.dedup();
            assert_eq!(ws.len(), 3);
        }
        assert_eq!(d.num_truths(), 50);
    }

    #[test]
    fn deterministic_under_seed() {
        let d1 = CrowdSimulator::new(SimulatorConfig::small_decision(), 99).generate();
        let d2 = CrowdSimulator::new(SimulatorConfig::small_decision(), 99).generate();
        assert_eq!(d1.records(), d2.records());
        assert_eq!(d1.truths(), d2.truths());
        let d3 = CrowdSimulator::new(SimulatorConfig::small_decision(), 100).generate();
        assert_ne!(d1.records(), d3.records());
    }

    #[test]
    fn good_workers_mostly_agree_with_truth() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 2000;
        cfg.worker_model = WorkerModel::OneCoin {
            alpha: 30.0,
            beta: 3.0,
        }; // ~0.9 accuracy
        let mut sim = CrowdSimulator::new(cfg, 3);
        let d = sim.generate();
        let mut correct = 0usize;
        for r in d.records() {
            if Some(r.answer) == d.truth(r.task) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.num_answers() as f64;
        assert!(acc > 0.82 && acc < 0.96, "aggregate accuracy {acc}");
    }

    #[test]
    fn spammers_are_near_chance() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 3000;
        cfg.num_workers = 4;
        cfg.redundancy = 4;
        cfg.spammer_fraction = 1.0;
        let mut sim = CrowdSimulator::new(cfg, 11);
        let d = sim.generate();
        let mut correct = 0usize;
        for r in d.records() {
            if Some(r.answer) == d.truth(r.task) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.num_answers() as f64;
        assert!((acc - 0.5).abs() < 0.05, "spammer accuracy {acc}");
    }

    #[test]
    fn zipf_creates_long_tail() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 2000;
        cfg.num_workers = 100;
        cfg.zipf_exponent = 1.2;
        let mut sim = CrowdSimulator::new(cfg, 5);
        let d = sim.generate();
        let mut degrees: Vec<usize> = (0..100).map(|w| d.worker_degree(w)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of workers should hold a disproportionate share.
        let total: usize = degrees.iter().sum();
        let top10: usize = degrees[..10].iter().sum();
        assert!(
            top10 as f64 > 0.35 * total as f64,
            "top-10 workers hold only {top10}/{total}"
        );
        // And many workers answer very little (long tail).
        let light = degrees.iter().filter(|&&d| d * 20 < degrees[0]).count();
        assert!(light > 30, "only {light} light workers");
    }

    #[test]
    fn numeric_workers_track_truth() {
        let cfg = SimulatorConfig {
            name: "num".into(),
            task_type: TaskType::Numeric,
            num_tasks: 500,
            num_workers: 20,
            redundancy: 5,
            truth_prior: vec![-100.0, 100.0],
            worker_model: WorkerModel::Numeric {
                bias_std: 3.0,
                sigma_lo: 5.0,
                sigma_hi: 10.0,
            },
            spammer_fraction: 0.0,
            zipf_exponent: 0.5,
            truth_fraction: 1.0,
            numeric_task_offset_std: 0.0,
            hard_task_fraction: 0.0,
            hard_task_accuracy: 0.5,
            hard_task_mode: HardTaskMode::Flatten,
            truth_only_on_hard: false,
            heavy_worker_model: None,
        };
        let mut sim = CrowdSimulator::new(cfg, 13);
        let d = sim.generate();
        let mut sq_err = 0.0;
        for r in d.records() {
            let t = d.truth(r.task).unwrap().numeric().unwrap();
            let v = r.answer.numeric().unwrap();
            sq_err += (v - t).powi(2);
        }
        let rmse = (sq_err / d.num_answers() as f64).sqrt();
        assert!(rmse > 4.0 && rmse < 14.0, "per-answer rmse {rmse}");
    }

    #[test]
    fn partial_truth_fraction_respected() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 2000;
        cfg.truth_fraction = 0.25;
        let mut sim = CrowdSimulator::new(cfg, 21);
        let d = sim.generate();
        let frac = d.num_truths() as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.05, "truth fraction {frac}");
    }

    #[test]
    fn hard_tasks_flatten_worker_skill() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 4000;
        cfg.worker_model = WorkerModel::OneCoin {
            alpha: 50.0,
            beta: 1.0,
        }; // ~0.98
        cfg.hard_task_fraction = 1.0; // every task hard
        cfg.hard_task_accuracy = 0.3;
        let mut sim = CrowdSimulator::new(cfg, 17);
        let d = sim.generate();
        let mut correct = 0usize;
        for r in d.records() {
            if Some(r.answer) == d.truth(r.task) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.num_answers() as f64;
        assert!((acc - 0.3).abs() < 0.03, "hard-task accuracy {acc}");
    }

    #[test]
    fn truth_only_on_hard_publishes_the_hard_subset() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.num_tasks = 2000;
        cfg.hard_task_fraction = 0.15;
        cfg.hard_task_accuracy = 0.3;
        cfg.truth_only_on_hard = true;
        let mut sim = CrowdSimulator::new(cfg, 23);
        let d = sim.generate();
        let frac = d.num_truths() as f64 / 2000.0;
        assert!(
            (frac - 0.15).abs() < 0.03,
            "published truth fraction {frac}"
        );
        // On the published (hard) tasks, per-answer accuracy is near the
        // hard level even though workers are skilled.
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in d.records() {
            if let Some(t) = d.truth(r.task) {
                total += 1;
                if r.answer == t {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(
            acc < 0.45,
            "gold-task per-answer accuracy {acc} should be near 0.3"
        );
    }

    #[test]
    fn stream_sim_is_seed_stable_and_task_major() {
        let sim = StreamSim::new(42, 200, 37, 3, 4);
        let a: Vec<(u32, u32, u8)> = sim.records().collect();
        let b: Vec<(u32, u32, u8)> = StreamSim::new(42, 200, 37, 3, 4).records().collect();
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), sim.num_answers());
        // Task-major, tasks ascending, redundancy distinct workers each.
        let mut at = 0usize;
        for task in 0..200u32 {
            let chunk = &a[at..at + 4];
            assert!(chunk.iter().all(|r| r.0 == task));
            let mut ws: Vec<u32> = chunk.iter().map(|r| r.1).collect();
            ws.sort_unstable();
            ws.dedup();
            assert_eq!(ws.len(), 4, "task {task} workers not distinct");
            at += 4;
        }
        // A different seed moves the stream.
        let c: Vec<(u32, u32, u8)> = StreamSim::new(43, 200, 37, 3, 4).records().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn stream_sim_subrange_replay_matches_full_stream() {
        // The dirty-shard rebuild path regenerates single tasks; they
        // must be byte-identical to the corresponding slice of the full
        // stream.
        let sim = StreamSim::new(7, 100, 23, 4, 3);
        let full: Vec<(u32, u32, u8)> = sim.records().collect();
        for task in [0usize, 13, 57, 99] {
            assert_eq!(
                sim.task_records(task),
                full[task * 3..(task + 1) * 3].to_vec(),
                "task {task}"
            );
        }
    }

    #[test]
    fn stream_sim_answers_track_latent_accuracy() {
        // Aggregate per-answer accuracy must sit near the mean of the
        // latent accuracy range [0.55, 0.95] (≈0.75).
        let sim = StreamSim::new(3, 5000, 50, 2, 3);
        let mut correct = 0usize;
        for (task, _, label) in sim.records() {
            if label == sim.truth(task as usize) {
                correct += 1;
            }
        }
        let acc = correct as f64 / sim.num_answers() as f64;
        assert!((0.68..0.82).contains(&acc), "aggregate accuracy {acc}");
        // And the dataset round-trip preserves counts and truths.
        let d = sim.to_dataset("stream");
        assert_eq!(d.num_answers(), sim.num_answers());
        assert_eq!(d.num_truths(), 5000);
        assert_eq!(d.max_task_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "redundancy")]
    fn rejects_redundancy_above_worker_count() {
        let mut cfg = SimulatorConfig::small_decision();
        cfg.redundancy = 11; // only 10 workers
        let _ = CrowdSimulator::new(cfg, 0);
    }
}
