//! The paper's running example (Tables 1–2).
//!
//! Six decision-making entity-resolution tasks over four product names,
//! answered by three workers. Worker `w3` is the high-quality one; MV gets
//! `t6` wrong and flips a coin on `t1`, while PM (Section 3) recovers all
//! six truths. Used as a golden test for every decision-making method.

use crate::builder::DatasetBuilder;
use crate::model::{Dataset, TaskType, LABEL_FALSE, LABEL_TRUE};

/// Build the example dataset of Table 2.
///
/// Tasks (in order): `t1:(r1=r2)`, `t2:(r1=r3)`, `t3:(r1=r4)`,
/// `t4:(r2=r3)`, `t5:(r2=r4)`, `t6:(r3=r4)`. Ground truth: `t1` and `t6`
/// are 'T', the rest 'F'. Worker `w2` did not answer `t1` (the blank cell
/// in Table 2).
pub fn paper_example() -> Dataset {
    let t = LABEL_TRUE;
    let f = LABEL_FALSE;
    let mut b = DatasetBuilder::new("PaperExample", TaskType::DecisionMaking, 6, 3);

    // w1: F T T F F F  (answers for t1..t6)
    for (task, ans) in [f, t, t, f, f, f].into_iter().enumerate() {
        b.add_label(task, 0, ans).expect("valid toy answer");
    }
    // w2: (blank) F F T T F  — Table 2 row 2, cells t2..t6; t1 unanswered.
    for (task, ans) in [(1, f), (2, f), (3, t), (4, t), (5, f)] {
        b.add_label(task, 1, ans).expect("valid toy answer");
    }
    // w3: T F F F F T
    for (task, ans) in [t, f, f, f, f, t].into_iter().enumerate() {
        b.add_label(task, 2, ans).expect("valid toy answer");
    }

    // Truth: only (r1=r2) and (r3=r4) are the same entity.
    for task in 0..6 {
        let truth = if task == 0 || task == 5 { t } else { f };
        b.set_truth_label(task, truth).expect("valid toy truth");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Answer;

    #[test]
    fn matches_table_2_shape() {
        let d = paper_example();
        assert_eq!(d.num_tasks(), 6);
        assert_eq!(d.num_workers(), 3);
        assert_eq!(d.num_answers(), 17); // 6 + 5 + 6, one blank cell
        assert_eq!(d.task_degree(0), 2); // t1 answered by w1 and w3 only
        for task in 1..6 {
            assert_eq!(d.task_degree(task), 3);
        }
        assert_eq!(d.worker_degree(1), 5); // w2 skipped t1
    }

    #[test]
    fn truth_matches_paper() {
        let d = paper_example();
        assert_eq!(d.truth(0), Some(Answer::Label(LABEL_TRUE)));
        assert_eq!(d.truth(5), Some(Answer::Label(LABEL_TRUE)));
        for task in 1..5 {
            assert_eq!(d.truth(task), Some(Answer::Label(LABEL_FALSE)));
        }
    }

    #[test]
    fn w3_agrees_with_truth_most() {
        // Count per-worker mistakes against *ground truth*: w1 misses 4,
        // w2 misses 3, and w3 is perfect. (The paper's 3/2/1 counts in
        // Section 3 are measured against the first-iteration estimates,
        // which differ from ground truth on t1 and t6.)
        let d = paper_example();
        let mut mistakes = [0usize; 3];
        for r in d.records() {
            let truth = d.truth(r.task).unwrap();
            if r.answer != truth {
                mistakes[r.worker] += 1;
            }
        }
        assert_eq!(mistakes, [4, 3, 0]);
    }
}
