//! AVX2 vector lanes for the `fast-math` polynomial cores.
//!
//! The scalar polynomial `exp`/`ln` in [`super::fast`] are straight-line
//! arithmetic, but LLVM does not auto-vectorise them through the
//! dispatcher call sites (`BENCH_kernels.json` showed `exp_slice` at
//! ~4.9 ns/elem vs ~4.8 for scalar `std` — no vector win at all). This
//! module is the explicit version: the same Cody–Waite reduction and
//! minimax polynomials evaluated four lanes at a time with
//! `core::arch::x86_64` intrinsics.
//!
//! # Bit-identity contract
//!
//! The vector cores are **bit-identical** to the scalar polynomial,
//! lane for lane. Every operation is an IEEE-exact per-lane op
//! (`mul`/`add`/`sub`/`div`/compare/blend and integer bit surgery) in
//! the exact association the scalar code uses; FMA *contraction* is
//! deliberately not emitted anywhere (fusing a multiply-add changes the
//! low bits and would fork the two legs). Runtime dispatch therefore
//! never changes a result: `fast-math-scalar` and `fast-math-avx2` are
//! the same function of the input, which is what lets the property
//! tests assert 0 ULP between the legs and keeps the pinned per-method
//! fixture tolerances valid regardless of which CPU ran them. (FMA is
//! still part of the *detection* gate so the backend name pins a stable
//! ISA level; the door stays open for a future backend that renegotiates
//! the contract.)
//!
//! The one scalar accommodation: `fast::exp` computes its reduction
//! index with `round_ties_even`, matching `_mm256_round_pd`'s
//! round-to-nearest-even (Rust's `f64::round` rounds halves away from
//! zero; either choice of `k` at an exact tie is a valid reduction
//! within the ≤4-ULP contract, but the two legs must agree).
//!
//! # Dispatch, alignment, tails, special values
//!
//! - **Detection** runs once ([`avx2_available`]): `avx2 && fma` via
//!   `is_x86_feature_detected!`, vetoed by `CROWD_FORCE_SCALAR` in the
//!   environment. [`force_scalar`] flips the same veto at runtime for
//!   benches/tests that measure both legs in one process.
//! - **Alignment**: all loads/stores are unaligned (`loadu`/`storeu`);
//!   callers hand us arbitrary row slices and split loops on alignment
//!   would fork the lane/tail boundary (and with it the bit pattern of
//!   *which* leg computed an element — identical legs make it moot, but
//!   unaligned-everywhere keeps the code one loop).
//! - **Tails**: slices are processed in chunks of 16 (four independent
//!   vectors), then a 4-wide step catches 4..=15-element remainders,
//!   and the last 0..=3 elements go through the scalar polynomial.
//!   Identical legs mean the tail boundaries are unobservable in the
//!   output.
//! - **Special values**: each 4-lane chunk is screened with a compare +
//!   movemask; any lane outside the branch-free core's domain (NaN,
//!   ±∞, exp overflow/underflow ranges, `ln` of zero/negative/
//!   subnormal inputs) routes the *whole chunk* through the scalar
//!   polynomial, which owns the IEEE edge semantics. The screen windows
//!   are conservative so the vector core never reaches the multi-step
//!   scale paths of `scale_by_pow2`.

#![allow(unsafe_code)]

use core::arch::x86_64::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use super::fast;

/// Runtime veto flipped by [`force_scalar`]; ORed with the
/// `CROWD_FORCE_SCALAR` environment veto captured at detection time.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// One-time CPU feature detection: AVX2 + FMA, unless the
/// `CROWD_FORCE_SCALAR` environment knob (any value but `0` or empty)
/// disables the vector leg for the whole process.
pub fn avx2_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let forced = std::env::var("CROWD_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        !forced
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Force the scalar polynomial leg (or release it) at runtime — the
/// in-process equivalent of `CROWD_FORCE_SCALAR=1`, used by the kernels
/// bench to measure both backends from one binary and by the property
/// tests to prove the dispatcher's scalar leg is the same function.
#[doc(hidden)]
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the vector leg is taken *right now* (detection minus vetoes).
#[inline]
pub fn avx2_active() -> bool {
    avx2_available() && !FORCE_SCALAR.load(Ordering::Relaxed)
}

// Screen window for the vector `exp` core: inside (EXP_LO, EXP_HI) the
// reduction index `k` stays in `[-1021, 1023]`, i.e. the single
// normal-range scale of `scale_by_pow2`, and the result neither
// overflows nor goes subnormal. EXP_LO leaves ~1.4 nats of margin so
// `exp(x - lse)` style callers (lse ≤ max + ln 4) stay inside too.
const EXP_LO: f64 = -700.0;
const EXP_HI: f64 = 709.0;

#[inline(always)]
unsafe fn splat(x: f64) -> __m256d {
    _mm256_set1_pd(x)
}

/// The fdlibm degree-5 rational `exp` core, four lanes at a time.
///
/// # Safety
/// Requires AVX2; every lane of `x` must lie in `(EXP_LO, EXP_HI)`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp4_core(x: __m256d) -> __m256d {
    // k = round_ties_even(x / ln 2) — matches the scalar leg exactly.
    let k = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(_mm256_mul_pd(
        x,
        splat(fast::INV_LN2),
    ));
    let hi = _mm256_sub_pd(x, _mm256_mul_pd(k, splat(fast::LN2_HI)));
    let lo = _mm256_mul_pd(k, splat(fast::LN2_LO));
    let r = _mm256_sub_pd(hi, lo);
    let rr = _mm256_mul_pd(r, r);
    // P1 + rr·(P2 + rr·(P3 + rr·(P4 + rr·P5))), separate mul/add (no
    // FMA contraction) in the scalar association.
    let mut p = _mm256_add_pd(splat(fast::P4), _mm256_mul_pd(rr, splat(fast::P5)));
    p = _mm256_add_pd(splat(fast::P3), _mm256_mul_pd(rr, p));
    p = _mm256_add_pd(splat(fast::P2), _mm256_mul_pd(rr, p));
    p = _mm256_add_pd(splat(fast::P1), _mm256_mul_pd(rr, p));
    let c = _mm256_sub_pd(r, _mm256_mul_pd(rr, p));
    // y = 1 + ((r·c / (2 − c) − lo) + hi)
    let y = _mm256_add_pd(
        splat(1.0),
        _mm256_add_pd(
            _mm256_sub_pd(
                _mm256_div_pd(_mm256_mul_pd(r, c), _mm256_sub_pd(splat(2.0), c)),
                lo,
            ),
            hi,
        ),
    );
    // y · 2^k via exponent-field surgery. The magic-number trick turns
    // the integral double `k` into an i64 lane: bits(1.5·2⁵² + k) =
    // 0x4338_0000_0000_0000 + k for |k| < 2⁵¹.
    const MAGIC: f64 = 6755399441055744.0; // 1.5 · 2⁵²
    const MAGIC_BITS: i64 = 0x4338_0000_0000_0000;
    let ki = _mm256_sub_epi64(
        _mm256_castpd_si256(_mm256_add_pd(k, splat(MAGIC))),
        _mm256_set1_epi64x(MAGIC_BITS),
    );
    let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
        ki,
        _mm256_set1_epi64x(1023),
    )));
    _mm256_mul_pd(y, scale)
}

/// The fdlibm `ln` core, four lanes at a time.
///
/// # Safety
/// Requires AVX2; every lane of `x` must be normal, positive, finite
/// (`f64::MIN_POSITIVE ≤ x < ∞`).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn ln4_core(x: __m256d) -> __m256d {
    let bits = _mm256_castpd_si256(x);
    // Exponent field → k; significand rebuilt with a zero exponent.
    let k = _mm256_sub_epi64(_mm256_srli_epi64::<52>(bits), _mm256_set1_epi64x(1023));
    let m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0x000f_ffff_ffff_ffff)),
        _mm256_set1_epi64x((1023i64) << 52),
    ));
    // if m > √2 { m /= 2; k += 1 } — compare mask is all-ones (−1 as
    // i64) where true, so k − mask is the conditional increment.
    let gt = _mm256_cmp_pd::<{ _CMP_GT_OQ }>(m, splat(std::f64::consts::SQRT_2));
    let m = _mm256_blendv_pd(m, _mm256_mul_pd(m, splat(0.5)), gt);
    let k = _mm256_sub_epi64(k, _mm256_castpd_si256(gt));
    // dk = k as f64, via the same magic-number trick in reverse.
    const MAGIC_BITS: i64 = 0x4338_0000_0000_0000;
    const MAGIC: f64 = 6755399441055744.0;
    let dk = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(k, _mm256_set1_epi64x(MAGIC_BITS))),
        splat(MAGIC),
    );
    let f = _mm256_sub_pd(m, splat(1.0));
    let hfsq = _mm256_mul_pd(_mm256_mul_pd(splat(0.5), f), f);
    let s = _mm256_div_pd(f, _mm256_add_pd(splat(2.0), f));
    let z = _mm256_mul_pd(s, s);
    let w = _mm256_mul_pd(z, z);
    // t1 = w·(LG2 + w·(LG4 + w·LG6)); t2 = z·(LG1 + w·(LG3 + w·(LG5 + w·LG7)))
    let t1 = _mm256_mul_pd(
        w,
        _mm256_add_pd(
            splat(fast::LG2),
            _mm256_mul_pd(
                w,
                _mm256_add_pd(splat(fast::LG4), _mm256_mul_pd(w, splat(fast::LG6))),
            ),
        ),
    );
    let t2 = _mm256_mul_pd(
        z,
        _mm256_add_pd(
            splat(fast::LG1),
            _mm256_mul_pd(
                w,
                _mm256_add_pd(
                    splat(fast::LG3),
                    _mm256_mul_pd(
                        w,
                        _mm256_add_pd(splat(fast::LG5), _mm256_mul_pd(w, splat(fast::LG7))),
                    ),
                ),
            ),
        ),
    );
    let r = _mm256_add_pd(t2, t1);
    // dk·LN2_HI − ((hfsq − (s·(hfsq + r) + dk·LN2_LO)) − f)
    _mm256_sub_pd(
        _mm256_mul_pd(dk, splat(fast::LN2_HI)),
        _mm256_sub_pd(
            _mm256_sub_pd(
                hfsq,
                _mm256_add_pd(
                    _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                    _mm256_mul_pd(dk, splat(fast::LN2_LO)),
                ),
            ),
            f,
        ),
    )
}

/// All-lanes mask of `x` the vector `exp` core may touch (NaN fails
/// both ordered compares and lands in the scalar leg).
#[inline(always)]
unsafe fn exp_range_mask(x: __m256d) -> __m256d {
    let lo = _mm256_cmp_pd::<{ _CMP_GT_OQ }>(x, splat(EXP_LO));
    let hi = _mm256_cmp_pd::<{ _CMP_LT_OQ }>(x, splat(EXP_HI));
    _mm256_and_pd(lo, hi)
}

#[inline(always)]
unsafe fn exp_in_range(x: __m256d) -> i32 {
    _mm256_movemask_pd(exp_range_mask(x))
}

/// All-lanes mask of `x` the vector `ln` core may touch: normal,
/// positive, finite. Zero, negatives, subnormals, ±∞ and NaN all fail.
#[inline(always)]
unsafe fn ln_range_mask(x: __m256d) -> __m256d {
    let lo = _mm256_cmp_pd::<{ _CMP_GE_OQ }>(x, splat(f64::MIN_POSITIVE));
    let hi = _mm256_cmp_pd::<{ _CMP_LT_OQ }>(x, splat(f64::INFINITY));
    _mm256_and_pd(lo, hi)
}

#[inline(always)]
unsafe fn ln_in_range(x: __m256d) -> i32 {
    _mm256_movemask_pd(ln_range_mask(x))
}

// The slice drivers process four independent vectors (16 elements) per
// iteration: the cores are long dependency chains ending in a divide,
// and extra in-flight chains let the out-of-order core overlap them
// (two chains ≈ 2×, four ≈ 3× over one). The 4-wide step catches
// 4..=15-element tails; the scalar loop the rest. Which path computed
// an element is unobservable (identical legs).

/// `x[i] ← exp(x[i])` — vector chunks, scalar polynomial for the tail
/// and for any chunk containing an out-of-window lane.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn exp_slice_avx2(xs: &mut [f64]) {
    let mut chunks = xs.chunks_exact_mut(16);
    for chunk in &mut chunks {
        let p = chunk.as_mut_ptr();
        let a = _mm256_loadu_pd(p);
        let b = _mm256_loadu_pd(p.add(4));
        let c = _mm256_loadu_pd(p.add(8));
        let d = _mm256_loadu_pd(p.add(12));
        let ok = _mm256_and_pd(
            _mm256_and_pd(exp_range_mask(a), exp_range_mask(b)),
            _mm256_and_pd(exp_range_mask(c), exp_range_mask(d)),
        );
        if _mm256_movemask_pd(ok) == 0xF {
            _mm256_storeu_pd(p, exp4_core(a));
            _mm256_storeu_pd(p.add(4), exp4_core(b));
            _mm256_storeu_pd(p.add(8), exp4_core(c));
            _mm256_storeu_pd(p.add(12), exp4_core(d));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::exp(*x);
            }
        }
    }
    let rest = chunks.into_remainder();
    let mut tail = rest.chunks_exact_mut(4);
    for chunk in &mut tail {
        let v = _mm256_loadu_pd(chunk.as_ptr());
        if exp_in_range(v) == 0xF {
            _mm256_storeu_pd(chunk.as_mut_ptr(), exp4_core(v));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::exp(*x);
            }
        }
    }
    for x in tail.into_remainder() {
        *x = fast::exp(*x);
    }
}

/// `x[i] ← ln(x[i])` — vector chunks, scalar polynomial elsewhere.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn ln_slice_avx2(xs: &mut [f64]) {
    let mut chunks = xs.chunks_exact_mut(16);
    for chunk in &mut chunks {
        let p = chunk.as_mut_ptr();
        let a = _mm256_loadu_pd(p);
        let b = _mm256_loadu_pd(p.add(4));
        let c = _mm256_loadu_pd(p.add(8));
        let d = _mm256_loadu_pd(p.add(12));
        let ok = _mm256_and_pd(
            _mm256_and_pd(ln_range_mask(a), ln_range_mask(b)),
            _mm256_and_pd(ln_range_mask(c), ln_range_mask(d)),
        );
        if _mm256_movemask_pd(ok) == 0xF {
            _mm256_storeu_pd(p, ln4_core(a));
            _mm256_storeu_pd(p.add(4), ln4_core(b));
            _mm256_storeu_pd(p.add(8), ln4_core(c));
            _mm256_storeu_pd(p.add(12), ln4_core(d));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::ln(*x);
            }
        }
    }
    let rest = chunks.into_remainder();
    let mut tail = rest.chunks_exact_mut(4);
    for chunk in &mut tail {
        let v = _mm256_loadu_pd(chunk.as_ptr());
        if ln_in_range(v) == 0xF {
            _mm256_storeu_pd(chunk.as_mut_ptr(), ln4_core(v));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::ln(*x);
            }
        }
    }
    for x in tail.into_remainder() {
        *x = fast::ln(*x);
    }
}

/// `x[i] ← ln(max(x[i], eps))` — the clamp makes almost every lane
/// normal/positive, so the range screen only trips on +∞ (and NaN,
/// which `max` absorbs exactly like the scalar `f64::max`).
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn safe_ln_slice_avx2(xs: &mut [f64], eps: f64) {
    let epsv = splat(eps);
    let mut chunks = xs.chunks_exact_mut(16);
    for chunk in &mut chunks {
        // maxpd returns the second operand when either is NaN — the
        // same "ignore NaN" answer as Rust's `f64::max(x, eps)`.
        let p = chunk.as_mut_ptr();
        let a = _mm256_max_pd(_mm256_loadu_pd(p), epsv);
        let b = _mm256_max_pd(_mm256_loadu_pd(p.add(4)), epsv);
        let c = _mm256_max_pd(_mm256_loadu_pd(p.add(8)), epsv);
        let d = _mm256_max_pd(_mm256_loadu_pd(p.add(12)), epsv);
        let ok = _mm256_and_pd(
            _mm256_and_pd(ln_range_mask(a), ln_range_mask(b)),
            _mm256_and_pd(ln_range_mask(c), ln_range_mask(d)),
        );
        if _mm256_movemask_pd(ok) == 0xF {
            _mm256_storeu_pd(p, ln4_core(a));
            _mm256_storeu_pd(p.add(4), ln4_core(b));
            _mm256_storeu_pd(p.add(8), ln4_core(c));
            _mm256_storeu_pd(p.add(12), ln4_core(d));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::ln(x.max(eps));
            }
        }
    }
    let rest = chunks.into_remainder();
    let mut tail = rest.chunks_exact_mut(4);
    for chunk in &mut tail {
        let v = _mm256_max_pd(_mm256_loadu_pd(chunk.as_ptr()), epsv);
        if ln_in_range(v) == 0xF {
            _mm256_storeu_pd(chunk.as_mut_ptr(), ln4_core(v));
        } else {
            for x in chunk.iter_mut() {
                *x = fast::ln(x.max(eps));
            }
        }
    }
    for x in tail.into_remainder() {
        *x = fast::ln(x.max(eps));
    }
}

/// `x[i] ← σ(x[i])` in the overflow-stable two-sided form: both sides
/// share `e = exp(−|x|)` and pick the numerator (`1` or `e`) by sign,
/// exactly like the scalar kernel's branch.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sigmoid_slice_avx2(xs: &mut [f64]) {
    #[inline(always)]
    unsafe fn sigmoid4(v: __m256d, neg_abs: __m256d) -> __m256d {
        let e = exp4_core(neg_abs);
        let numer = _mm256_blendv_pd(
            splat(1.0),
            e,
            _mm256_cmp_pd::<{ _CMP_LT_OQ }>(v, splat(0.0)),
        );
        _mm256_div_pd(numer, _mm256_add_pd(splat(1.0), e))
    }
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
    let mut chunks = xs.chunks_exact_mut(16);
    for chunk in &mut chunks {
        let p = chunk.as_mut_ptr();
        let a = _mm256_loadu_pd(p);
        let b = _mm256_loadu_pd(p.add(4));
        let c = _mm256_loadu_pd(p.add(8));
        let d = _mm256_loadu_pd(p.add(12));
        let na = _mm256_sub_pd(splat(0.0), _mm256_and_pd(a, abs_mask));
        let nb = _mm256_sub_pd(splat(0.0), _mm256_and_pd(b, abs_mask));
        let nc = _mm256_sub_pd(splat(0.0), _mm256_and_pd(c, abs_mask));
        let nd = _mm256_sub_pd(splat(0.0), _mm256_and_pd(d, abs_mask));
        // −|x| ∈ (−∞, 0]: only deep negatives (or NaN) fail the screen.
        let ok = _mm256_and_pd(
            _mm256_and_pd(exp_range_mask(na), exp_range_mask(nb)),
            _mm256_and_pd(exp_range_mask(nc), exp_range_mask(nd)),
        );
        if _mm256_movemask_pd(ok) == 0xF {
            _mm256_storeu_pd(p, sigmoid4(a, na));
            _mm256_storeu_pd(p.add(4), sigmoid4(b, nb));
            _mm256_storeu_pd(p.add(8), sigmoid4(c, nc));
            _mm256_storeu_pd(p.add(12), sigmoid4(d, nd));
        } else {
            for x in chunk.iter_mut() {
                *x = scalar_sigmoid(*x);
            }
        }
    }
    let rest = chunks.into_remainder();
    let mut tail = rest.chunks_exact_mut(4);
    for chunk in &mut tail {
        let v = _mm256_loadu_pd(chunk.as_ptr());
        let na = _mm256_sub_pd(splat(0.0), _mm256_and_pd(v, abs_mask));
        if exp_in_range(na) == 0xF {
            _mm256_storeu_pd(chunk.as_mut_ptr(), sigmoid4(v, na));
        } else {
            for x in chunk.iter_mut() {
                *x = scalar_sigmoid(*x);
            }
        }
    }
    for x in tail.into_remainder() {
        *x = scalar_sigmoid(*x);
    }
}

#[inline(always)]
fn scalar_sigmoid(x: f64) -> f64 {
    let e = fast::exp(-x.abs());
    if x >= 0.0 {
        1.0 / (1.0 + e)
    } else {
        e / (1.0 + e)
    }
}

/// `out[i] = exp(xs[i] − offs[i])` for one 4-lane block, with lanes
/// where `xs[i] == offs[i]` forced to exactly `1.0` when `one_on_eq`
/// (the [`super::log_sum_exp`] max-lane convention). Out-of-window
/// lanes demote the whole block to the scalar polynomial.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn exp_sub4(xs: &[f64; 4], offs: &[f64; 4], out: &mut [f64; 4], one_on_eq: bool) {
    let x = _mm256_loadu_pd(xs.as_ptr());
    let off = _mm256_loadu_pd(offs.as_ptr());
    let d = _mm256_sub_pd(x, off);
    if exp_in_range(d) == 0xF {
        let mut e = exp4_core(d);
        if one_on_eq {
            e = _mm256_blendv_pd(e, splat(1.0), _mm256_cmp_pd::<{ _CMP_EQ_OQ }>(x, off));
        }
        _mm256_storeu_pd(out.as_mut_ptr(), e);
    } else {
        for i in 0..4 {
            out[i] = if one_on_eq && xs[i] == offs[i] {
                1.0
            } else {
                fast::exp(xs[i] - offs[i])
            };
        }
    }
}

/// One 4-lane step of [`super::weighted_log_dot`]: `Σ w_i · ln(max(x_i,
/// eps))` with the lanes' logs vectorised and the four products added
/// in the scalar kernel's left-to-right order, into `acc`. Returns
/// `None` (leaving `acc` meaningless) when a clamped lane is outside
/// the `ln` window — the caller redoes the block scalar.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn weighted_log_dot4(
    weights: &[f64; 4],
    xs: &[f64; 4],
    eps: f64,
    acc: f64,
) -> Option<f64> {
    let v = _mm256_max_pd(_mm256_loadu_pd(xs.as_ptr()), splat(eps));
    if ln_in_range(v) != 0xF {
        return None;
    }
    let l = ln4_core(v);
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), l);
    let mut acc = acc;
    for i in 0..4 {
        acc += weights[i] * lanes[i];
    }
    Some(acc)
}

/// In-register [`super::log_sum_exp`] for a 4-wide row: max fold,
/// vector `exp(x − max)` with the max-lane `1.0` convention, then the
/// scalar kernel's left-to-right summation. Returns `None` when the
/// row is degenerate or leaves the vector window — the caller runs the
/// scalar path, which owns those semantics.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn log_sum_exp4(xs: &[f64; 4]) -> Option<f64> {
    let v = _mm256_loadu_pd(xs.as_ptr());
    // Sequential max fold, exactly like the scalar `fold(-inf, max)`
    // (keeps f64::max's NaN-ignoring semantics; maxpd differs on NaN).
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return None;
    }
    let maxv = splat(max);
    let d = _mm256_sub_pd(v, maxv);
    if exp_in_range(d) != 0xF {
        return None;
    }
    let e = _mm256_blendv_pd(
        exp4_core(d),
        splat(1.0),
        _mm256_cmp_pd::<{ _CMP_EQ_OQ }>(v, maxv),
    );
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), e);
    // Left-to-right summation order, same as the scalar kernel.
    let sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
    Some(max + fast::ln(sum))
}

/// In-register [`super::log_normalize`] for a 4-wide row (the ℓ = 4
/// posterior shape). Returns `false` without touching `xs` when any
/// intermediate leaves the vector window or the row is degenerate —
/// the caller then runs the scalar path, which owns those semantics.
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn log_normalize4(xs: &mut [f64; 4]) -> bool {
    let Some(lse) = log_sum_exp4(xs) else {
        return false;
    };
    if !lse.is_finite() {
        return false;
    }
    let v = _mm256_loadu_pd(xs.as_ptr());
    let d2 = _mm256_sub_pd(v, splat(lse));
    if exp_in_range(d2) != 0xF {
        return false;
    }
    _mm256_storeu_pd(xs.as_mut_ptr(), exp4_core(d2));
    true
}

// Conservative lower screen for the packed row kernels: a lane at
// distance `d = x − max` contributes `exp(d)` to the row sum and
// `exp(d − ln Σ)` to the normalised output, with `ln Σ ≤ ln 4` for
// rows of width ≤ 4 — so `d > −697` keeps both exponent arguments
// inside `(EXP_LO, EXP_HI)` with margin. NaN/±∞ lanes (and rows whose
// spread exceeds the window) fail the ordered compare and demote that
// row to the scalar kernel, which owns the edge semantics.
const PACKED_LO: f64 = -697.0;

/// Batched [`super::log_normalize`] over `data.len() / L` packed
/// `L`-wide rows (`L ≤ 4`), four rows per iteration.
///
/// The four rows are held **transposed** (column-major: register lane
/// `i` = row `r+i`), so the per-row reductions become plain vertical
/// ops — in particular the `ln` of the four row sums is a single
/// [`ln4_core`] call, where the per-row kernels spend a scalar `ln`
/// each. This is what makes ℓ-wide posterior softmaxes cheap when a
/// caller has many rows: one dispatch and one `#[target_feature]`
/// region for the whole buffer instead of per row.
///
/// Each row's arithmetic is the scalar kernel's, op for op: sequential
/// max fold (ties and NaN screened so `maxpd` agrees with `f64::max`),
/// `exp(x − max)` with the max-lane `1.0` convention, left-to-right
/// summation, `max + ln(Σ)`, then `exp(x − lse)` — bit-identical
/// output. Rows failing the [`PACKED_LO`] screen and the `< 4`-row
/// remainder run [`super::log_normalize_scalar`].
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate). `data.len()` must be a
/// multiple of `L`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn log_normalize_rows_packed<const L: usize>(data: &mut [f64]) {
    debug_assert!((1..=4).contains(&L));
    debug_assert!(data.len().is_multiple_of(L));
    let rows = data.len() / L;
    let mut r = 0;
    while r + 4 <= rows {
        let base = data.as_ptr().add(r * L);
        // Column gather: c[k] lane i = row (r+i) element k.
        let mut c = [_mm256_setzero_pd(); L];
        for (k, ck) in c.iter_mut().enumerate() {
            *ck = _mm256_set_pd(
                *base.add(3 * L + k),
                *base.add(2 * L + k),
                *base.add(L + k),
                *base.add(k),
            );
        }
        // Sequential max fold per row (vertical across columns). On a
        // NaN lane maxpd propagates the NaN into `d`, failing the
        // ordered screen below — so the rows the vector body keeps are
        // exactly the rows where maxpd and `f64::max` agree.
        let mut maxv = splat(f64::NEG_INFINITY);
        for &ck in c.iter() {
            maxv = _mm256_max_pd(maxv, ck);
        }
        let mut ok = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        let mut d = [_mm256_setzero_pd(); L];
        for (k, dk) in d.iter_mut().enumerate() {
            *dk = _mm256_sub_pd(c[k], maxv);
            ok = _mm256_and_pd(ok, _mm256_cmp_pd::<{ _CMP_GT_OQ }>(*dk, splat(PACKED_LO)));
        }
        // Transposed layout ⇒ the movemask is a per-ROW demotion mask.
        let okbits = _mm256_movemask_pd(ok);
        if okbits != 0 {
            // Σ exp(x − max), max lanes contributing exactly 1.0, in
            // left-to-right lane order (0.0 + e₀ ≡ e₀: the screened
            // terms are all normal positives).
            let mut sum = _mm256_setzero_pd();
            for k in 0..L {
                let e = _mm256_blendv_pd(
                    exp4_core(d[k]),
                    splat(1.0),
                    _mm256_cmp_pd::<{ _CMP_EQ_OQ }>(c[k], maxv),
                );
                sum = _mm256_add_pd(sum, e);
            }
            // Valid row sums lie in [1, 4] — always inside the ln
            // window; demoted rows compute garbage here and are
            // overwritten below.
            let lse = _mm256_add_pd(maxv, ln4_core(sum));
            let out = data.as_mut_ptr().add(r * L);
            for (k, &ck) in c.iter().enumerate() {
                let o = exp4_core(_mm256_sub_pd(ck, lse));
                let mut t = [0.0f64; 4];
                _mm256_storeu_pd(t.as_mut_ptr(), o);
                for (i, &ti) in t.iter().enumerate() {
                    if okbits & (1 << i) != 0 {
                        *out.add(i * L + k) = ti;
                    }
                }
            }
        }
        if okbits != 0xF {
            for i in 0..4 {
                if okbits & (1 << i) == 0 {
                    let row = std::slice::from_raw_parts_mut(data.as_mut_ptr().add((r + i) * L), L);
                    super::log_normalize_scalar(row);
                }
            }
        }
        r += 4;
    }
    for row in data[r * L..].chunks_exact_mut(L) {
        super::log_normalize_scalar(row);
    }
}

/// Batched [`super::log_sum_exp`] over `data.len() / L` packed `L`-wide
/// rows: `out[i] ← lse(row i)`. Same transposed four-rows-per-iteration
/// scheme and screens as [`log_normalize_rows_packed`], minus the final
/// normalise pass; demoted and remainder rows run
/// [`super::log_sum_exp_scalar`].
///
/// # Safety
/// Requires AVX2 (+FMA per the detection gate). `data.len()` must be a
/// multiple of `L` and `out.len() == data.len() / L`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn log_sum_exp_rows_packed<const L: usize>(data: &[f64], out: &mut [f64]) {
    debug_assert!((1..=4).contains(&L));
    debug_assert!(data.len().is_multiple_of(L));
    let rows = data.len() / L;
    debug_assert_eq!(out.len(), rows);
    let mut r = 0;
    while r + 4 <= rows {
        let base = data.as_ptr().add(r * L);
        let mut c = [_mm256_setzero_pd(); L];
        for (k, ck) in c.iter_mut().enumerate() {
            *ck = _mm256_set_pd(
                *base.add(3 * L + k),
                *base.add(2 * L + k),
                *base.add(L + k),
                *base.add(k),
            );
        }
        let mut maxv = splat(f64::NEG_INFINITY);
        for &ck in c.iter() {
            maxv = _mm256_max_pd(maxv, ck);
        }
        let mut ok = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        let mut d = [_mm256_setzero_pd(); L];
        for (k, dk) in d.iter_mut().enumerate() {
            *dk = _mm256_sub_pd(c[k], maxv);
            ok = _mm256_and_pd(ok, _mm256_cmp_pd::<{ _CMP_GT_OQ }>(*dk, splat(PACKED_LO)));
        }
        let okbits = _mm256_movemask_pd(ok);
        if okbits != 0 {
            let mut sum = _mm256_setzero_pd();
            for k in 0..L {
                let e = _mm256_blendv_pd(
                    exp4_core(d[k]),
                    splat(1.0),
                    _mm256_cmp_pd::<{ _CMP_EQ_OQ }>(c[k], maxv),
                );
                sum = _mm256_add_pd(sum, e);
            }
            let lse = _mm256_add_pd(maxv, ln4_core(sum));
            let mut t = [0.0f64; 4];
            _mm256_storeu_pd(t.as_mut_ptr(), lse);
            for (i, &ti) in t.iter().enumerate() {
                if okbits & (1 << i) != 0 {
                    out[r + i] = ti;
                }
            }
        }
        if okbits != 0xF {
            for i in 0..4 {
                if okbits & (1 << i) == 0 {
                    out[r + i] = super::log_sum_exp_scalar(&data[(r + i) * L..(r + i) * L + L]);
                }
            }
        }
        r += 4;
    }
    while r < rows {
        out[r] = super::log_sum_exp_scalar(&data[r * L..r * L + L]);
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::ulp_diff;
    use super::*;

    // The exhaustive adversarial comparisons live in
    // `tests/kernel_properties.rs`; these unit tests pin the cores
    // directly so a broken intrinsic fails close to home.

    fn have_avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    #[test]
    fn vector_exp_matches_scalar_polynomial_bitwise() {
        if !have_avx2() {
            return;
        }
        let mut xs: Vec<f64> = (-3000..3000).map(|i| i as f64 * 0.2345).collect();
        xs.extend([0.0, -0.0, 1.0, -1.0, 699.9, -699.9, 709.7, -745.0, f64::NAN]);
        let want: Vec<f64> = xs.iter().map(|&x| fast::exp(x)).collect();
        let mut got = xs.clone();
        unsafe { exp_slice_avx2(&mut got) };
        for ((&x, &w), &g) in xs.iter().zip(&want).zip(&got) {
            assert_eq!(ulp_diff(w, g), 0, "exp({x}): scalar {w:?} vs vector {g:?}");
        }
    }

    #[test]
    fn vector_ln_matches_scalar_polynomial_bitwise() {
        if !have_avx2() {
            return;
        }
        let mut xs: Vec<f64> = (1..6000).map(|i| i as f64 * 0.137).collect();
        xs.extend([1e-300, 1e-12, 1.0, 1e300, f64::MIN_POSITIVE, 5e-324, 0.0]);
        let want: Vec<f64> = xs.iter().map(|&x| fast::ln(x)).collect();
        let mut got = xs.clone();
        unsafe { ln_slice_avx2(&mut got) };
        for ((&x, &w), &g) in xs.iter().zip(&want).zip(&got) {
            assert_eq!(ulp_diff(w, g), 0, "ln({x}): scalar {w:?} vs vector {g:?}");
        }
    }

    /// `log_normalize` over the polynomial backend, open-coded — the
    /// function `log_normalize4` must equal bitwise (the dispatcher
    /// only routes here under `fast-math`, where `kernels::exp` is
    /// `fast::exp`; this reference works in every build).
    fn fast_log_normalize_reference(xs: &mut [f64; 4]) {
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = xs
            .iter()
            .map(|&x| if x == max { 1.0 } else { fast::exp(x - max) })
            .sum();
        let lse = max + fast::ln(sum);
        for x in xs.iter_mut() {
            *x = fast::exp(*x - lse);
        }
    }

    #[test]
    fn log_normalize4_matches_scalar_kernel() {
        if !have_avx2() {
            return;
        }
        for row in [
            [0.1, -0.4, 2.0, -3.0],
            [-690.0, -690.5, -691.0, -689.5],
            [0.0, 0.0, 0.0, 0.0],
        ] {
            let mut want = row;
            fast_log_normalize_reference(&mut want);
            let mut got = row;
            assert!(unsafe { log_normalize4(&mut got) }, "row {row:?} bailed");
            assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits), "row {row:?}");
        }
    }

    /// Adversarial packed-row buffer for a given width: ordinary rows
    /// mixed with rows that must demote (NaN, ±∞, all `-inf`, spread
    /// beyond the window), at every row count so group/remainder
    /// boundaries are all exercised.
    #[cfg(feature = "fast-math")]
    fn packed_fixture(l: usize, rows: usize) -> Vec<f64> {
        let pool = [
            0.3,
            -2.0,
            1.7,
            -0.4,
            f64::NAN,
            f64::NEG_INFINITY,
            650.0,
            -650.0,
            0.0,
            -0.0,
            f64::INFINITY,
            -27.6,
        ];
        (0..rows * l)
            .map(|i| pool[(i * 7 + i / l) % pool.len()])
            .collect()
    }

    /// The packed-row kernels' bit-identity contract is *to the scalar
    /// kernels as built under `fast-math`* (where the scalar leg is the
    /// same polynomial the vector cores replicate); the default build
    /// never reaches them (the flat dispatchers are feature-gated), so
    /// there the libm-backed scalar kernels legitimately differ by ULPs
    /// and the comparison is meaningless.
    #[cfg(feature = "fast-math")]
    #[test]
    fn packed_rows_match_scalar_kernel_bitwise() {
        if !have_avx2() {
            return;
        }
        for l in 1..=4usize {
            for rows in 0..=13usize {
                let data = packed_fixture(l, rows);
                let mut want = data.clone();
                for row in want.chunks_exact_mut(l) {
                    super::super::log_normalize_scalar(row);
                }
                let mut got = data.clone();
                unsafe {
                    match l {
                        1 => log_normalize_rows_packed::<1>(&mut got),
                        2 => log_normalize_rows_packed::<2>(&mut got),
                        3 => log_normalize_rows_packed::<3>(&mut got),
                        _ => log_normalize_rows_packed::<4>(&mut got),
                    }
                }
                for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "normalize l={l} rows={rows} elem {i}: {w:?} vs {g:?}"
                    );
                }

                let want_lse: Vec<f64> = data
                    .chunks_exact(l)
                    .map(super::super::log_sum_exp_scalar)
                    .collect();
                let mut got_lse = vec![0.0f64; rows];
                unsafe {
                    match l {
                        1 => log_sum_exp_rows_packed::<1>(&data, &mut got_lse),
                        2 => log_sum_exp_rows_packed::<2>(&data, &mut got_lse),
                        3 => log_sum_exp_rows_packed::<3>(&data, &mut got_lse),
                        _ => log_sum_exp_rows_packed::<4>(&data, &mut got_lse),
                    }
                }
                for (i, (&w, &g)) in want_lse.iter().zip(&got_lse).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "lse l={l} rows={rows} row {i}: {w:?} vs {g:?}"
                    );
                }
            }
        }
    }
}
