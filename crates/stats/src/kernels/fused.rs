//! Fused single-pass row kernels for the E-step hot loops.
//!
//! PR 5 batched the transcendentals; these kernels batch the *passes*.
//! An EM E-step used to touch its hot row several times — init,
//! gather-and-accumulate, `log_sum_exp`, normalize, each a separate
//! sweep — and
//! the per-row `log_normalize` paid for two exp passes plus call
//! overhead on rows of length 2–4. Here each composite is one walk
//! over the data:
//!
//! - [`fused_posterior_row`] — log-prior init + strided log-table
//!   gather/accumulate over a CSR task row + log-sum-exp + normalize,
//!   written directly into the posterior row (D&S/LFC/VI-MF shape);
//! - [`fused_two_term_row`] — the correct/wrong two-term accumulate +
//!   normalize (ZC/GLAD shape);
//! - [`ln_map_into`]/[`safe_ln_map_into`]/[`exp_map_into`]/
//!   [`sigmoid_map_into`] — `f(x)`-of-computed pipelines (`safe_ln` of
//!   products, `sigmoid∘exp` chains) that fill from a closure and
//!   transform in cache-resident blocks instead of write-everything /
//!   transform-everything sweeps;
//! - [`log_normalize_rows_blocked`] — the whole-matrix normalize with
//!   the per-row `log_sum_exp` temporaries hoisted into stack blocks.
//!
//! Every fused kernel is **bit-identical** to the multi-pass
//! composition it replaces, in every backend: the element operations,
//! their association, and the summation orders are unchanged — only
//! the number of times the data crosses the cache changes. Under
//! `fast-math-avx2` the transcendental legs run on the vector cores
//! (which are themselves bit-identical to the scalar polynomial).

#[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
use super::simd;
use super::{exp, exp_slice, ln_slice, log_normalize, safe_ln_slice, sigmoid_slice, LANES};

/// Posterior row E-step, fused: `out ← log_prior`, then for every
/// `base` yielded by the iterator `out[j] += table[base + j·ℓ]`
/// (ℓ = `out.len()`, the per-label stride of the flat log-confusion
/// table), then [`log_normalize`]. One pass over the answers, the
/// normalize in registers for ℓ = 4.
///
/// # Panics
/// Panics if `log_prior.len() != out.len()` or a base walks off the
/// table.
pub fn fused_posterior_row(
    out: &mut [f64],
    log_prior: &[f64],
    table: &[f64],
    bases: impl Iterator<Item = usize>,
) {
    out.copy_from_slice(log_prior);
    let l = out.len();
    if l == LANES {
        let o: &mut [f64; LANES] = out.try_into().expect("length checked");
        for b in bases {
            o[0] += table[b];
            o[1] += table[b + LANES];
            o[2] += table[b + 2 * LANES];
            o[3] += table[b + 3 * LANES];
        }
    } else {
        for b in bases {
            let mut idx = b;
            for o in out.iter_mut() {
                *o += table[idx];
                idx += l;
            }
        }
    }
    log_normalize(out);
}

/// Two-term posterior row E-step, fused: for every `(label, on, off)`
/// term, `out[j] += if j == label { on } else { off }`, then
/// [`log_normalize`]. The caller pre-initialises `out` (zeros, or a
/// log-prior). This is the ZC/GLAD accumulate shape, where each answer
/// contributes its log-correct weight to the answered label and its
/// log-wrong weight to every other label.
pub fn fused_two_term_row(out: &mut [f64], terms: impl Iterator<Item = (usize, f64, f64)>) {
    for (label, on, off) in terms {
        for (j, o) in out.iter_mut().enumerate() {
            *o += if j == label { on } else { off };
        }
    }
    log_normalize(out);
}

/// Fill/transform block size: big enough to amortise one dispatcher
/// call, small enough that the freshly written values are still in L1
/// when the transform pass reads them back.
const FILL_BLOCK: usize = 256;

macro_rules! map_into {
    ($out:ident, $f:ident, $slice_kernel:ident) => {{
        let mut start = 0;
        while start < $out.len() {
            let end = (start + FILL_BLOCK).min($out.len());
            for (i, o) in $out[start..end].iter_mut().enumerate() {
                *o = $f(start + i);
            }
            $slice_kernel(&mut $out[start..end]);
            start = end;
        }
    }};
}

/// `out[i] = ln(f(i))` — fill from the closure and take the log in
/// cache-resident blocks (the fused `ln`-of-products pass: the caller
/// computes the product/clamp in `f`, the transcendental runs on the
/// batched backend).
pub fn ln_map_into(out: &mut [f64], mut f: impl FnMut(usize) -> f64) {
    map_into!(out, f, ln_slice)
}

/// `out[i] = ln(max(f(i), 1e-12))` — the fused `safe_ln`-of-products
/// pass (log-table refresh from a probability table in one sweep).
pub fn safe_ln_map_into(out: &mut [f64], mut f: impl FnMut(usize) -> f64) {
    map_into!(out, f, safe_ln_slice)
}

/// `out[i] = exp(f(i))` — fused copy-and-exponentiate.
pub fn exp_map_into(out: &mut [f64], mut f: impl FnMut(usize) -> f64) {
    map_into!(out, f, exp_slice)
}

/// `out[i] = σ(f(i))` — the fused `sigmoid∘exp`-style pass: the caller
/// assembles the logit (e.g. `α_w · e^{ln β_t}` from gathered tables)
/// in `f`, the squash runs batched.
pub fn sigmoid_map_into(out: &mut [f64], mut f: impl FnMut(usize) -> f64) {
    map_into!(out, f, sigmoid_slice)
}

/// `out[i] = exp(xs[i] − offs[i])` for one lane block, `1.0` where
/// `xs[i] == offs[i]` when `one_on_eq` — scalar legs here, vector
/// lanes in [`simd::exp_sub4`].
#[inline]
fn exp_sub_lanes(
    xs: &[f64; LANES],
    offs: &[f64; LANES],
    out: &mut [f64; LANES],
    one_on_eq: bool,
    simd_on: bool,
) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd_on {
        // SAFETY: the caller checked `simd::avx2_active()`.
        unsafe { simd::exp_sub4(xs, offs, out, one_on_eq) };
        return;
    }
    let _ = simd_on;
    for i in 0..LANES {
        out[i] = if one_on_eq && xs[i] == offs[i] {
            1.0
        } else {
            exp(xs[i] - offs[i])
        };
    }
}

/// Rows handled per stack block by [`log_normalize_rows_blocked`].
const ROW_BLOCK: usize = 64;

/// [`log_normalize`] over every `cols`-wide row of `data`, with the
/// per-row temporaries (max, exp-sum, log-sum-exp) hoisted into stack
/// blocks of [`ROW_BLOCK`] rows. The matrix is swept in two linear
/// passes per block — row statistics, then `exp(x − lse)` — with the
/// exp work batched across row boundaries in [`LANES`]-wide chunks
/// (lanes carry their own row's offset, so short rows of 2–3 labels
/// still fill the vector unit). Bit-identical to the per-row form:
/// per-element operations and the within-row left-to-right summation
/// order are unchanged.
pub(crate) fn log_normalize_rows_blocked(cols: usize, data: &mut [f64]) {
    debug_assert!(cols > 0 && data.len().is_multiple_of(cols));
    let simd_on =
        cfg!(all(feature = "fast-math", target_arch = "x86_64")) && super::simd::avx2_active();
    let uniform = 1.0 / cols as f64;
    let rows = data.len() / cols;
    let mut maxs = [0.0f64; ROW_BLOCK];
    let mut sums = [0.0f64; ROW_BLOCK];
    let mut lses = [0.0f64; ROW_BLOCK];
    for r0 in (0..rows).step_by(ROW_BLOCK) {
        let bn = ROW_BLOCK.min(rows - r0);
        let block = &mut data[r0 * cols..(r0 + bn) * cols];
        // Pass 1a: per-row max (cheap, no transcendentals).
        for (bi, row) in block.chunks_exact(cols).enumerate() {
            maxs[bi] = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            sums[bi] = 0.0;
        }
        // Pass 1b: Σ exp(x − max) per row, batched across rows. Lanes
        // are accumulated into their rows in flat (row-major) order,
        // preserving each row's left-to-right sum. Degenerate rows
        // (non-finite max) produce garbage sums that pass 2 discards.
        let mut xin = [0.0f64; LANES];
        let mut offs = [0.0f64; LANES];
        let mut eout = [0.0f64; LANES];
        let mut rows_of = [0usize; LANES];
        let (mut r, mut c) = (0usize, 0usize);
        let mut i = 0;
        while i + LANES <= block.len() {
            xin.copy_from_slice(&block[i..i + LANES]);
            for lane in 0..LANES {
                rows_of[lane] = r;
                offs[lane] = maxs[r];
                c += 1;
                if c == cols {
                    c = 0;
                    r += 1;
                }
            }
            exp_sub_lanes(&xin, &offs, &mut eout, true, simd_on);
            for lane in 0..LANES {
                sums[rows_of[lane]] += eout[lane];
            }
            i += LANES;
        }
        while i < block.len() {
            let x = block[i];
            sums[r] += if x == maxs[r] { 1.0 } else { exp(x - maxs[r]) };
            c += 1;
            if c == cols {
                c = 0;
                r += 1;
            }
            i += 1;
        }
        // Row lse = max + ln(sum); the ln runs batched over the block.
        // Rows whose max is non-finite keep lse = max (the
        // `log_sum_exp` early return), and any non-finite lse (NaN in
        // the row, all −∞) means "spread uniformly" in pass 2.
        ln_slice(&mut sums[..bn]);
        for bi in 0..bn {
            lses[bi] = if maxs[bi].is_finite() {
                maxs[bi] + sums[bi]
            } else {
                maxs[bi]
            };
        }
        // Pass 2: x ← exp(x − lse), batched across rows; degenerate
        // rows are overwritten with the uniform vector afterwards.
        let (mut r, mut c) = (0usize, 0usize);
        let mut i = 0;
        while i + LANES <= block.len() {
            xin.copy_from_slice(&block[i..i + LANES]);
            for off in offs.iter_mut() {
                *off = lses[r];
                c += 1;
                if c == cols {
                    c = 0;
                    r += 1;
                }
            }
            exp_sub_lanes(&xin, &offs, &mut eout, false, simd_on);
            block[i..i + LANES].copy_from_slice(&eout);
            i += LANES;
        }
        while i < block.len() {
            block[i] = exp(block[i] - lses[r]);
            c += 1;
            if c == cols {
                c = 0;
                r += 1;
            }
            i += 1;
        }
        for bi in 0..bn {
            if !lses[bi].is_finite() {
                block[bi * cols..(bi + 1) * cols].fill(uniform);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{log_normalize, log_normalize_scalar, safe_ln, sigmoid_slice};
    use super::*;

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fused_posterior_row_matches_unfused_composition() {
        for l in [2usize, 3, 4, 7] {
            let table: Vec<f64> = (0..l * l * 5).map(|i| -0.01 * i as f64 - 0.3).collect();
            let prior: Vec<f64> = (0..l).map(|j| -1.1 - 0.2 * j as f64).collect();
            let bases = [0usize, l * l, 3 * l * l + 1, l * l + l - 1];
            // Unfused reference: copy, strided accumulate, normalize.
            let mut want = prior.clone();
            for &b in &bases {
                let mut idx = b;
                for o in want.iter_mut() {
                    *o += table[idx];
                    idx += l;
                }
            }
            log_normalize(&mut want);
            let mut got = vec![0.0; l];
            fused_posterior_row(&mut got, &prior, &table, bases.iter().copied());
            assert_eq!(bits(&want), bits(&got), "l = {l}");
        }
    }

    #[test]
    fn fused_two_term_row_matches_unfused_composition() {
        let terms = [(0usize, -0.1, -2.0), (2, -0.4, -1.5), (1, -0.2, -0.9)];
        let mut want = vec![0.0; 3];
        for &(label, on, off) in &terms {
            for (j, o) in want.iter_mut().enumerate() {
                *o += if j == label { on } else { off };
            }
        }
        log_normalize(&mut want);
        let mut got = vec![0.0; 3];
        fused_two_term_row(&mut got, terms.iter().copied());
        assert_eq!(bits(&want), bits(&got));
    }

    #[test]
    fn map_into_kernels_match_fill_then_slice() {
        let src: Vec<f64> = (0..523).map(|i| 0.37 * (i as f64 - 200.0)).collect();
        let mut want: Vec<f64> = src.iter().map(|&x| safe_ln(x.abs() * 0.5)).collect();
        // The reference is fill-then-slice over the whole buffer; the
        // scalar `safe_ln` above equals it elementwise by construction.
        let mut got = vec![0.0; src.len()];
        safe_ln_map_into(&mut got, |i| src[i].abs() * 0.5);
        assert_eq!(bits(&want), bits(&got));

        want = src.clone();
        sigmoid_slice(&mut want);
        sigmoid_map_into(&mut got, |i| src[i]);
        assert_eq!(bits(&want), bits(&got));
    }

    #[test]
    fn blocked_rows_match_per_row_log_normalize() {
        for cols in [1usize, 2, 3, 4, 5, 9] {
            let rows = 131; // crosses the ROW_BLOCK boundary
            let mut data: Vec<f64> = (0..rows * cols)
                .map(|i| ((i * 2654435761usize) % 1000) as f64 * 0.013 - 6.0)
                .collect();
            // Sprinkle degenerate and extreme rows.
            if cols > 1 {
                data[0..cols].fill(f64::NEG_INFINITY);
                data[cols..2 * cols].fill(-800.0);
                data[2 * cols] = f64::NAN;
            }
            let mut want = data.clone();
            for row in want.chunks_exact_mut(cols) {
                log_normalize_scalar(row);
            }
            let mut got = data;
            log_normalize_rows_blocked(cols, &mut got);
            assert_eq!(bits(&want), bits(&got), "cols = {cols}");
        }
    }
}
