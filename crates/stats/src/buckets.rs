//! Shared histogram bucketing math.
//!
//! Two bucket layouts live behind one indexing contract: the fixed-range
//! linear layout of [`crate::Histogram`] (Figures 2–3 of the paper) and
//! the log-linear latency layout the `crowd-obs` metrics registry builds
//! its lock-free atomic histograms on. Both map every finite `f64`
//! (and, totals-preserving, every NaN) to a bucket index and expose the
//! inverse `bounds(i)` mapping, so any consumer — a plain `Vec<u64>`, an
//! atomic bucket array, a renderer — shares one implementation of the
//! bucketing arithmetic.

/// Equal-width buckets over `[lo, hi)` with clamping at both edges:
/// values below `lo` land in bucket 0, values at or above `hi` in the
/// last bucket, NaN in bucket 0. Totals are always preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearBuckets {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl LinearBuckets {
    /// `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        Self { lo, hi, bins }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.bins
    }

    /// Whether the layout has no buckets (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.bins == 0
    }

    /// Lower bound of the covered range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the covered range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bucket index for `value`, clamped into `0..len()`. NaN maps to
    /// bucket 0 (it compares as "not above" every boundary).
    pub fn index(&self, value: f64) -> usize {
        let width = (self.hi - self.lo) / self.bins as f64;
        let raw = ((value - self.lo) / width).floor();
        // NaN→0 falls out of clamp (NaN.clamp(0, n) is NaN, and
        // `NaN as usize` saturates to 0).
        raw.clamp(0.0, (self.bins - 1) as f64) as usize
    }

    /// Inclusive-exclusive bounds `[lo_i, hi_i)` of bucket `i`.
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }
}

/// Log-linear buckets for positive, heavy-tailed measurements (latency
/// seconds): `decades` decades starting at `min`, each split into
/// `per_decade` equal-width linear buckets, plus an underflow bucket 0
/// (`value < min`, zero, negatives, NaN) and a final overflow bucket
/// (`value >= min * 10^decades`).
///
/// With `min = 1e-6`, `decades = 9`, `per_decade = 9` the boundaries run
/// 1µs, 2µs, …, 9µs, 10µs, 20µs, … up to 1000s in 83 buckets — relative
/// resolution bounded by ~2× at the coarse end of a decade, good enough
/// for p50/p95/p99 readouts without per-recording floating-point `log`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLinearBuckets {
    min: f64,
    decades: usize,
    per_decade: usize,
    /// The `decades * per_decade + 1` finite bucket boundaries, computed
    /// once so `index` and `bounds` agree bit-for-bit on every edge.
    edges: Vec<f64>,
}

impl LogLinearBuckets {
    /// A layout of `decades` decades above `min`, each split linearly
    /// into `per_decade` buckets.
    ///
    /// # Panics
    /// Panics if `min` is not finite and positive, or either count is 0.
    pub fn new(min: f64, decades: usize, per_decade: usize) -> Self {
        assert!(
            min.is_finite() && min > 0.0,
            "log-linear min must be positive and finite, got {min}"
        );
        assert!(decades > 0, "need at least one decade");
        assert!(per_decade > 0, "need at least one bucket per decade");
        let mut edges = Vec::with_capacity(decades * per_decade + 1);
        edges.push(min);
        for d in 0..decades {
            let lo = min * 10f64.powi(d as i32);
            let hi = min * 10f64.powi(d as i32 + 1);
            let width = (hi - lo) / per_decade as f64;
            for sub in 1..per_decade {
                edges.push(lo + sub as f64 * width);
            }
            // The decade's last edge is the next decade's first: force
            // the exact power so the two computations cannot disagree.
            edges.push(hi);
        }
        assert!(
            edges.last().copied().unwrap_or(f64::INFINITY).is_finite(),
            "layout overflows f64: min {min}, {decades} decades"
        );
        Self {
            min,
            decades,
            per_decade,
            edges,
        }
    }

    /// The default latency layout: 1µs to 1000s, 9 linear buckets per
    /// decade (boundaries at 1–9µs, 10–90µs, … in unit steps).
    pub fn latency_seconds() -> Self {
        Self::new(1e-6, 9, 9)
    }

    /// Total number of buckets, underflow and overflow included.
    pub fn len(&self) -> usize {
        self.decades * self.per_decade + 2
    }

    /// Whether the layout has no buckets (never true).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Start of the first decade (underflow threshold).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Number of decades covered.
    pub fn decades(&self) -> usize {
        self.decades
    }

    /// Linear subdivisions per decade.
    pub fn per_decade(&self) -> usize {
        self.per_decade
    }

    /// Bucket index for `value`. Sub-`min` values (zero, negatives, NaN
    /// included) go to the underflow bucket 0; values at or beyond the
    /// last decade go to the overflow bucket `len() - 1`.
    pub fn index(&self, value: f64) -> usize {
        if value.is_nan() || value < self.min {
            return 0; // underflow, including NaN
        }
        if value >= *self.edges.last().expect("non-empty edges") {
            return self.len() - 1; // overflow
        }
        // Binary search over ~80 precomputed edges (no log10 on the
        // record path): `partition_point` counts edges ≤ value, which for
        // value ∈ [edges[k-1], edges[k]) is exactly k — interior bucket k.
        self.edges.partition_point(|&e| e <= value)
    }

    /// Inclusive-exclusive bounds `[lo_i, hi_i)` of bucket `i`. The
    /// underflow bucket reports `(0.0, min)`, the overflow bucket
    /// `(min * 10^decades, +inf)`.
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        if i == 0 {
            return (0.0, self.min);
        }
        if i >= self.len() - 1 {
            return (*self.edges.last().expect("non-empty edges"), f64::INFINITY);
        }
        (self.edges[i - 1], self.edges[i])
    }

    /// Representative upper edge of bucket `i` for quantile readout: the
    /// bucket's exclusive upper bound, except the overflow bucket, which
    /// reports its (finite) lower bound.
    pub fn quantile_edge(&self, i: usize) -> f64 {
        let (lo, hi) = self.bounds(i);
        if hi.is_finite() {
            hi
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_expected_partition() {
        let b = LinearBuckets::new(0.0, 1.0, 4);
        assert_eq!(b.index(0.0), 0);
        assert_eq!(b.index(0.24), 0);
        assert_eq!(b.index(0.25), 1);
        assert_eq!(b.index(0.99), 3);
        assert_eq!(b.index(-5.0), 0);
        assert_eq!(b.index(2.0), 3);
        assert_eq!(b.index(f64::NAN), 0);
        assert_eq!(b.bounds(1), (0.25, 0.5));
    }

    #[test]
    fn log_linear_covers_every_float_once() {
        let b = LogLinearBuckets::latency_seconds();
        assert_eq!(b.len(), 83);
        // Underflow: zero, negatives, NaN, sub-min.
        for v in [0.0, -1.0, f64::NAN, 5e-7, f64::NEG_INFINITY] {
            assert_eq!(b.index(v), 0, "{v}");
        }
        // Exact decade boundaries open a new decade.
        assert_eq!(b.index(1e-6), 1);
        assert_eq!(b.index(9.99e-6), 9);
        assert_eq!(b.index(1e-5), 10);
        assert_eq!(b.index(1e-3), 28);
        // Overflow at and beyond the top.
        assert_eq!(b.index(1000.0), 82);
        assert_eq!(b.index(f64::INFINITY), 82);
        assert_eq!(b.index(999.0), 81);
    }

    #[test]
    fn log_linear_bounds_invert_index() {
        let b = LogLinearBuckets::new(1e-3, 4, 5);
        for i in 0..b.len() {
            let (lo, hi) = b.bounds(i);
            assert!(lo < hi, "bucket {i}: [{lo}, {hi})");
            if i > 0 {
                assert_eq!(b.index(lo), i, "lower bound of bucket {i}");
            }
            if hi.is_finite() {
                // The upper bound belongs to the next bucket.
                assert_eq!(b.index(hi), i + 1, "upper bound of bucket {i}");
                // A midpoint stays inside.
                assert_eq!(b.index(0.5 * (lo + hi)), i, "midpoint of bucket {i}");
            }
        }
        // Buckets tile: each bucket's hi is the next bucket's lo.
        for i in 1..b.len() - 1 {
            assert_eq!(b.bounds(i).1, b.bounds(i + 1).0, "gap after bucket {i}");
        }
    }

    #[test]
    fn quantile_edges_are_finite() {
        let b = LogLinearBuckets::latency_seconds();
        for i in 0..b.len() {
            assert!(b.quantile_edge(i).is_finite(), "bucket {i}");
        }
    }
}
