//! Special functions: log-gamma, digamma, trigamma, error function, and the
//! regularized incomplete gamma and beta functions.
//!
//! Accuracy targets are what the benchmark needs (absolute error well below
//! 1e-9 over the argument ranges that arise), not full `libm` rigor. Each
//! routine documents its method and domain.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey / Numerical Recipes).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Relative
/// error is below 1e-13 over the positive reals.
///
/// # Panics
/// Panics in debug builds if `x` is NaN.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(!x.is_nan(), "ln_gamma(NaN)");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::INFINITY; // pole at non-positive integers
        }
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x) for `x > 0`.
///
/// Recurrence to push the argument above 6, then the standard asymptotic
/// expansion. Absolute error below 1e-12 for `x > 1e-4`.
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // ψ(x) = ψ(x+1) − 1/x
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic series: ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n})
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Trigamma function ψ₁(x) = d²/dx² ln Γ(x) for `x > 0`.
pub fn trigamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // ψ₁(x) = ψ₁(x+1) + 1/x²
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += inv
        * (1.0
            + 0.5 * inv
            + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))));
    result
}

/// Log of the beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction for the
/// complement otherwise (Numerical Recipes 6.2). Domain: `a > 0`, `x ≥ 0`.
pub fn inc_gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "inc_gamma_p domain: a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn inc_gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "inc_gamma_q domain: a>0, x>=0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`, converges quickly for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`, converges for `x ≥ a + 1`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function, computed from the incomplete gamma:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x.signum() * inc_gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        1.0 + inc_gamma_p(0.5, x * x)
    } else {
        inc_gamma_q(0.5, x * x)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 ≤ x ≤ 1` (Numerical Recipes `betai`, Lentz continued fraction).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "inc_beta domain: a,b > 0");
    debug_assert!((0.0..=1.0).contains(&x), "inc_beta domain: 0 <= x <= 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    // Use the continued fraction on whichever side converges faster.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12); // Γ(5) = 4! = 24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        close(ln_gamma(10.5), 13.940_625_219_403_763, 1e-9);
    }

    #[test]
    fn ln_gamma_reflection_negative_half() {
        // Γ(−0.5) = −2√π, so ln|Γ(−0.5)| = ln(2√π).
        close(
            ln_gamma(-0.5),
            (2.0 * std::f64::consts::PI.sqrt()).ln(),
            1e-10,
        );
    }

    #[test]
    fn digamma_matches_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER, 1e-10);
        close(digamma(2.0), 1.0 - EULER, 1e-10);
        close(digamma(0.5), -EULER - 2.0 * 2.0_f64.ln(), 1e-10);
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.3, 1.7, 4.2, 11.0, 40.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            close(digamma(x), numeric, 1e-6);
        }
    }

    #[test]
    fn trigamma_matches_known_values() {
        close(trigamma(1.0), std::f64::consts::PI.powi(2) / 6.0, 1e-10);
        close(trigamma(0.5), std::f64::consts::PI.powi(2) / 2.0, 1e-10);
    }

    #[test]
    fn inc_gamma_complements_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (30.0, 22.0)] {
            close(inc_gamma_p(a, x) + inc_gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn inc_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(inc_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erfc(1.0), 0.157_299_207_050_285_1, 1e-10);
    }

    #[test]
    fn inc_beta_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            close(inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (8.0, 2.0, 0.9)] {
            close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.3}(2, 5) computed externally.
        close(inc_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
        close(inc_beta(2.0, 5.0, 0.3), 0.579_825_2, 1e-6);
    }
}
