//! Fixed-bin histograms.
//!
//! Figures 2 and 3 of the paper are histograms of worker redundancy
//! (#tasks answered per worker) and worker quality (accuracy / RMSE per
//! worker). This module provides the binning and a terminal renderer the
//! experiment harness uses to print the same shapes.

use crate::buckets::LinearBuckets;

/// A histogram over `[lo, hi)` with equally sized bins.
///
/// Values below `lo` clamp into the first bin and values at or above `hi`
/// clamp into the last, so totals are preserved (the paper's figures also
/// show every worker somewhere). The bucketing arithmetic lives in
/// [`LinearBuckets`], shared with the atomic latency histograms of
/// `crowd-obs`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: LinearBuckets,
    counts: Vec<u64>,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Self {
            buckets: LinearBuckets::new(lo, hi, bins),
            counts: vec![0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.buckets.lo()
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.buckets.hi()
    }

    /// Index of the bin a value falls into (with clamping at the edges).
    pub fn bin_index(&self, value: f64) -> usize {
        self.buckets.index(value)
    }

    /// Record one observation.
    pub fn add(&mut self, value: f64) {
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
    }

    /// Record many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inclusive-exclusive bounds `[lo_i, hi_i)` of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        self.buckets.bounds(i)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_bounds(i);
        0.5 * (a + b)
    }

    /// Render as an ASCII bar chart with the given maximum bar width,
    /// one bin per line: `"[lo, hi)  count  ####"`.
    pub fn render(&self, max_bar: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for i in 0..self.counts.len() {
            let (a, b) = self.bin_bounds(i);
            let c = self.counts[i];
            let bar_len = ((c as f64 / peak as f64) * max_bar as f64).round() as usize;
            out.push_str(&format!(
                "[{a:>9.2}, {b:>9.2})  {c:>7}  {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.0, 0.24, 0.25, 0.5, 0.74, 0.75, 0.99]);
        assert_eq!(h.counts(), &[2, 1, 2, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-3.0);
        h.add(10.0);
        h.add(999.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bounds_and_centers() {
        let h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.bin_bounds(0), (0.0, 10.0));
        assert_eq!(h.bin_bounds(9), (90.0, 100.0));
        assert!((h.bin_center(4) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn render_is_proportional() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.add(0.5);
        }
        for _ in 0..5 {
            h.add(1.5);
        }
        let r = h.render(20);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('#').count(), 20);
        assert_eq!(lines[1].matches('#').count(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
