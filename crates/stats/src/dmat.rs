//! A small row-major dense matrix for the inference hot loops.
//!
//! The EM-family methods iterate posterior (`n × ℓ`) and confusion
//! (`m·ℓ × ℓ`) matrices thousands of times. Nested `Vec<Vec<f64>>`
//! scatters rows across the heap and costs an allocation per row per
//! rebuild; [`DMat`] keeps one contiguous buffer, so a full M-step is a
//! linear sweep and an E-step's row reads are cache-local. All mutating
//! helpers work in place — the hot loops allocate nothing per iteration.

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// An `rows × cols` matrix of zeros.
    ///
    /// # Panics
    /// Panics if `cols == 0` while `rows > 0` (row indexing would be
    /// meaningless).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// An `rows × cols` matrix with every cell set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(
            cols > 0 || rows == 0,
            "cols must be positive for a non-empty matrix"
        );
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from nested rows (each must have the same length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Set every cell to `value` in place.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Normalize row `i` to sum to one in place (left untouched when the
    /// row total is zero or non-finite).
    #[inline]
    pub fn row_normalize(&mut self, i: usize) {
        let row = self.row_mut(i);
        let total: f64 = row.iter().sum();
        if total > 0.0 && total.is_finite() {
            row.iter_mut().for_each(|x| *x /= total);
        }
    }

    /// `row_i += a · x` in place (the axpy building block for
    /// expected-count accumulation in EM-style updates).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    #[inline]
    pub fn axpy_row(&mut self, i: usize, a: f64, x: &[f64]) {
        let row = self.row_mut(i);
        assert_eq!(x.len(), row.len(), "axpy operand length mismatch");
        for (r, &v) in row.iter_mut().zip(x) {
            *r += a * v;
        }
    }

    /// Copy this matrix into nested rows (for the public `posteriors` /
    /// `Confusion` API surfaces, which keep the paper-friendly shape).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|i| self.row(i).to_vec()).collect()
    }

    /// Consuming form of [`Self::to_nested`]. The nested shape requires
    /// one allocation per row either way; this form just signals that the
    /// matrix is done being used.
    pub fn into_nested(self) -> Vec<Vec<f64>> {
        self.to_nested()
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_indexing() {
        let mut m = DMat::zeros(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        m[(1, 0)] = 5.0;
        m[(2, 1)] = -1.0;
        assert_eq!(m.row(1), &[5.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, -1.0]);
        assert_eq!(m.data(), &[0.0, 0.0, 5.0, 0.0, 0.0, -1.0]);
    }

    #[test]
    fn fill_and_row_mut() {
        let mut m = DMat::filled(2, 3, 1.0);
        m.row_mut(0).copy_from_slice(&[2.0, 4.0, 6.0]);
        m.fill(0.5);
        assert!(m.data().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn row_normalize_in_place() {
        let mut m = DMat::from_rows(&[vec![1.0, 3.0], vec![0.0, 0.0]]);
        m.row_normalize(0);
        m.row_normalize(1);
        assert_eq!(m.row(0), &[0.25, 0.75]);
        // Zero row untouched.
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = DMat::zeros(2, 3);
        m.axpy_row(1, 2.0, &[1.0, 0.5, 0.0]);
        m.axpy_row(1, 1.0, &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[2.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn nested_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = DMat::from_rows(&rows);
        assert_eq!(m.to_nested(), rows);
        assert_eq!(m.into_nested(), rows);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = DMat::zeros(0, 0);
        assert_eq!(m.rows(), 0);
        assert!(m.data().is_empty());
        assert_eq!(m.to_nested(), Vec::<Vec<f64>>::new());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        DMat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
