//! Random sampling and probability-vector helpers.
//!
//! `rand` 0.8 ships uniform sampling only (the distribution zoo lives in
//! `rand_distr`, which is not on the approved dependency list), so the
//! Gaussian / Gamma / Beta / Dirichlet samplers the Gibbs and simulation
//! code need are implemented here: Marsaglia's polar method for normals and
//! Marsaglia–Tsang for gammas.

use rand::Rng;

/// Draw a standard normal deviate scaled to `N(mean, std_dev²)` using
/// Marsaglia's polar method.
///
/// # Panics
/// Panics if `std_dev` is negative.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "sample_gaussian requires std_dev >= 0");
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return mean + std_dev * u * factor;
        }
    }
}

/// Draw from `Gamma(shape, scale)` (mean = `shape * scale`) via
/// Marsaglia–Tsang (2000); the `shape < 1` case uses the boost
/// `Gamma(a) = Gamma(a+1) · U^{1/a}`.
///
/// # Panics
/// Panics if `shape` or `scale` is not strictly positive.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "sample_gamma requires shape, scale > 0"
    );
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_gaussian(rng, 0.0, 1.0);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Draw from `Beta(a, b)` as a ratio of gammas.
pub fn sample_beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = sample_gamma(rng, a, 1.0);
    let y = sample_gamma(rng, b, 1.0);
    x / (x + y)
}

/// Draw from a Dirichlet distribution with concentration vector `alpha`.
///
/// # Panics
/// Panics if `alpha` is empty or contains non-positive entries.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(
        !alpha.is_empty(),
        "sample_dirichlet requires a non-empty alpha"
    );
    let mut draws: Vec<f64> = alpha.iter().map(|&a| sample_gamma(rng, a, 1.0)).collect();
    let total: f64 = draws.iter().sum();
    if total > 0.0 {
        for d in &mut draws {
            *d /= total;
        }
    } else {
        // All gammas underflowed (extremely small alphas): fall back to
        // a uniform vector rather than returning NaNs.
        let uniform = 1.0 / alpha.len() as f64;
        draws.fill(uniform);
    }
    draws
}

/// Sample an index from an *unnormalized* non-negative weight vector.
///
/// Falls back to uniform sampling when all weights are zero.
///
/// # Panics
/// Panics if `weights` is empty or contains a negative or NaN entry.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(
        !weights.is_empty(),
        "sample_categorical requires non-empty weights"
    );
    let mut total = 0.0;
    for &w in weights {
        assert!(w >= 0.0 && !w.is_nan(), "negative or NaN weight: {w}");
        total += w;
    }
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1 // floating-point slack lands on the last bucket
}

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns negative infinity on an empty slice (the sum of zero terms).
/// The canonical implementation lives in [`crate::kernels`] (this alias
/// keeps the long-standing `dist::log_sum_exp` path working and routes
/// it through the feature-switched `exp`/`ln` backend).
#[inline]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    crate::kernels::log_sum_exp(xs)
}

/// Convert a log-probability vector into a normalized probability vector
/// in place, stably (see [`crate::kernels::log_normalize`]).
#[inline]
pub fn log_normalize(xs: &mut [f64]) {
    crate::kernels::log_normalize(xs)
}

/// Normalize a non-negative weight vector in place to sum to one; spreads
/// mass uniformly when the total is zero.
#[inline]
pub fn normalize(xs: &mut [f64]) {
    let total: f64 = xs.iter().sum();
    if total > 0.0 && total.is_finite() {
        xs.iter_mut().for_each(|x| *x /= total);
    } else {
        let uniform = 1.0 / xs.len().max(1) as f64;
        xs.iter_mut().for_each(|x| *x = uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        let n = 200_000;
        for &(shape, scale) in &[(0.5, 1.0), (2.0, 3.0), (9.0, 0.5)] {
            let samples: Vec<f64> = (0..n).map(|_| sample_gamma(&mut r, shape, scale)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let expected = shape * scale;
            assert!(
                (mean - expected).abs() < 0.05 * expected.max(1.0),
                "shape {shape} scale {scale}: mean {mean} vs {expected}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn beta_moments_and_range() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_beta(&mut r, 2.0, 5.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut r = rng();
        let alpha = [1.0, 2.0, 7.0];
        let mut acc = [0.0; 3];
        let n = 50_000;
        for _ in 0..n {
            let d = sample_dirichlet(&mut r, &alpha);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for (a, x) in acc.iter_mut().zip(&d) {
                *a += x;
            }
        }
        let alpha_sum: f64 = alpha.iter().sum();
        for (i, a) in acc.iter().enumerate() {
            let emp = a / n as f64;
            let expected = alpha[i] / alpha_sum;
            assert!(
                (emp - expected).abs() < 0.01,
                "component {i}: {emp} vs {expected}"
            );
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_categorical(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_uniform_fallback_on_zero_weights() {
        let mut r = rng();
        let weights = [0.0, 0.0];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[sample_categorical(&mut r, &weights)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Huge magnitudes must not overflow.
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2.0_f64.ln())).abs() < 1e-10);
        let ys = [700.0, 710.0];
        assert!((log_sum_exp(&ys) - (710.0 + (1.0 + (-10.0_f64).exp()).ln())).abs() < 1e-10);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_normalize_produces_distribution() {
        let mut xs = [-800.0, -801.0, -802.0];
        log_normalize(&mut xs);
        let sum: f64 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(xs[0] > xs[1] && xs[1] > xs[2]);
    }

    #[test]
    fn normalize_handles_zero_total() {
        let mut xs = [0.0, 0.0, 0.0, 0.0];
        normalize(&mut xs);
        assert!(xs.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }
}
