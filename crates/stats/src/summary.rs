//! Descriptive statistics: means, variances, medians, quantiles, and their
//! weighted forms.
//!
//! The numeric-task methods aggregate answers with weighted means (PM with
//! squared loss, CATD, LFC_N) or weighted medians (PM with absolute loss),
//! and the consistency statistic of Section 6.2.1 needs per-task medians.

/// Arithmetic mean; `0.0` on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); `0.0` on slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median; `0.0` on an empty slice. Averages the two central order
/// statistics for even lengths.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear-interpolation quantile (`q ∈ [0, 1]`); `0.0` on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile requires q in [0,1], got {q}"
    );
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Weighted arithmetic mean `Σ w_i x_i / Σ w_i`.
///
/// Returns the unweighted mean when the total weight is zero (all-spammer
/// degenerate case in the aggregators), and `0.0` on empty input.
///
/// # Panics
/// Panics if lengths differ or any weight is negative.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_mean length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &w) in xs.iter().zip(ws) {
        assert!(w >= 0.0, "negative weight {w}");
        num += w * x;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        mean(xs)
    }
}

/// Weighted median: the smallest `x` such that the cumulative weight of
/// values `≤ x` reaches half the total weight.
///
/// Falls back to the unweighted median when the total weight is zero.
///
/// # Panics
/// Panics if lengths differ or any weight is negative.
pub fn weighted_median(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_median length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let total: f64 = ws.iter().inspect(|w| assert!(**w >= 0.0)).sum();
    if total <= 0.0 {
        return median(xs);
    }
    let mut pairs: Vec<(f64, f64)> = xs.iter().copied().zip(ws.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in weighted_median input"));
    let half = total / 2.0;
    let mut acc = 0.0;
    for &(x, w) in &pairs {
        acc += w;
        if acc >= half {
            return x;
        }
    }
    pairs.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stddev(&xs) - 1.25_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        let xs = [1.0, 10.0];
        assert!((weighted_mean(&xs, &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((weighted_mean(&xs, &[1.0, 1.0]) - 5.5).abs() < 1e-12);
        // zero total weight falls back to plain mean
        assert!((weighted_mean(&xs, &[0.0, 0.0]) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_median_pulls_toward_heavy_values() {
        let xs = [1.0, 2.0, 100.0];
        let ws = [1.0, 1.0, 10.0];
        assert_eq!(weighted_median(&xs, &ws), 100.0);
        let ws_eq = [1.0, 1.0, 1.0];
        assert_eq!(weighted_median(&xs, &ws_eq), 2.0);
    }

    #[test]
    fn weighted_median_single_dominant() {
        assert_eq!(weighted_median(&[5.0], &[2.0]), 5.0);
        // all-zero weights: unweighted median
        assert_eq!(weighted_median(&[1.0, 3.0, 2.0], &[0.0, 0.0, 0.0]), 2.0);
    }
}
