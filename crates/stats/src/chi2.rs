//! Chi-squared distribution: CDF and inverse CDF.
//!
//! CATD (Li et al., PVLDB 2014) scales every worker's quality by the
//! chi-squared quantile `X^2(0.975, |T^w|)` where `|T^w|` is the number of
//! tasks the worker answered (Section 4.2.4 of the benchmark paper). The
//! paper's Python code reaches for `scipy.stats.chi2.ppf`; this module is
//! the equivalent substrate.

use crate::special::{inc_gamma_p, ln_gamma};

/// CDF of the chi-squared distribution with `k` degrees of freedom.
///
/// `F(x; k) = P(k/2, x/2)` where `P` is the regularized lower incomplete
/// gamma function. `k` may be fractional (it never is in CATD, but the
/// Newton solver below relies on smoothness).
pub fn chi2_cdf(k: f64, x: f64) -> f64 {
    debug_assert!(k > 0.0, "chi2_cdf requires k > 0");
    if x <= 0.0 {
        return 0.0;
    }
    inc_gamma_p(k / 2.0, x / 2.0)
}

/// Log density of the chi-squared distribution, used as the derivative in
/// the Newton refinement of [`chi2_inv_cdf`].
fn chi2_ln_pdf(k: f64, x: f64) -> f64 {
    let half_k = k / 2.0;
    -half_k * 2.0_f64.ln() - ln_gamma(half_k) + (half_k - 1.0) * x.ln() - x / 2.0
}

/// Inverse CDF (quantile function) of the chi-squared distribution with `k`
/// degrees of freedom at probability `p ∈ (0, 1)`.
///
/// Strategy: the Wilson–Hilferty cube approximation provides the starting
/// point, then (damped) Newton iterations on `F(x) − p` polish to ~1e-10
/// relative accuracy. Newton steps use the analytic density; bisection
/// fallback guards the rare cases where Newton escapes `(0, ∞)`.
pub fn chi2_inv_cdf(k: f64, p: f64) -> f64 {
    assert!(k > 0.0, "chi2_inv_cdf requires k > 0, got {k}");
    assert!(
        (0.0..1.0).contains(&p) && p > 0.0,
        "chi2_inv_cdf requires p in (0,1), got {p}"
    );

    // Wilson–Hilferty: X ≈ k (1 − 2/(9k) + z sqrt(2/(9k)))^3.
    let z = std_normal_inv_cdf(p);
    let a = 2.0 / (9.0 * k);
    let mut x = k * (1.0 - a + z * a.sqrt()).powi(3);
    if x <= 0.0 || !x.is_finite() {
        x = k.max(1e-8); // fall back to the mean
    }

    // Bracket for the bisection safety net.
    let (mut lo, mut hi) = (0.0_f64, f64::INFINITY);
    for _ in 0..100 {
        let f = chi2_cdf(k, x) - p;
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        if f.abs() < 1e-13 {
            break;
        }
        let pdf = chi2_ln_pdf(k, x).exp();
        let mut next = if pdf > 1e-300 { x - f / pdf } else { x };
        // Keep the iterate inside the bracket; halve toward the midpoint
        // when Newton overshoots.
        if !(next > lo && (hi.is_infinite() || next < hi)) || !next.is_finite() {
            next = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                lo * 2.0 + 1.0
            };
        }
        if (next - x).abs() <= 1e-14 * x.abs() {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// The 97.5% chi-squared quantile used by CATD, i.e. `X^2(0.975, k)`.
///
/// `k` is the number of tasks the worker answered; `k = 0` (a worker with
/// no answers) is mapped to 0 so such workers get zero weight.
pub fn chi2_quantile_975(k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        chi2_inv_cdf(k as f64, 0.975)
    }
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9), used to seed Wilson–Hilferty.
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_inv_cdf domain (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn cdf_known_values() {
        // χ²(k=1): F(1) = erf(1/√2) ≈ 0.682689
        close(chi2_cdf(1.0, 1.0), 0.682_689_492_137_086, 1e-10);
        // χ²(k=2) is Exp(1/2): F(x) = 1 − e^{−x/2}
        close(chi2_cdf(2.0, 3.0), 1.0 - (-1.5_f64).exp(), 1e-12);
        close(chi2_cdf(10.0, 10.0), 0.559_506_714_934_787_5, 1e-9);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for &k in &[1.0, 2.0, 3.0, 7.0, 20.0, 150.0, 2000.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.975, 0.999] {
                let x = chi2_inv_cdf(k, p);
                close(chi2_cdf(k, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn quantile_975_matches_tables() {
        // Standard table values for X^2(0.975, k).
        close(chi2_quantile_975(1), 5.023_886, 1e-4);
        close(chi2_quantile_975(2), 7.377_759, 1e-4);
        close(chi2_quantile_975(5), 12.832_50, 1e-3);
        close(chi2_quantile_975(10), 20.483_18, 1e-3);
        close(chi2_quantile_975(100), 129.561, 1e-2);
    }

    #[test]
    fn quantile_975_is_monotone_in_k() {
        // The paper's argument: a worker who answered more tasks gets a
        // larger scaling coefficient. Guard that property directly.
        let mut prev = 0.0;
        for k in 1..200 {
            let q = chi2_quantile_975(k);
            assert!(q > prev, "not monotone at k={k}: {q} <= {prev}");
            prev = q;
        }
    }

    #[test]
    fn zero_answer_worker_gets_zero_weight() {
        assert_eq!(chi2_quantile_975(0), 0.0);
    }

    #[test]
    fn normal_inverse_known_values() {
        close(std_normal_inv_cdf(0.5), 0.0, 1e-9);
        close(std_normal_inv_cdf(0.975), 1.959_963_984_540_054, 1e-7);
        close(std_normal_inv_cdf(0.025), -1.959_963_984_540_054, 1e-7);
        close(std_normal_inv_cdf(0.841_344_746_068_543), 1.0, 1e-7);
    }
}
