//! Batched transcendental kernels for the EM hot loops.
//!
//! Every iterative method in the benchmark spends its inner time on
//! `exp`/`ln` over per-task posterior rows (the E-step) and per-edge
//! likelihood terms. This module is the one place that work happens:
//! branch-free 4-lane array kernels over contiguous slices (the rows of
//! a [`DMat`]), written so the element loops have constant trip counts
//! and no data-dependent branches — the shape LLVM autovectorises.
//!
//! Three backends — one compile-time fork, one runtime fork:
//!
//! - **default (`std`)**: every lane calls the platform
//!   `f64::exp`/`f64::ln`. Results are **bit-identical** to the scalar
//!   code the methods used before (the kernels only batch, never
//!   reassociate: elementwise ops are applied element by element, and
//!   the [`log_sum_exp`] reduction keeps the exact left-to-right
//!   summation order). The equivalence fixtures
//!   (`crowd-core/tests/fixtures/equivalence.tsv`) pin this.
//! - **`fast-math` feature, scalar leg (`fast-math-scalar`)**: a
//!   self-contained polynomial implementation of `exp`/`ln`
//!   (fdlibm-style Cody–Waite range reduction, see [`fast`]) with a
//!   documented error bound of **≤ 4 ULP** against the
//!   correctly-rounded result (the observed bound in the property tests
//!   is ≤ 2 ULP; 4 is the pinned contract). Under this feature the
//!   fixtures are compared with per-method tolerances instead of bit
//!   equality.
//! - **`fast-math` feature, vector leg (`fast-math-avx2`)**: the same
//!   polynomial evaluated four lanes at a time with explicit AVX2
//!   intrinsics (see [`simd`]), selected by one-time runtime feature
//!   detection (`avx2 && fma`, vetoed by `CROWD_FORCE_SCALAR` in the
//!   environment). The vector cores are **bit-identical to the scalar
//!   polynomial**, so which leg ran is unobservable in the output and
//!   the `fast-math` fixture tolerances hold on every CPU.
//!
//! [`backend_name`]/[`lanes_active`] report which leg the dispatchers
//! take, for bench artifacts and tests.
//!
//! Tail handling: slices are processed in chunks of [`LANES`] with a
//! scalar remainder loop; lengths 0..=3 take only the remainder path.
//! Empty slices are no-ops ([`log_sum_exp`] of an empty slice is
//! `-inf`, the sum of zero terms, as before).
//!
//! The [`fused`] submodule builds single-pass row kernels (gather +
//! accumulate + log-sum-exp + normalize, `ln`/`sigmoid`-of-computed
//! pipelines) on top of the same dispatchers, so E-step data is touched
//! once per iteration instead of once per op.

use crate::dmat::DMat;

/// The clamp used by the log-domain tables everywhere in the codebase:
/// probabilities are floored at `1e-12` before taking the log, keeping
/// degenerate zero-probability cells at a large-but-finite `≈ -27.6`
/// instead of `-inf` (which would poison posterior sums).
pub const SAFE_LN_EPS: f64 = 1e-12;

/// Lane width of the batched kernels. Four `f64`s fill one AVX2
/// register (and two NEON/SSE2 registers); the chunked loops below have
/// this constant trip count so the compiler unrolls or vectorises them.
pub const LANES: usize = 4;

#[cfg(target_arch = "x86_64")]
pub mod simd;

/// Stub for non-x86_64 targets: the vector leg never exists and the
/// dispatchers always take the scalar path.
#[cfg(not(target_arch = "x86_64"))]
pub mod simd {
    //! Non-x86_64 stub of the AVX2 backend (always inactive).

    /// Always `false` off x86_64.
    pub fn avx2_available() -> bool {
        false
    }

    /// Always `false` off x86_64.
    pub fn avx2_active() -> bool {
        false
    }

    /// No-op off x86_64.
    #[doc(hidden)]
    pub fn force_scalar(_on: bool) {}
}

pub mod fused;

pub use simd::force_scalar;

/// Name of the leg the slice dispatchers take right now: `"std"`
/// (default build), `"fast-math-scalar"` (polynomial, no vector unit),
/// or `"fast-math-avx2"` (polynomial, AVX2 lanes). Recorded per row in
/// the kernels bench artifact.
pub fn backend_name() -> &'static str {
    #[cfg(not(feature = "fast-math"))]
    {
        "std"
    }
    #[cfg(feature = "fast-math")]
    {
        if simd::avx2_active() {
            "fast-math-avx2"
        } else {
            "fast-math-scalar"
        }
    }
}

/// Vector width of the active leg: 4 under `fast-math-avx2`, 1 for
/// both scalar legs (the 4-lane chunking of the scalar loops is a code
/// shape, not a hardware width).
pub fn lanes_active() -> usize {
    if cfg!(feature = "fast-math") && simd::avx2_active() {
        LANES
    } else {
        1
    }
}

/// Scalar `exp` routed through the active backend (`std` by default,
/// the polynomial core under `fast-math`). Use this instead of
/// `f64::exp` in inference code so a feature flip retargets every call
/// site at once.
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    #[cfg(not(feature = "fast-math"))]
    {
        x.exp()
    }
    #[cfg(feature = "fast-math")]
    {
        fast::exp(x)
    }
}

/// Scalar `ln` routed through the active backend (see [`exp`]).
#[inline(always)]
pub fn ln(x: f64) -> f64 {
    #[cfg(not(feature = "fast-math"))]
    {
        x.ln()
    }
    #[cfg(feature = "fast-math")]
    {
        fast::ln(x)
    }
}

/// The `x.max(1e-12).ln()` clamp idiom, centralised. Identical to the
/// open-coded form in default mode; `fast-math` swaps the `ln`.
#[inline(always)]
pub fn safe_ln(x: f64) -> f64 {
    ln(x.max(SAFE_LN_EPS))
}

/// [`safe_ln`] with a caller-chosen floor (VI-MF's qualification
/// initialisation clamps at `1e-9` rather than the common `1e-12`).
#[inline(always)]
pub fn safe_ln_eps(x: f64, eps: f64) -> f64 {
    ln(x.max(eps))
}

/// Apply `f` to every element, 4 lanes at a time. The chunk is
/// reborrowed as `&mut [f64; LANES]` so the inner loop has a constant
/// trip count (the autovectorisation-friendly shape); the remainder
/// loop handles lengths `1..=LANES-1` and slice tails.
#[inline(always)]
fn map_lanes(xs: &mut [f64], f: impl Fn(f64) -> f64) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let lanes: &mut [f64; LANES] = chunk.try_into().expect("exact chunk");
        for lane in lanes.iter_mut() {
            *lane = f(*lane);
        }
    }
    for x in chunks.into_remainder() {
        *x = f(*x);
    }
}

/// `x[i] ← exp(x[i])` in place.
pub fn exp_slice(xs: &mut [f64]) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd::avx2_active() {
        // SAFETY: detection verified avx2+fma.
        unsafe { simd::exp_slice_avx2(xs) };
        return;
    }
    map_lanes(xs, exp);
}

/// `x[i] ← ln(x[i])` in place.
pub fn ln_slice(xs: &mut [f64]) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd::avx2_active() {
        // SAFETY: detection verified avx2+fma.
        unsafe { simd::ln_slice_avx2(xs) };
        return;
    }
    map_lanes(xs, ln);
}

/// `x[i] ← ln(max(x[i], 1e-12))` in place — the row-batched form of
/// [`safe_ln`], used to refresh whole log-domain confusion tables in
/// one sweep.
pub fn safe_ln_slice(xs: &mut [f64]) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd::avx2_active() {
        // SAFETY: detection verified avx2+fma.
        unsafe { simd::safe_ln_slice_avx2(xs, SAFE_LN_EPS) };
        return;
    }
    map_lanes(xs, safe_ln);
}

/// `x[i] ← σ(x[i]) = 1/(1+exp(−x[i]))` in place, in the
/// overflow-stable two-sided form. Bit-identical to the scalar
/// `sigmoid` the logistic methods (GLAD, Multi) used: both sides
/// evaluate `exp(−|x|)` and differ only in the final select, which is
/// branch-free here.
pub fn sigmoid_slice(xs: &mut [f64]) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd::avx2_active() {
        // SAFETY: detection verified avx2+fma.
        unsafe { simd::sigmoid_slice_avx2(xs) };
        return;
    }
    map_lanes(xs, |x| {
        let e = exp(-x.abs());
        if x >= 0.0 {
            1.0 / (1.0 + e)
        } else {
            e / (1.0 + e)
        }
    });
}

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns negative infinity on an empty slice (the sum of zero
/// terms). The summation is deliberately sequential left-to-right — a
/// lane-split reduction would reassociate the sum and change low bits,
/// breaking the default build's bit-exactness contract. The max
/// element contributes `exp(0) = 1.0` exactly, so that libm call is
/// skipped; this changes no bit of the sum.
#[inline]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if xs.len() == LANES && simd::avx2_active() {
        let row: &[f64; LANES] = xs.try_into().expect("length checked");
        // SAFETY: detection verified avx2+fma.
        if let Some(lse) = unsafe { simd::log_sum_exp4(row) } {
            return lse;
        }
    }
    log_sum_exp_scalar(xs)
}

/// The scalar [`log_sum_exp`] body — also the vector paths' fallback.
#[inline]
pub(crate) fn log_sum_exp_scalar(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max; // empty, or all -inf
    }
    let sum: f64 = xs
        .iter()
        .map(|&x| if x == max { 1.0 } else { exp(x - max) })
        .sum();
    max + ln(sum)
}

/// Convert a log-probability vector into a normalized probability
/// vector in place, stably. Degenerate input (all `-inf`, or an empty
/// slice) spreads mass uniformly. The ℓ = 4 posterior shape takes an
/// in-register vector path under `fast-math-avx2` (bit-identical to
/// the scalar leg; see [`simd::log_normalize4`]).
#[inline]
pub fn log_normalize(xs: &mut [f64]) {
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if xs.len() == LANES && simd::avx2_active() {
        let row: &mut [f64; LANES] = xs.try_into().expect("length checked");
        // SAFETY: detection verified avx2+fma.
        if unsafe { simd::log_normalize4(row) } {
            return;
        }
    }
    log_normalize_scalar(xs)
}

/// The scalar [`log_normalize`] body — also the fallback the vector
/// paths demote to, so it must never re-enter the dispatcher.
pub(crate) fn log_normalize_scalar(xs: &mut [f64]) {
    let lse = log_sum_exp_scalar(xs);
    if !lse.is_finite() {
        let uniform = 1.0 / xs.len().max(1) as f64;
        xs.iter_mut().for_each(|x| *x = uniform);
        return;
    }
    map_lanes(xs, |x| exp(x - lse));
}

/// [`log_normalize`] applied to every row of a matrix — the whole-
/// posterior form of the E-step's final step.
///
/// The per-row `log_sum_exp` temporaries are hoisted into stack blocks
/// ([`fused::log_normalize_rows_blocked`]) so the matrix is swept in
/// two linear passes (row statistics, then `exp(x − lse)`) instead of
/// three passes per row — this is where the old per-row form paid ~2×
/// the cost of its parts. ℓ = 4 matrices take the in-register row path
/// instead.
pub fn log_normalize_rows(m: &mut DMat) {
    if m.rows() == 0 || m.cols() == 0 {
        return;
    }
    let cols = m.cols();
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if cols <= LANES && simd::avx2_active() {
        log_normalize_rows_flat(cols, m.data_mut());
        return;
    }
    fused::log_normalize_rows_blocked(cols, m.data_mut());
}

/// [`log_normalize`] applied to each `cols`-wide row of a packed flat
/// buffer — bit-identical to calling it row by row, but narrow rows
/// (`cols ≤ 4`, the posterior shapes) batch four rows per vector
/// iteration under `fast-math-avx2`
/// ([`simd::log_normalize_rows_packed`]): one dispatch for the whole
/// buffer, and the per-row `ln` vectorises **across** rows. This is
/// the kernel for hot loops that softmax many tiny rows (Minimax's
/// dual ascent normalises one ℓ-wide model row per (answer,
/// hypothesis) pair).
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `cols` (`cols == 0`
/// requires an empty buffer).
pub fn log_normalize_rows_flat(cols: usize, data: &mut [f64]) {
    if data.is_empty() {
        return;
    }
    assert!(
        cols != 0 && data.len().is_multiple_of(cols),
        "flat buffer of {} elements is not rows of width {cols}",
        data.len()
    );
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if cols <= LANES && simd::avx2_active() {
        // SAFETY: detection verified avx2+fma; length checked above.
        unsafe {
            match cols {
                1 => simd::log_normalize_rows_packed::<1>(data),
                2 => simd::log_normalize_rows_packed::<2>(data),
                3 => simd::log_normalize_rows_packed::<3>(data),
                _ => simd::log_normalize_rows_packed::<4>(data),
            }
        }
        return;
    }
    for row in data.chunks_exact_mut(cols) {
        log_normalize_scalar(row);
    }
}

/// [`log_sum_exp`] of each `cols`-wide row of a packed flat buffer,
/// written to `out` — bit-identical to the per-row call, batched like
/// [`log_normalize_rows_flat`] under `fast-math-avx2`.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `cols` or `out` is not
/// exactly one element per row.
pub fn log_sum_exp_rows_flat(cols: usize, data: &[f64], out: &mut [f64]) {
    if data.is_empty() && out.is_empty() {
        return;
    }
    assert!(
        cols != 0 && data.len().is_multiple_of(cols) && out.len() == data.len() / cols,
        "flat buffer of {} elements / out of {} is not rows of width {cols}",
        data.len(),
        out.len()
    );
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if cols <= LANES && simd::avx2_active() {
        // SAFETY: detection verified avx2+fma; lengths checked above.
        unsafe {
            match cols {
                1 => simd::log_sum_exp_rows_packed::<1>(data, out),
                2 => simd::log_sum_exp_rows_packed::<2>(data, out),
                3 => simd::log_sum_exp_rows_packed::<3>(data, out),
                _ => simd::log_sum_exp_rows_packed::<4>(data, out),
            }
        }
        return;
    }
    for (row, o) in data.chunks_exact(cols).zip(out.iter_mut()) {
        *o = log_sum_exp_scalar(row);
    }
}

/// `Σ_i w_i · ln(max(x_i, 1e-12))` — the expected-log-likelihood
/// building block (posterior row dotted with a clamped log of a model
/// row). Sequential accumulation; the `ln`s go through the active
/// backend.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn weighted_log_dot(weights: &[f64], xs: &[f64]) -> f64 {
    assert_eq!(
        weights.len(),
        xs.len(),
        "weighted_log_dot operand length mismatch"
    );
    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    if simd::avx2_active() {
        let mut acc = 0.0f64;
        let mut i = 0;
        'vector: {
            while i + LANES <= xs.len() {
                let w: &[f64; LANES] = weights[i..i + LANES].try_into().expect("len");
                let x: &[f64; LANES] = xs[i..i + LANES].try_into().expect("len");
                // SAFETY: detection verified avx2+fma.
                match unsafe { simd::weighted_log_dot4(w, x, SAFE_LN_EPS, acc) } {
                    Some(next) => acc = next,
                    // A lane outside the ln window (+∞ input): redo
                    // the whole thing scalar — rare and bit-identical.
                    None => break 'vector,
                }
                i += LANES;
            }
            for (w, x) in weights[i..].iter().zip(&xs[i..]) {
                acc += w * safe_ln(*x);
            }
            return acc;
        }
    }
    weights.iter().zip(xs).map(|(&w, &x)| w * safe_ln(x)).sum()
}

/// Distance between two `f64`s in representable-value steps, treating
/// NaN == NaN as zero and mismatched special-value classes (one NaN,
/// or one infinite) as `u64::MAX`.
///
/// Test support for the ULP-contract checks (shared by the in-module
/// unit tests and `tests/kernel_properties.rs` so the comparison
/// semantics cannot drift apart); hidden from the documented API.
#[doc(hidden)]
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0;
    }
    if a.is_nan() != b.is_nan() || a.is_infinite() != b.is_infinite() {
        return u64::MAX;
    }
    let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
    // Map the signed-magnitude float order onto the integer line.
    let key = |i: i64| if i < 0 { i64::MIN - i } else { i };
    key(ia).abs_diff(key(ib))
}

/// Polynomial `exp`/`ln` cores (the `fast-math` backend).
///
/// Both follow the classic fdlibm/musl algorithms — Cody–Waite range
/// reduction with a split `ln 2`, then a short minimax polynomial —
/// which bound the error below 1 ULP in their reference form; the
/// pinned contract here is **≤ 4 ULP** against the correctly-rounded
/// result, verified over adversarial inputs by the property tests in
/// `tests/kernel_properties.rs`. Special values (NaN, ±∞, zeros,
/// subnormals, overflow/underflow thresholds) follow IEEE semantics and
/// are handled by an explicit guard before the branch-free core, so the
/// common path stays straight-line arithmetic.
///
/// Compiled in every configuration (the feature only decides whether
/// the `kernels::exp`/`kernels::ln` dispatchers route here), so the
/// property tests can compare both backends from one build.
pub mod fast {
    // All constants are the canonical fdlibm bit patterns, spelled as
    // bits so a mistyped decimal digit cannot silently cost ULPs. They
    // are `pub(crate)` because the AVX2 lanes in [`super::simd`]
    // evaluate the *same* polynomials — one source of truth keeps the
    // two legs bit-identical.
    pub(crate) const LN2_HI: f64 = f64::from_bits(0x3FE62E42FEE00000); // 6.93147180369123816490e-1
    pub(crate) const LN2_LO: f64 = f64::from_bits(0x3DEA39EF35793C76); // 1.90821492927058770002e-10
    pub(crate) const INV_LN2: f64 = f64::from_bits(0x3FF71547652B82FE); // 1.44269504088896338700e0
    pub(crate) const P1: f64 = f64::from_bits(0x3FC555555555553E); // 1.66666666666666019037e-1
    pub(crate) const P2: f64 = f64::from_bits(0xBF66C16C16BEBD93); // -2.77777777770155933842e-3
    pub(crate) const P3: f64 = f64::from_bits(0x3F11566AAF25DE2C); // 6.61375632143793436117e-5
    pub(crate) const P4: f64 = f64::from_bits(0xBEBBBD41C5D26BF1); // -1.65339022054652515390e-6
    pub(crate) const P5: f64 = f64::from_bits(0x3E66376972BEA4D0); // 4.13813679705723846039e-8
    pub(crate) const LG1: f64 = f64::from_bits(0x3FE5555555555593); // 6.666666666666735130e-1
    pub(crate) const LG2: f64 = f64::from_bits(0x3FD999999997FA04); // 3.999999999940941908e-1
    pub(crate) const LG3: f64 = f64::from_bits(0x3FD2492494229359); // 2.857142874366239149e-1
    pub(crate) const LG4: f64 = f64::from_bits(0x3FCC71C51D8E78AF); // 2.222219843214978396e-1
    pub(crate) const LG5: f64 = f64::from_bits(0x3FC7466496CB03DE); // 1.818357216161805012e-1
    pub(crate) const LG6: f64 = f64::from_bits(0x3FC39A09D078C69F); // 1.531383769920937332e-1
    pub(crate) const LG7: f64 = f64::from_bits(0x3FC2F112DF3E5244); // 1.479819860511658591e-1

    /// `exp(x)` via `x = k·ln2 + r`, `|r| ≤ ln2/2`, and the fdlibm
    /// degree-5 rational core `exp(r) = 1 + r·c/(2−c)` with
    /// `c = r − r²·P(r²)`.
    ///
    /// `k` is rounded ties-to-even so this leg agrees bit-for-bit with
    /// the AVX2 lanes (`_mm256_round_pd` rounds halves to even; either
    /// `k` at an exact tie is a valid reduction within the ≤4-ULP
    /// contract, but the legs must pick the same one).
    pub fn exp(x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x > 709.782_712_893_384 {
            return f64::INFINITY; // overflows even after reduction
        }
        if x < -745.133_219_101_941_2 {
            return 0.0; // underflows past the smallest subnormal
        }
        let k = (INV_LN2 * x).round_ties_even();
        let hi = x - k * LN2_HI;
        let lo = k * LN2_LO;
        let r = hi - lo;
        let rr = r * r;
        let c = r - rr * (P1 + rr * (P2 + rr * (P3 + rr * (P4 + rr * P5))));
        let y = 1.0 + (r * c / (2.0 - c) - lo + hi);
        scale_by_pow2(y, k as i32)
    }

    /// `y · 2^k` without going through `powi`, handling the subnormal
    /// underflow range by splitting the scale.
    fn scale_by_pow2(y: f64, k: i32) -> f64 {
        if (-1021..=1023).contains(&k) {
            return y * f64::from_bits(((k + 1023) as u64) << 52);
        }
        if k > 1023 {
            // y·2^k with k > 1023 only arises just below the overflow
            // guard; two normal-range scales cover it.
            return y
                * f64::from_bits((2046u64) << 52)
                * f64::from_bits(((k - 1023 + 1023) as u64) << 52);
        }
        // Deep underflow: scale into the subnormal range in two steps
        // so the intermediate stays normal.
        let first = y * f64::from_bits(2u64 << 52); // 2^-1021
        first * f64::from_bits(((k + 1021 + 1023).max(0) as u64) << 52)
    }

    /// `ln(x)` via the fdlibm reduction `x = 2^k · (1+f)`,
    /// `1+f ∈ [√2/2, √2)`, and the degree-14 minimax polynomial in
    /// `s = f/(2+f)`.
    pub fn ln(x: f64) -> f64 {
        if x.is_nan() || x < 0.0 {
            return f64::NAN;
        }
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        if x.is_infinite() {
            return f64::INFINITY;
        }
        // Normalise subnormals so the exponent extraction below is exact.
        let (x, sub_adjust) = if x < f64::MIN_POSITIVE {
            (x * f64::from_bits((54 + 1023) << 52), -54.0)
        } else {
            (x, 0.0)
        };
        let bits = x.to_bits();
        let mut k = ((bits >> 52) as i32) - 1023;
        let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        // Keep the significand in [√2/2, √2) so |f| stays small.
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5;
            k += 1;
        }
        let f = m - 1.0;
        let hfsq = 0.5 * f * f;
        let s = f / (2.0 + f);
        let z = s * s;
        let w = z * z;
        let t1 = w * (LG2 + w * (LG4 + w * LG6));
        let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
        let r = t2 + t1;
        let dk = k as f64 + sub_adjust;
        dk * LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN2_LO)) - f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The slice-vs-scalar and sigmoid-vs-reference comparisons live in
    // `tests/kernel_properties.rs`, which covers them over adversarial
    // inputs in both backends; the unit tests here pin the pieces the
    // property file does not reach (the clamp idiom, row semantics, and
    // the fast cores directly).

    #[test]
    fn safe_ln_matches_the_clamp_idiom() {
        for &x in &[0.0, 1e-300, 1e-12, 0.5, 1.0, 3.7] {
            assert_eq!(safe_ln(x).to_bits(), ln(x.max(1e-12)).to_bits());
        }
        assert_eq!(safe_ln(0.0), 1e-12f64.ln());
        assert_eq!(safe_ln_eps(0.0, 1e-9), ln(1e-9));
    }

    #[test]
    fn log_sum_exp_keeps_reference_semantics() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2.0f64.ln())).abs() < 1e-10);
        let ys = [700.0, 710.0];
        assert!((log_sum_exp(&ys) - (710.0 + (1.0 + (-10.0f64).exp()).ln())).abs() < 1e-10);
    }

    #[test]
    fn log_normalize_rows_normalizes_every_row() {
        let mut m = DMat::from_rows(&[
            vec![-800.0, -801.0, -802.0],
            vec![0.0, 0.0, 0.0],
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY],
        ]);
        log_normalize_rows(&mut m);
        for i in 0..3 {
            let sum: f64 = m.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
        assert!(m.row(0)[0] > m.row(0)[1]);
        // Degenerate row → uniform.
        assert!(m.row(2).iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-15));
    }

    #[test]
    fn weighted_log_dot_matches_open_coded_form() {
        let w = [0.2, 0.5, 0.3];
        let x = [0.9, 0.0, 1e-14];
        let expect: f64 = w.iter().zip(&x).map(|(&w, &x)| w * safe_ln(x)).sum();
        assert_eq!(weighted_log_dot(&w, &x).to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_log_dot_rejects_ragged_operands() {
        weighted_log_dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn fast_exp_edge_cases_and_ulp() {
        // The fast core is compiled in tests regardless of the feature.
        assert!(fast::exp(f64::NAN).is_nan());
        assert_eq!(fast::exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast::exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast::exp(0.0), 1.0);
        assert_eq!(fast::exp(710.0), f64::INFINITY);
        assert_eq!(fast::exp(-746.0), 0.0);
        let mut worst = 0u64;
        let mut x = -708.0;
        while x < 708.0 {
            worst = worst.max(ulp_diff(fast::exp(x), x.exp()));
            x += 0.618;
        }
        assert!(worst <= 4, "fast exp worst error {worst} ULP");
    }

    #[test]
    fn fast_ln_edge_cases_and_ulp() {
        assert!(fast::ln(f64::NAN).is_nan());
        assert!(fast::ln(-1.0).is_nan());
        assert_eq!(fast::ln(0.0), f64::NEG_INFINITY);
        assert_eq!(fast::ln(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast::ln(1.0), 0.0);
        let mut worst = 0u64;
        for i in 1..2000 {
            let x = i as f64 * 0.37e-2;
            worst = worst.max(ulp_diff(fast::ln(x), x.ln()));
        }
        // Subnormals go through the rescale path.
        for &x in &[1e-310, 5e-320, f64::MIN_POSITIVE, 1e300, 1e-300] {
            worst = worst.max(ulp_diff(fast::ln(x), x.ln()));
        }
        assert!(worst <= 4, "fast ln worst error {worst} ULP");
    }
}
