//! # crowd-stats — numerical substrate for the truth-inference benchmark
//!
//! Self-contained numerical routines used by the inference methods and the
//! experiment harness: special functions (log-gamma, digamma, incomplete
//! gamma/beta), the chi-squared distribution (CDF and inverse CDF, required
//! by CATD's `X^2(0.975, |T^w|)` confidence coefficient), random samplers
//! (Gaussian, Gamma, Beta, Dirichlet, categorical) built on top of [`rand`],
//! fixed-bin histograms (Figures 2–3 of the paper), descriptive summaries
//! (weighted mean/median, quantiles), a row-major dense matrix ([`DMat`])
//! backing the flat-memory inference substrate, and a convergence tracker
//! shared by every iterative method (Algorithm 1 of the paper).
//!
//! Nothing here is crowd-specific; this is the substrate the paper's Python
//! implementations obtained from NumPy/SciPy, reimplemented in Rust.

#![warn(missing_docs)]

pub mod buckets;
pub mod chi2;
pub mod convergence;
pub mod dist;
pub mod dmat;
pub mod histogram;
pub mod kernels;
pub mod special;
pub mod summary;

pub use buckets::{LinearBuckets, LogLinearBuckets};
pub use chi2::{chi2_cdf, chi2_inv_cdf, chi2_quantile_975};
pub use convergence::ConvergenceTracker;
pub use dist::{
    log_normalize, log_sum_exp, normalize, sample_beta, sample_categorical, sample_dirichlet,
    sample_gamma, sample_gaussian,
};
pub use dmat::DMat;
pub use histogram::Histogram;
pub use kernels::fused::{
    exp_map_into, fused_posterior_row, fused_two_term_row, ln_map_into, safe_ln_map_into,
    sigmoid_map_into,
};
pub use kernels::{
    backend_name, exp_slice, lanes_active, ln_slice, log_normalize_rows, safe_ln, safe_ln_eps,
    safe_ln_slice, sigmoid_slice, weighted_log_dot,
};
pub use special::{
    digamma, erf, erfc, inc_beta, inc_gamma_p, inc_gamma_q, ln_beta, ln_gamma, trigamma,
};
pub use summary::{mean, median, quantile, stddev, variance, weighted_mean, weighted_median};
