//! Convergence detection for the iterative two-step framework.
//!
//! Algorithm 1 of the paper loops "infer truth / estimate quality" until
//! "the change of the two sets of parameters is below some defined
//! threshold (e.g. 1e-3)". Every iterative method shares this tracker so
//! they all stop under the same criterion, which is what makes the timing
//! comparisons in Table 6 apples-to-apples.

/// Tracks successive parameter vectors and reports convergence when the
/// mean absolute change drops below a threshold, or when the iteration
/// budget is exhausted.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    threshold: f64,
    max_iterations: usize,
    iterations: usize,
    previous: Option<Vec<f64>>,
    last_delta: f64,
    converged: bool,
}

impl ConvergenceTracker {
    /// Create a tracker with the paper's defaults: threshold `1e-3` and at
    /// most 100 iterations.
    pub fn with_defaults() -> Self {
        Self::new(1e-3, 100)
    }

    /// Create a tracker with an explicit threshold and iteration cap.
    ///
    /// # Panics
    /// Panics if `threshold` is not positive or `max_iterations` is zero.
    pub fn new(threshold: f64, max_iterations: usize) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(max_iterations > 0, "max_iterations must be positive");
        Self {
            threshold,
            max_iterations,
            iterations: 0,
            previous: None,
            last_delta: f64::INFINITY,
            converged: false,
        }
    }

    /// Record the parameter vector produced by one iteration. Returns
    /// `true` if the loop should *stop* (converged or budget exhausted).
    ///
    /// The first call never stops the loop (there is nothing to compare
    /// against) unless `max_iterations == 1`.
    pub fn step(&mut self, params: &[f64]) -> bool {
        self.iterations += 1;
        match &mut self.previous {
            Some(prev) => {
                let n = params.len().max(1) as f64;
                // Parameter vectors can legitimately change length between
                // iterations (e.g. a method growing its state); compare the
                // overlapping prefix and count the rest as full change.
                let overlap = prev.len().min(params.len());
                let mut delta: f64 = prev[..overlap]
                    .iter()
                    .zip(&params[..overlap])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                delta += (prev.len().max(params.len()) - overlap) as f64;
                self.last_delta = delta / n;
                if self.last_delta < self.threshold {
                    self.converged = true;
                }
                // Reuse the retained buffer: zero heap traffic per step
                // once the parameter length is stable (the hot-loop
                // methods call this every outer iteration).
                prev.clear();
                prev.extend_from_slice(params);
            }
            None => self.previous = Some(params.to_vec()),
        }
        self.converged || self.iterations >= self.max_iterations
    }

    /// Whether the threshold criterion was met (as opposed to hitting the
    /// iteration cap).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Iterations recorded so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Mean absolute parameter change at the last step.
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_never_converges() {
        let mut t = ConvergenceTracker::new(1e-3, 10);
        assert!(!t.step(&[1.0, 2.0]));
        assert!(!t.converged());
    }

    #[test]
    fn detects_convergence_on_stable_params() {
        let mut t = ConvergenceTracker::new(1e-3, 10);
        assert!(!t.step(&[1.0, 2.0]));
        assert!(t.step(&[1.0, 2.0]));
        assert!(t.converged());
        assert_eq!(t.iterations(), 2);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut t = ConvergenceTracker::new(1e-9, 3);
        assert!(!t.step(&[0.0]));
        assert!(!t.step(&[1.0]));
        assert!(t.step(&[2.0])); // cap reached
        assert!(!t.converged());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn delta_is_mean_absolute_change() {
        let mut t = ConvergenceTracker::new(1e-12, 10);
        t.step(&[0.0, 0.0]);
        t.step(&[1.0, 3.0]);
        assert!((t.last_delta() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn length_change_counts_as_change() {
        let mut t = ConvergenceTracker::new(1e-3, 10);
        t.step(&[1.0]);
        assert!(!t.step(&[1.0, 1.0])); // grew: not converged
        assert!(!t.converged());
    }

    #[test]
    fn converges_below_threshold_only() {
        let mut t = ConvergenceTracker::new(0.1, 100);
        t.step(&[0.0]);
        assert!(!t.step(&[0.2])); // delta 0.2 >= 0.1
        assert!(t.step(&[0.25])); // delta 0.05 < 0.1
        assert!(t.converged());
    }
}
