//! The `CROWD_FORCE_SCALAR` environment knob, proven end to end in its
//! own process (integration test files run as separate binaries, so
//! nothing else can touch the kernels' one-time feature detection
//! first). A single `#[test]` keeps the set-env → first-dispatch order
//! deterministic.
//!
//! The knob is captured once, at detection time: setting it before the
//! first kernel call must (a) keep the dispatcher off the vector leg
//! for the life of the process — even `force_scalar(false)`, the
//! runtime override the bench uses, cannot re-arm a vetoed unit — and
//! (b) leave every dispatcher output bit-identical to an explicit
//! per-element evaluation of the scalar leg, in whichever backend the
//! crate was built with.

use crowd_stats::kernels;

#[test]
fn env_veto_forces_the_scalar_leg_for_the_whole_process() {
    // Before any kernel call: the OnceLock detection below is the first
    // reader.
    std::env::set_var("CROWD_FORCE_SCALAR", "1");

    // The vector leg must never report active, and a runtime un-force
    // must not resurrect it: the env veto is folded into the cached
    // availability, not the runtime flag.
    kernels::force_scalar(false);
    assert_ne!(kernels::backend_name(), "fast-math-avx2");
    assert_eq!(kernels::lanes_active(), 1);
    #[cfg(feature = "fast-math")]
    assert_eq!(kernels::backend_name(), "fast-math-scalar");
    #[cfg(not(feature = "fast-math"))]
    assert_eq!(kernels::backend_name(), "std");

    // Dispatcher output == the scalar leg, bit for bit, over a slice
    // long enough to cover the (never-taken) vector body plus tails,
    // mixing ordinary magnitudes with the special-value classes.
    let mut xs: Vec<f64> = (-30..30).map(|i| i as f64 * 0.773).collect();
    xs.extend_from_slice(&[
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        1e-320,
        709.5,
        -745.0,
    ]);

    let mut got = xs.clone();
    kernels::exp_slice(&mut got);
    for (&x, &g) in xs.iter().zip(&got) {
        assert_eq!(
            g.to_bits(),
            kernels::exp(x).to_bits(),
            "exp_slice({x:e}) = {g:e} != scalar leg"
        );
    }

    let mut got = xs.clone();
    kernels::ln_slice(&mut got);
    for (&x, &g) in xs.iter().zip(&got) {
        assert_eq!(
            g.to_bits(),
            kernels::ln(x).to_bits(),
            "ln_slice({x:e}) = {g:e} != scalar leg"
        );
    }

    let mut got = xs.clone();
    kernels::safe_ln_slice(&mut got);
    for (&x, &g) in xs.iter().zip(&got) {
        assert_eq!(
            g.to_bits(),
            kernels::safe_ln(x).to_bits(),
            "safe_ln_slice({x:e}) = {g:e} != scalar leg"
        );
    }

    let mut got = xs.clone();
    kernels::sigmoid_slice(&mut got);
    for (&x, &g) in xs.iter().zip(&got) {
        let e = kernels::exp(-x.abs());
        let want = if x >= 0.0 {
            1.0 / (1.0 + e)
        } else {
            e / (1.0 + e)
        };
        assert_eq!(
            g.to_bits(),
            want.to_bits(),
            "sigmoid_slice({x:e}) = {g:e} != scalar leg"
        );
    }
}
