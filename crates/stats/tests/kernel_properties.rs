//! Property tests for the batched transcendental kernels: batched
//! results must match the scalar-std reference elementwise over
//! adversarial inputs — subnormals, ±∞, NaN, ±700-magnitude arguments
//! (the exp overflow/underflow region), empty slices, and 1..=7-length
//! tails that never reach the 4-lane body.
//!
//! The comparison contract depends on the backend the crate was built
//! with:
//!
//! - **default**: bit-identical (0 ULP) — the kernels batch the exact
//!   std calls, so any difference is a kernel bug;
//! - **`fast-math`**: ≤ [`ULP_BOUND`] = 4 ULP against std for finite
//!   results, with exact agreement on the special-value classes
//!   (NaN/±∞/zero). This is the pinned error contract documented on
//!   `crowd_stats::kernels`.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use crowd_stats::kernels::{self, ulp_diff};
use crowd_stats::DMat;

/// Pinned per-element error bound against the scalar std reference.
const ULP_BOUND: u64 = if cfg!(feature = "fast-math") { 4 } else { 0 };

fn assert_close(got: f64, want: f64, ctx: &str) -> Result<(), TestCaseError> {
    let d = ulp_diff(got, want);
    // Written as a strict-inequality-of-successor so the default build's
    // `ULP_BOUND = 0` does not trip `absurd_extreme_comparisons`.
    prop_assert!(
        d < ULP_BOUND + 1,
        "{ctx}: batched {got:e} vs scalar-std {want:e} differ by {d} ULP (bound {ULP_BOUND})"
    );
    Ok(())
}

/// Adversarial f64s: ordinary log-domain magnitudes, the ±700 region
/// where `exp` saturates, subnormals, exact zeros, infinities, and NaN.
fn adversarial() -> impl Strategy<Value = f64> {
    (0u8..10, -1.0f64..1.0).prop_map(|(class, u)| match class {
        0 => u * 30.0,   // log-posterior range
        1 => u * 750.0,  // exp overflow/underflow region
        2 => u * 1e-3,   // near zero
        3 => u * 5e-308, // subnormal / smallest-normal
        4 => u * 1e300,  // huge magnitudes
        5 => 0.0,
        6 => f64::INFINITY,
        7 => f64::NEG_INFINITY,
        8 => f64::NAN,
        _ => u, // [-1, 1]
    })
}

/// Slices from empty through sub-lane tails (1..=7) up to several
/// 4-lane chunks plus remainder.
fn adversarial_slice() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(adversarial(), 0..23)
}

fn scalar_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Scalar-std reference for `log_sum_exp` — the exact pre-kernel
/// implementation (sequential sum, max-trick).
fn reference_log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs
        .iter()
        .map(|&x| if x == max { 1.0 } else { (x - max).exp() })
        .sum();
    max + sum.ln()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn exp_slice_matches_scalar_std(xs in adversarial_slice()) {
        let mut got = xs.clone();
        kernels::exp_slice(&mut got);
        for (i, (&x, &g)) in xs.iter().zip(&got).enumerate() {
            assert_close(g, x.exp(), &format!("exp_slice[{i}] of {x:e}"))?;
        }
    }

    #[test]
    fn ln_slice_matches_scalar_std(xs in adversarial_slice()) {
        let mut got = xs.clone();
        kernels::ln_slice(&mut got);
        for (i, (&x, &g)) in xs.iter().zip(&got).enumerate() {
            assert_close(g, x.ln(), &format!("ln_slice[{i}] of {x:e}"))?;
        }
    }

    #[test]
    fn safe_ln_slice_matches_clamp_idiom(xs in adversarial_slice()) {
        let mut got = xs.clone();
        kernels::safe_ln_slice(&mut got);
        for (i, (&x, &g)) in xs.iter().zip(&got).enumerate() {
            assert_close(g, x.max(1e-12).ln(), &format!("safe_ln_slice[{i}] of {x:e}"))?;
        }
    }

    #[test]
    fn sigmoid_slice_matches_scalar_reference(xs in adversarial_slice()) {
        let mut got = xs.clone();
        kernels::sigmoid_slice(&mut got);
        for (i, (&x, &g)) in xs.iter().zip(&got).enumerate() {
            assert_close(g, scalar_sigmoid(x), &format!("sigmoid_slice[{i}] of {x:e}"))?;
        }
    }

    #[test]
    fn log_sum_exp_matches_reference(xs in adversarial_slice()) {
        let got = crowd_stats::dist::log_sum_exp(&xs);
        let want = reference_log_sum_exp(&xs);
        assert_close(got, want, &format!("log_sum_exp of {xs:?}"))?;
    }

    /// Finite log-probability rows (the shape every E-step feeds the
    /// kernel): each normalized row is a distribution, and in default
    /// mode each element is bit-identical to the scalar reference.
    #[test]
    fn log_normalize_rows_produces_distributions(
        rows in proptest::collection::vec(
            proptest::collection::vec(-800.0f64..10.0, 3), 1..9)
    ) {
        let mut m = DMat::from_rows(&rows);
        kernels::log_normalize_rows(&mut m);
        for (i, row) in rows.iter().enumerate() {
            // Scalar reference: lse then per-element exp.
            let lse = reference_log_sum_exp(row);
            let sum: f64 = m.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            for (j, (&x, &g)) in row.iter().zip(m.row(i)).enumerate() {
                assert_close(g, (x - lse).exp(), &format!("row {i} col {j}"))?;
            }
        }
    }

    #[test]
    fn weighted_log_dot_matches_open_coded_sum(
        pairs in proptest::collection::vec((0.0f64..1.0, adversarial()), 0..23)
    ) {
        let (w, x): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let got = kernels::weighted_log_dot(&w, &x);
        let want: f64 = w
            .iter()
            .zip(&x)
            .map(|(&w, &x)| w * x.max(1e-12).ln())
            .sum();
        if ULP_BOUND == 0 {
            prop_assert_eq!(got.to_bits(), want.to_bits(), "{} vs {}", got, want);
        } else {
            // Accumulated fast-math error over up to 22 terms; equal
            // special values (±inf from infinite inputs, NaN) pass.
            prop_assert!(
                got == want
                    || (got.is_nan() && want.is_nan())
                    || (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{got} vs {want}"
            );
        }
    }
}

/// SIMD-vs-scalar leg equivalence: the AVX2 slice drivers must be
/// **bit-identical** (0 ULP) to the dispatcher's scalar polynomial leg
/// on every input — dispatch may never change results. The exhaustive
/// test walks every alignment offset of the slice start (the drivers
/// use unaligned loads; a 64-byte window of element offsets covers
/// every 32-byte-alignment phase) crossed with every length through
/// two 16-wide chunks, both 4-wide tail shapes, and the scalar
/// remainder, over inputs that mix in-window values with the screen's
/// demotion triggers (NaN, ±∞, ±700-magnitudes, subnormals, zeros) so
/// whole-chunk scalar demotion is exercised mid-slice. Compiled only
/// into fast-math x86_64 builds and skipped at runtime when the vector
/// leg is unavailable (no AVX2+FMA, or `CROWD_FORCE_SCALAR` vetoed it).
#[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
mod simd_vs_scalar {
    use super::*;
    use crowd_stats::kernels::simd;

    /// The dispatcher's scalar legs, replicated per element (the lane
    /// shape of `map_lanes` is unobservable for elementwise ops).
    fn scalar_leg(op: &str, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = match op {
                "exp" => kernels::exp(*x),
                "ln" => kernels::ln(*x),
                "safe_ln" => kernels::safe_ln(*x),
                "sigmoid" => {
                    let e = kernels::exp(-x.abs());
                    if *x >= 0.0 {
                        1.0 / (1.0 + e)
                    } else {
                        e / (1.0 + e)
                    }
                }
                _ => unreachable!(),
            };
        }
    }

    fn simd_leg(op: &str, xs: &mut [f64]) {
        // SAFETY: callers check `avx2_available()` first.
        unsafe {
            match op {
                "exp" => simd::exp_slice_avx2(xs),
                "ln" => simd::ln_slice_avx2(xs),
                "safe_ln" => simd::safe_ln_slice_avx2(xs, 1e-12),
                "sigmoid" => simd::sigmoid_slice_avx2(xs),
                _ => unreachable!(),
            }
        }
    }

    /// Value pool mixing the vector cores' domain with every demotion
    /// class; period 13 is coprime to the 16/4 chunk widths, so chunks
    /// see every rotation of the pattern as offset and length vary.
    const POOL: [f64; 13] = [
        -0.5,
        27.3,
        -699.9,
        700.0, // outside the exp window, inside ln's
        709.5,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        1e-320, // subnormal
        f64::MIN_POSITIVE,
        1.0,
    ];

    #[test]
    fn every_offset_and_tail_length_is_bit_identical() {
        if !simd::avx2_available() {
            eprintln!("skipping: AVX2 leg unavailable");
            return;
        }
        for op in ["exp", "ln", "safe_ln", "sigmoid"] {
            for offset in 0..8 {
                for len in 0..=40 {
                    let buf: Vec<f64> = (0..offset + len + 8)
                        .map(|i| POOL[i % POOL.len()])
                        .collect();
                    let mut got = buf.clone();
                    let mut want = buf.clone();
                    simd_leg(op, &mut got[offset..offset + len]);
                    scalar_leg(op, &mut want[offset..offset + len]);
                    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "{op} offset {offset} len {len} elem {i}: \
                             simd {g:e} vs scalar {w:e}"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Random adversarial slices long enough to hit the 16-wide
        /// body several times: the two legs agree to the bit.
        #[test]
        fn random_slices_are_bit_identical(xs in proptest::collection::vec(adversarial(), 0..80)) {
            if !simd::avx2_available() {
                return Ok(());
            }
            for op in ["exp", "ln", "safe_ln", "sigmoid"] {
                let mut got = xs.clone();
                let mut want = xs.clone();
                simd_leg(op, &mut got);
                scalar_leg(op, &mut want);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{} elem {} of {:e}: simd {:e} vs scalar {:e}",
                        op, i, xs[i], g, w
                    );
                }
            }
        }
    }
}

#[test]
fn empty_and_degenerate_slices() {
    // Empty slices are no-ops / identities.
    let mut empty: [f64; 0] = [];
    kernels::exp_slice(&mut empty);
    kernels::ln_slice(&mut empty);
    assert_eq!(crowd_stats::dist::log_sum_exp(&[]), f64::NEG_INFINITY);
    assert_eq!(kernels::weighted_log_dot(&[], &[]), 0.0);
    // All -inf (zero probability everywhere) → uniform.
    let mut xs = [f64::NEG_INFINITY; 3];
    crowd_stats::dist::log_normalize(&mut xs);
    assert!(xs.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-15));
}

#[test]
fn saturation_thresholds_match_std() {
    // The exact overflow/underflow saturation classes must agree with
    // std in both backends.
    let mut xs = [709.0, 710.0, 745.0, -745.0, -746.0, -800.0];
    kernels::exp_slice(&mut xs);
    assert!(xs[0].is_finite());
    assert_eq!(xs[1], f64::INFINITY);
    assert_eq!(xs[2], f64::INFINITY);
    assert!(
        xs[3] >= 0.0 && xs[3] < 1e-320,
        "deep underflow: {:e}",
        xs[3]
    );
    assert_eq!(xs[4], 0.0);
    assert_eq!(xs[5], 0.0);
}
