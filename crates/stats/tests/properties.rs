//! Property-based tests of the numerical substrate.

use proptest::prelude::*;

use crowd_stats::{
    chi2_cdf, chi2_inv_cdf, digamma, erf, erfc, inc_beta, inc_gamma_p, inc_gamma_q, ln_beta,
    ln_gamma, log_sum_exp, normalize, quantile, sample_beta, sample_categorical, sample_dirichlet,
    sample_gaussian, trigamma, ConvergenceTracker, Histogram,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Γ(x+1) = x·Γ(x) ⇔ lnΓ(x+1) = ln x + lnΓ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..80.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// ψ(x+1) = ψ(x) + 1/x.
    #[test]
    fn digamma_recurrence(x in 0.05f64..60.0) {
        let lhs = digamma(x + 1.0);
        let rhs = digamma(x) + 1.0 / x;
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    /// ψ₁ is positive and decreasing on the positive reals.
    #[test]
    fn trigamma_positive_decreasing(x in 0.1f64..50.0, dx in 0.01f64..5.0) {
        let a = trigamma(x);
        let b = trigamma(x + dx);
        prop_assert!(a > 0.0 && b > 0.0);
        prop_assert!(a > b, "trigamma must decrease: ψ₁({x})={a} vs ψ₁({})={b}", x + dx);
    }

    /// P(a,x) + Q(a,x) = 1, both in [0,1], P monotone in x.
    #[test]
    fn incomplete_gamma_complement(a in 0.05f64..50.0, x in 0.0f64..100.0, dx in 0.01f64..10.0) {
        let p = inc_gamma_p(a, x);
        let q = inc_gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(inc_gamma_p(a, x + dx) >= p - 1e-12, "P must be nondecreasing in x");
    }

    /// erf² + erfc relationship and oddness.
    #[test]
    fn erf_identities(x in -5.0f64..5.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-10);
        prop_assert!((erf(-x) + erf(x)).abs() < 1e-10, "erf must be odd");
        prop_assert!(erf(x).abs() <= 1.0);
    }

    /// I_x(a,b) ∈ [0,1], monotone in x, symmetric: I_x(a,b) = 1 − I_{1−x}(b,a).
    #[test]
    fn incomplete_beta_properties(
        a in 0.1f64..20.0,
        b in 0.1f64..20.0,
        x in 0.0f64..1.0,
    ) {
        let v = inc_beta(a, b, x);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        let sym = 1.0 - inc_beta(b, a, 1.0 - x);
        prop_assert!((v - sym).abs() < 1e-9, "symmetry: {v} vs {sym}");
    }

    /// ln B(a,b) is symmetric and satisfies B(a,1) = 1/a.
    #[test]
    fn ln_beta_identities(a in 0.1f64..50.0, b in 0.1f64..50.0) {
        prop_assert!((ln_beta(a, b) - ln_beta(b, a)).abs() < 1e-9);
        prop_assert!((ln_beta(a, 1.0) - (1.0 / a).ln()).abs() < 1e-9);
    }

    /// chi2 CDF/quantile are inverse bijections and the CDF is monotone
    /// in both arguments the right way.
    #[test]
    fn chi2_bijection(k in 0.5f64..300.0, p in 0.005f64..0.995) {
        let x = chi2_inv_cdf(k, p);
        prop_assert!((chi2_cdf(k, x) - p).abs() < 1e-7);
        // More degrees of freedom shift mass right: CDF decreases in k.
        prop_assert!(chi2_cdf(k + 1.0, x) <= chi2_cdf(k, x) + 1e-9);
    }

    /// Samplers stay in their supports.
    #[test]
    fn samplers_respect_supports(seed in 0u64..500, a in 0.2f64..8.0, b in 0.2f64..8.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let beta = sample_beta(&mut rng, a, b);
        prop_assert!((0.0..=1.0).contains(&beta));
        let g = sample_gaussian(&mut rng, 0.0, 1.0);
        prop_assert!(g.is_finite());
        let d = sample_dirichlet(&mut rng, &[a, b, 1.0]);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        let c = sample_categorical(&mut rng, &[a, 0.0, b]);
        prop_assert!(c == 0 || c == 2, "zero-weight bucket sampled");
    }

    /// log_sum_exp ≥ max element; exp-normalisation sums to one.
    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-500.0f64..500.0, 1..30)) {
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = log_sum_exp(&xs);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    /// normalize() always emits a probability vector.
    #[test]
    fn normalize_total_is_one(mut xs in proptest::collection::vec(0.0f64..1e6, 1..20)) {
        normalize(&mut xs);
        prop_assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Histogram totals are conserved regardless of value range.
    #[test]
    fn histogram_conserves_mass(values in proptest::collection::vec(-1e4f64..1e4, 0..200)) {
        let mut h = Histogram::new(-100.0, 100.0, 7);
        h.extend(values.iter().copied());
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_are_monotone(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    /// The convergence tracker stops within the iteration budget for any
    /// parameter stream, and immediately on a repeated vector.
    #[test]
    fn tracker_always_terminates(
        streams in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3), 1..40
        ),
        cap in 1usize..20,
    ) {
        let mut t = ConvergenceTracker::new(1e-6, cap);
        let mut stopped_at = None;
        for (i, params) in streams.iter().enumerate() {
            if t.step(params) {
                stopped_at = Some(i + 1);
                break;
            }
        }
        if let Some(n) = stopped_at {
            prop_assert!(n <= cap);
        } else {
            prop_assert!(streams.len() < cap);
        }
    }
}
