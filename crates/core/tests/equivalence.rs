//! Seeded equivalence tests: the flat-memory substrate (CSR views, dense
//! posterior/confusion matrices, in-place hot loops) must produce
//! **bit-identical** truths and worker-quality scalars to the
//! pre-refactor nested-`Vec` implementation.
//!
//! The golden outputs live in `tests/fixtures/equivalence.tsv`, captured
//! from the nested-`Vec` code path before the refactor landed (see
//! `examples/gen_equivalence_fixtures.rs` for the format and the
//! regeneration command). Every method of the benchmark is covered on
//! every fixture dataset it supports, at two seeds.

use std::collections::HashMap;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::Dataset;

/// Must match `examples/gen_equivalence_fixtures.rs`.
fn fixture_datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("toy", crowd_data::toy::paper_example()),
        ("dprod005", PaperDataset::DProduct.generate(0.05, 42)),
        ("srel002", PaperDataset::SRel.generate(0.02, 1234)),
        ("nemo02", PaperDataset::NEmotion.generate(0.2, 1234)),
    ]
}

struct Fixture {
    truths: String,
    scalars: String,
}

fn load_fixtures() -> HashMap<(String, String, u64), Fixture> {
    let raw = include_str!("fixtures/equivalence.tsv");
    let mut out = HashMap::new();
    for line in raw.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let method = parts.next().expect("method column").to_string();
        let dataset = parts.next().expect("dataset column").to_string();
        let seed: u64 = parts
            .next()
            .expect("seed column")
            .parse()
            .expect("seed parses");
        let truths = parts.next().expect("truths column").to_string();
        let scalars = parts.next().expect("scalars column").to_string();
        out.insert((method, dataset, seed), Fixture { truths, scalars });
    }
    out
}

fn encode_truths(dataset: &Dataset, truths: &[crowd_data::Answer]) -> String {
    if dataset.task_type().is_categorical() {
        let labels: Vec<String> = truths
            .iter()
            .map(|a| a.label().expect("categorical").to_string())
            .collect();
        format!("L:{}", labels.join(","))
    } else {
        let bits: Vec<String> = truths
            .iter()
            .map(|a| format!("{:016x}", a.numeric().expect("numeric").to_bits()))
            .collect();
        format!("N:{}", bits.join(","))
    }
}

#[test]
fn all_methods_match_pre_refactor_outputs_bit_for_bit() {
    let fixtures = load_fixtures();
    assert!(
        !fixtures.is_empty(),
        "fixture file is empty — regenerate with gen_equivalence_fixtures"
    );
    let mut checked = 0usize;
    for (key, dataset) in fixture_datasets() {
        for method in Method::ALL {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            for seed in [7u64, 42] {
                let fixture = fixtures
                    .get(&(method.name().to_string(), key.to_string(), seed))
                    .unwrap_or_else(|| {
                        panic!(
                            "missing fixture for {} on {} seed {}",
                            method.name(),
                            key,
                            seed
                        )
                    });
                let r = instance
                    .infer(&dataset, &InferenceOptions::seeded(seed))
                    .expect("method runs");
                let got_truths = encode_truths(&dataset, &r.truths);
                assert_eq!(
                    got_truths,
                    fixture.truths,
                    "truths diverged from pre-refactor output: {} on {} seed {}",
                    method.name(),
                    key,
                    seed
                );
                let got_scalars: Vec<String> = r
                    .worker_quality
                    .iter()
                    .map(|q| match q.scalar() {
                        Some(s) => format!("{:016x}", s.to_bits()),
                        None => "-".to_string(),
                    })
                    .collect();
                assert_eq!(
                    got_scalars.join(","),
                    fixture.scalars,
                    "worker scalars diverged from pre-refactor output: {} on {} seed {}",
                    method.name(),
                    key,
                    seed
                );
                checked += 1;
            }
        }
    }
    // 17 methods × the datasets they support × 2 seeds: 14 decision +
    // 10 single-choice (but toy is decision too) + 5 numeric. Guard
    // against the loop silently skipping everything.
    assert!(
        checked >= 80,
        "only {checked} fixture cells checked — coverage collapsed"
    );
}
