//! Seeded equivalence tests: the flat-memory substrate (CSR views, dense
//! posterior/confusion matrices, in-place hot loops, batched
//! transcendental kernels) must produce **bit-identical** truths and
//! worker-quality scalars to the pre-refactor nested-`Vec`
//! implementation — in the default build.
//!
//! Under the `fast-math` feature the kernels swap libm for the
//! polynomial cores (≤ 4 ULP per call), so trajectories drift by design
//! and bit equality is replaced by **pinned per-method tolerances**
//! (see [`FastMathTolerance`]): a bound on every worker-quality
//! scalar's divergence and on the fraction of flipped labels. Methods
//! whose decisions pass through discrete resamplers (the Gibbs pair
//! BCC/CBCC, or gradient ascent over many capped iterations) amplify
//! per-call ULPs into genuinely different trajectories and carry the
//! loose bounds; closed-form EM methods stay tight.
//!
//! The golden outputs live in `tests/fixtures/equivalence.tsv`, captured
//! from the nested-`Vec` code path before the refactor landed (see
//! `examples/gen_equivalence_fixtures.rs` for the format and the
//! regeneration command). Every method of the benchmark is covered on
//! every fixture dataset it supports, at two seeds.

use std::collections::HashMap;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::Dataset;

/// Must match `examples/gen_equivalence_fixtures.rs`.
fn fixture_datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("toy", crowd_data::toy::paper_example()),
        ("dprod005", PaperDataset::DProduct.generate(0.05, 42)),
        ("srel002", PaperDataset::SRel.generate(0.02, 1234)),
        ("nemo02", PaperDataset::NEmotion.generate(0.2, 1234)),
    ]
}

struct Fixture {
    truths: String,
    scalars: String,
}

fn load_fixtures() -> HashMap<(String, String, u64), Fixture> {
    let raw = include_str!("fixtures/equivalence.tsv");
    let mut out = HashMap::new();
    for line in raw.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let method = parts.next().expect("method column").to_string();
        let dataset = parts.next().expect("dataset column").to_string();
        let seed: u64 = parts
            .next()
            .expect("seed column")
            .parse()
            .expect("seed parses");
        let truths = parts.next().expect("truths column").to_string();
        let scalars = parts.next().expect("scalars column").to_string();
        out.insert((method, dataset, seed), Fixture { truths, scalars });
    }
    out
}

fn encode_truths(dataset: &Dataset, truths: &[crowd_data::Answer]) -> String {
    if dataset.task_type().is_categorical() {
        let labels: Vec<String> = truths
            .iter()
            .map(|a| a.label().expect("categorical").to_string())
            .collect();
        format!("L:{}", labels.join(","))
    } else {
        let bits: Vec<String> = truths
            .iter()
            .map(|a| format!("{:016x}", a.numeric().expect("numeric").to_bits()))
            .collect();
        format!("N:{}", bits.join(","))
    }
}

/// Pinned `fast-math` divergence bounds for one method.
#[cfg(feature = "fast-math")]
struct FastMathTolerance {
    /// Max |Δ| on any worker-quality scalar vs the fixture.
    scalar_abs: f64,
    /// Max fraction of labels (or numeric truths beyond `scalar_abs`)
    /// that may disagree with the fixture.
    label_flip_frac: f64,
}

/// The pinned per-method `fast-math` contract. Bounds were measured
/// over the full fixture grid (both seeds, all supported datasets) and
/// pinned with generous headroom over the observed drift; tightening a
/// bound below the measured drift is a test failure, loosening one
/// requires editing this table (i.e. it is a reviewed decision, not
/// drift). Measured on this grid: every method except GLAD stays
/// within 1e-15 of the std trajectory and flips zero labels; GLAD —
/// gradient ascent run to its 100-iteration cap, with saturating
/// sigmoids against the ±8 clamps — reaches scalar drift 0.46 and a
/// 2.5% label-flip fraction, which is the honest cost of `fast-math`
/// on a capped non-converged trajectory (cf. the iteration-cap note on
/// the `Glad` struct).
#[cfg(feature = "fast-math")]
fn fast_math_tolerance(method: &str) -> FastMathTolerance {
    let (scalar_abs, label_flip_frac) = match method {
        // Vote/median/mean paths take no transcendental at all.
        "MV" | "Mean" | "Median" => (0.0, 0.0),
        // Closed-form EM / squash-only paths over the kernels: per-call
        // ULPs stay ULPs (measured ≤ 4e-16).
        "ZC" | "D&S" | "LFC" | "VI-MF" | "VI-BP" | "LFC_N" | "KOS" => (1e-9, 0.0),
        // Contracting gradient/coordinate descent: measured ≤ 1e-15,
        // but an exact-tie vote cascade (PM/CATD) or a late clamp graze
        // (Minimax/Multi) may legitimately reroute a label under a
        // different ≤4-ULP backend.
        "PM" | "CATD" | "Minimax" | "Multi" => (1e-6, 0.01),
        // Capped non-converged gradient ascent: trajectories genuinely
        // walk apart (measured 0.46 / 2.5% on dprod005).
        "GLAD" => (0.75, 0.06),
        // Gibbs samplers: measured 0 on this grid (the perturbed
        // weights did not flip any categorical draw), but one flipped
        // draw reroutes the whole chain, so the pin bounds
        // accuracy-level agreement rather than trajectory closeness.
        "BCC" | "CBCC" => (0.5, 0.25),
        other => panic!("no fast-math tolerance pinned for method {other}"),
    };
    FastMathTolerance {
        scalar_abs,
        label_flip_frac,
    }
}

/// Compare one method run against its fixture cell. Default build:
/// bit-for-bit string equality. `fast-math`: pinned tolerances.
fn check_cell(
    dataset: &Dataset,
    method: &str,
    key: &str,
    seed: u64,
    fixture: &Fixture,
    r: &crowd_core::InferenceResult,
) {
    let got_truths = encode_truths(dataset, &r.truths);
    let got_scalars: Vec<String> = r
        .worker_quality
        .iter()
        .map(|q| match q.scalar() {
            Some(s) => format!("{:016x}", s.to_bits()),
            None => "-".to_string(),
        })
        .collect();
    #[cfg(not(feature = "fast-math"))]
    {
        assert_eq!(
            got_truths, fixture.truths,
            "truths diverged from pre-refactor output: {method} on {key} seed {seed}"
        );
        assert_eq!(
            got_scalars.join(","),
            fixture.scalars,
            "worker scalars diverged from pre-refactor output: {method} on {key} seed {seed}"
        );
    }
    #[cfg(feature = "fast-math")]
    {
        let tol = fast_math_tolerance(method);
        let decode = |s: &str| -> Vec<Option<f64>> {
            s.split(',')
                .map(|tok| {
                    (tok != "-")
                        .then(|| f64::from_bits(u64::from_str_radix(tok, 16).expect("hex scalar")))
                })
                .collect()
        };
        // Truths: count disagreements (exact for labels, beyond
        // scalar_abs for numeric estimates).
        let (got_kind, got_vals) = got_truths.split_at(2);
        let (want_kind, want_vals) = fixture.truths.split_at(2);
        assert_eq!(got_kind, want_kind, "{method} on {key} seed {seed}");
        let flips = if got_kind == "L:" {
            got_vals
                .split(',')
                .zip(want_vals.split(','))
                .filter(|(a, b)| a != b)
                .count()
        } else {
            got_vals
                .split(',')
                .zip(want_vals.split(','))
                .filter(|(a, b)| {
                    let a = f64::from_bits(u64::from_str_radix(a, 16).expect("hex"));
                    let b = f64::from_bits(u64::from_str_radix(b, 16).expect("hex"));
                    (a - b).abs() > tol.scalar_abs
                })
                .count()
        };
        let n = got_vals.split(',').count().max(1);
        assert!(
            flips as f64 / n as f64 <= tol.label_flip_frac,
            "{method} on {key} seed {seed}: {flips}/{n} truths flipped under fast-math \
             (pinned fraction {})",
            tol.label_flip_frac
        );
        // Worker scalars: absolute bound.
        for (w, (got, want)) in decode(&got_scalars.join(","))
            .into_iter()
            .zip(decode(&fixture.scalars))
            .enumerate()
        {
            match (got, want) {
                (Some(g), Some(e)) => assert!(
                    (g - e).abs() <= tol.scalar_abs,
                    "{method} on {key} seed {seed}: worker {w} scalar {g} vs {e} \
                     (pinned |Δ| {})",
                    tol.scalar_abs
                ),
                (g, e) => assert_eq!(
                    g.is_some(),
                    e.is_some(),
                    "{method} on {key} seed {seed}: worker {w} scalar presence changed"
                ),
            }
        }
    }
}

#[test]
fn all_methods_match_pre_refactor_fixture_contract() {
    // Default build: bit-for-bit. `fast-math`: the pinned per-method
    // tolerances (the name stays honest in both CI legs).
    let fixtures = load_fixtures();
    assert!(
        !fixtures.is_empty(),
        "fixture file is empty — regenerate with gen_equivalence_fixtures"
    );
    let mut checked = 0usize;
    for (key, dataset) in fixture_datasets() {
        for method in Method::ALL {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            for seed in [7u64, 42] {
                let fixture = fixtures
                    .get(&(method.name().to_string(), key.to_string(), seed))
                    .unwrap_or_else(|| {
                        panic!(
                            "missing fixture for {} on {} seed {}",
                            method.name(),
                            key,
                            seed
                        )
                    });
                let r = instance
                    .infer(&dataset, &InferenceOptions::seeded(seed))
                    .expect("method runs");
                check_cell(&dataset, method.name(), key, seed, fixture, &r);
                checked += 1;
            }
        }
    }
    // 17 methods × the datasets they support × 2 seeds: 14 decision +
    // 10 single-choice (but toy is decision too) + 5 numeric. Guard
    // against the loop silently skipping everything.
    assert!(
        checked >= 80,
        "only {checked} fixture cells checked — coverage collapsed"
    );
}
