//! Proof that the EM-family hot loops allocate nothing per outer
//! iteration (acceptance criterion of the flat-memory substrate
//! refactor).
//!
//! Method: install a counting global allocator, run each method twice on
//! the same dataset with different iteration caps (convergence disabled
//! by a near-zero tolerance), and require the allocation counts to be
//! **equal** — everything a run allocates (views, scratch, result
//! assembly) is iteration-count-independent, so any per-iteration heap
//! traffic would show up as `allocs(long) > allocs(short)`.
//!
//! Runs with `harness = false` so the whole process is single-threaded
//! and no test-runner machinery allocates between the two measurements.
//! The instances are kept below the methods' parallel fan-out thresholds,
//! which is exactly the regime the zero-allocation guarantee covers (the
//! gated fan-out path trades allocation-freedom for cores; see
//! ARCHITECTURE.md).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use crowd_core::methods::{Ds, Glad, Lfc, LfcN, Zc};
use crowd_core::{InferenceOptions, TruthInference};
use crowd_data::datasets::PaperDataset;
use crowd_data::Dataset;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation count of one full `infer` run pinned to exactly
/// `iterations` outer iterations (tolerance so small the tracker cannot
/// converge while the parameters still move).
fn allocations_for(method: &dyn TruthInference, dataset: &Dataset, iterations: usize) -> u64 {
    let options = InferenceOptions {
        max_iterations: iterations,
        tolerance: 1e-300,
        ..InferenceOptions::seeded(7)
    };
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = method.infer(dataset, &options).expect("method runs");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        result.iterations,
        iterations,
        "{} stopped early — the measurement would be meaningless",
        method.name()
    );
    after - before
}

fn assert_iteration_alloc_free(method: &dyn TruthInference, dataset: &Dataset) {
    // Warm-up run absorbs any one-time lazy initialisation.
    let _ = allocations_for(method, dataset, 2);
    let short = allocations_for(method, dataset, 3);
    let long = allocations_for(method, dataset, 12);
    assert_eq!(
        short,
        long,
        "{}: {} allocations at 3 iterations vs {} at 12 — the E/M loop allocates per iteration",
        method.name(),
        short,
        long
    );
    println!(
        "  {:<6} {} allocations regardless of iteration count",
        method.name(),
        short
    );
}

fn main() {
    println!("per-iteration allocation audit (counting global allocator):");
    let categorical = PaperDataset::DProduct.generate(0.05, 7);
    assert_iteration_alloc_free(&Ds, &categorical);
    assert_iteration_alloc_free(&Lfc::default(), &categorical);
    assert_iteration_alloc_free(&Zc::default(), &categorical);
    assert_iteration_alloc_free(&Glad::default(), &categorical);

    let numeric = PaperDataset::NEmotion.generate(0.2, 7);
    assert_iteration_alloc_free(&LfcN::default(), &numeric);

    // PM and CATD iterate discrete truth assignments, which reach an
    // exact fixed point (parameter delta identically zero) within a few
    // rounds, so their iteration count cannot be pinned the same way;
    // their loops reuse the same pre-allocated scratch buffers (see
    // methods/pm.rs, methods/catd.rs).
    println!("alloc-free audit passed");
}
