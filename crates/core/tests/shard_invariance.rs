//! Shard-invariance property tests: every migrated method's sharded
//! path must be **bit-identical** to its flat path — posteriors, truths,
//! worker quality, iteration count — at every shard count, including the
//! adversarial directory shapes (more shards than tasks, one task per
//! shard, empty shards from gap-heavy logs).
//!
//! Why bit equality is the right bar (and achievable): E-steps are
//! per-task independent, so fanning them out per shard changes nothing;
//! the M-steps fold each worker's per-shard adjacency rows in ascending
//! shard order over the *canonical* task-ascending worker rows, so the
//! non-associative f64 accumulation visits answers in exactly the flat
//! order whenever the flat worker rows are task-ascending — true for
//! every dataset built task-by-task, which all fixtures here are (and
//! which `ShardedView::from_records` canonicalises to). GLAD never walks
//! a worker row at all, so its guarantee is unconditional.

use crowd_core::methods::{Ds, Glad, Lfc, Mv, Zc};
use crowd_core::views::{Cat, ShardedView};
use crowd_core::{InferenceOptions, InferenceResult, WorkerQuality};
use crowd_data::{Dataset, DatasetBuilder, StreamSim, TaskType};

/// The tested shard counts: the required {1, 2, 7, 16} plus `n` (every
/// shard holds one task) and `n + 5` (tail shards are empty ranges).
fn shard_counts(n: usize) -> Vec<usize> {
    vec![1, 2, 7, 16, n, n + 5]
}

fn fixtures() -> Vec<(&'static str, Dataset)> {
    // A streamed synthetic log (task-major by construction)…
    let streamed = StreamSim::new(11, 60, 12, 3, 4).to_dataset("streamed");
    // …and a hand-built ragged log with answer gaps (tasks 3 and 7
    // empty) so some shards come out empty even at low shard counts.
    let mut b = DatasetBuilder::new("ragged", TaskType::DecisionMaking, 9, 5);
    for (t, w, l) in [
        (0usize, 0usize, 0u8),
        (0, 1, 1),
        (0, 2, 0),
        (1, 3, 1),
        (1, 4, 1),
        (2, 0, 0),
        (4, 1, 0),
        (4, 2, 1),
        (4, 3, 0),
        (5, 4, 0),
        (6, 0, 1),
        (6, 1, 1),
        (8, 2, 0),
        (8, 4, 1),
    ] {
        b.add_label(t, w, l).unwrap();
    }
    let ragged = b.build();
    vec![("streamed", streamed), ("ragged", ragged)]
}

fn posterior_bits(r: &InferenceResult) -> Vec<u64> {
    r.posteriors
        .as_ref()
        .expect("method reports posteriors")
        .iter()
        .flatten()
        .map(|p| p.to_bits())
        .collect()
}

fn quality_bits(r: &InferenceResult) -> Vec<u64> {
    r.worker_quality
        .iter()
        .flat_map(|q| match q {
            WorkerQuality::Probability(p) => vec![p.to_bits()],
            WorkerQuality::Confusion(m) => m
                .iter()
                .flatten()
                .map(|c| c.to_bits())
                .collect::<Vec<u64>>(),
            WorkerQuality::Unmodeled => vec![],
            other => panic!("unexpected quality kind {other:?}"),
        })
        .collect()
}

fn assert_identical(name: &str, shards: usize, flat: &InferenceResult, sharded: &InferenceResult) {
    assert_eq!(
        flat.truths, sharded.truths,
        "{name}: truths diverged at {shards} shards"
    );
    assert_eq!(
        posterior_bits(flat),
        posterior_bits(sharded),
        "{name}: posteriors diverged at {shards} shards"
    );
    assert_eq!(
        quality_bits(flat),
        quality_bits(sharded),
        "{name}: worker quality diverged at {shards} shards"
    );
    assert_eq!(
        (flat.iterations, flat.converged),
        (sharded.iterations, sharded.converged),
        "{name}: trajectory diverged at {shards} shards"
    );
}

fn check_method(
    name: &str,
    flat_run: impl Fn(&Cat, &InferenceOptions) -> InferenceResult,
    sharded_run: impl Fn(&ShardedView, &InferenceOptions) -> InferenceResult,
) {
    for (dataset_name, d) in fixtures() {
        let options = InferenceOptions::seeded(17);
        let cat = Cat::build("shard-test", &d, &options, true).unwrap();
        let flat = flat_run(&cat, &options);
        for shards in shard_counts(cat.n) {
            let view = ShardedView::from_cat(&cat, shards);
            let sharded = sharded_run(&view, &options);
            assert_identical(&format!("{name}/{dataset_name}"), shards, &flat, &sharded);
        }
    }
}

#[test]
fn ds_bit_identical_across_shard_counts() {
    check_method(
        "D&S",
        |cat, o| Ds.infer_view(cat, o).unwrap(),
        |view, o| Ds.infer_sharded(view, o).unwrap(),
    );
}

#[test]
fn lfc_bit_identical_across_shard_counts() {
    check_method(
        "LFC",
        |cat, o| Lfc::default().infer_view(cat, o).unwrap(),
        |view, o| Lfc::default().infer_sharded(view, o).unwrap(),
    );
}

#[test]
fn zc_bit_identical_across_shard_counts() {
    check_method(
        "ZC",
        |cat, o| Zc::default().infer_view(cat, o).unwrap(),
        |view, o| Zc::default().infer_sharded(view, o).unwrap(),
    );
}

#[test]
fn glad_bit_identical_across_shard_counts() {
    check_method(
        "GLAD",
        |cat, o| Glad::default().infer_view(cat, o).unwrap(),
        |view, o| Glad::default().infer_sharded(view, o).unwrap(),
    );
}

#[test]
fn mv_flatten_shim_bit_identical() {
    // Mv has no native sharded path; the compatibility shim routes it
    // through `ShardedView::flatten`. On task-grouped logs the flattened
    // view is entry-identical to the original, so the result matches
    // bit for bit.
    for (dataset_name, d) in fixtures() {
        let options = InferenceOptions::seeded(17);
        let cat = Cat::build("shard-test", &d, &options, true).unwrap();
        let flat = Mv.infer_view(&cat, &options).unwrap();
        for shards in shard_counts(cat.n) {
            let view = ShardedView::from_cat(&cat, shards);
            let back = view.flatten();
            let sharded = Mv.infer_view(&back, &options).unwrap();
            assert_identical(&format!("MV/{dataset_name}"), shards, &flat, &sharded);
        }
    }
}

#[test]
fn warm_started_sharded_runs_stay_bit_identical() {
    // Warm starts (the streaming resume path) must not break the
    // guarantee: resume flat-vs-sharded from the same previous state and
    // compare.
    let d = StreamSim::new(5, 40, 10, 2, 3).to_dataset("warm");
    let cold_options = InferenceOptions::seeded(3);
    let cat = Cat::build("shard-test", &d, &cold_options, true).unwrap();
    let cold = Ds.infer_view(&cat, &cold_options).unwrap();
    let warm_options = InferenceOptions {
        warm_start: Some(crowd_core::WarmStart::from_result(&cold)),
        ..InferenceOptions::seeded(3)
    };
    let flat = Ds.infer_view(&cat, &warm_options).unwrap();
    for shards in [1usize, 2, 7, 16] {
        let view = ShardedView::from_cat(&cat, shards);
        let sharded = Ds.infer_sharded(&view, &warm_options).unwrap();
        assert_identical("D&S-warm", shards, &flat, &sharded);
    }
}

#[test]
fn streamed_construction_matches_sliced_construction_end_to_end() {
    // `from_records` (single-pass streaming build) must be
    // indistinguishable from slicing the equivalent flat view — run the
    // full EM on both and compare.
    let sim = StreamSim::new(29, 50, 9, 3, 3);
    let d = sim.to_dataset("stream-e2e");
    let options = InferenceOptions::seeded(8);
    // The flat view keeps golden empty (use_golden=false ⇒ no clamps) so
    // the streamed build with no golden matches.
    let cat = Cat::build("shard-test", &d, &options, false).unwrap();
    for shards in [3usize, 8] {
        let sliced = ShardedView::from_cat(&cat, shards);
        let streamed = ShardedView::from_records(
            sim.num_tasks(),
            sim.num_workers(),
            sim.num_choices() as usize,
            shards,
            sim.records(),
            vec![None; sim.num_tasks()],
        );
        let a = Ds.infer_sharded(&sliced, &options).unwrap();
        let b = Ds.infer_sharded(&streamed, &options).unwrap();
        assert_identical("D&S-streamed", shards, &a, &b);
    }
}
