//! Measures the fixed cost of one parallel fan-out under (a) a fresh
//! `std::thread::scope` spawn — the pre-pool design — and (b) a
//! persistent-pool batch dispatch, plus the serial E-step throughput the
//! crossover thresholds are derived from.
//!
//! This is the measurement behind the `PARALLEL_MSTEP_MIN_WORK` /
//! `PARALLEL_ESTEP_MIN_WORK` constants in `methods/ds.rs`: a fan-out pays
//! off once the serial sweep it replaces costs a few times the dispatch
//! overhead. Run with:
//!
//! ```sh
//! cargo run --release -p crowd-core --example measure_fanout_overhead
//! ```

use std::hint::black_box;
use std::time::Instant;

use crowd_core::exec::WorkerPool;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // Warm-up.
    for _ in 0..reps.div_ceil(10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let reps = 2000;

    // (a) Fresh scope spawn of two threads per fan-out (pre-pool design).
    let scope_spawn = time(reps, || {
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| black_box(0u64));
            }
        });
    });

    // (b) Persistent pool: one batch dispatch waking two workers.
    let pool = WorkerPool::new(2);
    pool.run_batch(2, &|| {}); // spawn the workers outside the timing
    let pool_dispatch = time(reps, || {
        pool.run_batch(2, &|| {
            black_box(0u64);
        });
    });

    // (c) Serial E-step-shaped throughput: table-addition sweeps (the
    // work unit the thresholds count) per second.
    let l = 4usize;
    let answers = 50_000usize;
    let table = vec![0.5f64; 64 * l * l];
    let mut acc = vec![0.0f64; l];
    let sweep = time(50, || {
        for a in 0..answers {
            let base = (a % 64) * l * l;
            for (j, slot) in acc.iter_mut().enumerate() {
                *slot += table[base + j * l];
            }
        }
        black_box(&mut acc);
    });
    let ns_per_work_unit = sweep * 1e9 / (answers * l) as f64;

    println!("fan-out dispatch overhead ({reps} reps):");
    println!(
        "  thread::scope spawn (2 threads): {:9.2} µs",
        scope_spawn * 1e6
    );
    println!(
        "  pool batch dispatch (2 workers): {:9.2} µs",
        pool_dispatch * 1e6
    );
    println!(
        "  speedup: {:.1}x cheaper dispatch",
        scope_spawn / pool_dispatch
    );
    println!(
        "serial E-step work unit: {ns_per_work_unit:.2} ns  (sweep {:.0} µs / {} units)",
        sweep * 1e6,
        answers * l
    );
    for mult in [2.0f64, 4.0, 8.0] {
        let units = (pool_dispatch * mult * 1e9 / ns_per_work_unit).round();
        println!(
            "  work units whose serial cost = {mult:.0}x pool dispatch: {units:>10.0}  (~2^{:.1})",
            units.log2()
        );
    }
}
