//! Regenerate the golden equivalence fixtures used by
//! `tests/equivalence.rs`.
//!
//! The fixtures pin the exact (bit-identical) outputs of every method on a
//! set of seeded datasets. They were captured from the nested-`Vec`
//! implementation *before* the flat-memory substrate refactor, so the
//! equivalence test proves the refactor is output-preserving. Rerun this
//! only when an intentional algorithmic change invalidates them —
//! regeneration blesses whatever the *current* code produces, so a rerun
//! converts the suite from "matches the pre-refactor implementation"
//! into "matches the code as of the rerun"; pair any regeneration with a
//! review of the diff in the fixture file itself:
//!
//! ```sh
//! cargo run --release -p crowd-core --example gen_equivalence_fixtures \
//!     > crates/core/tests/fixtures/equivalence.tsv
//! ```
//!
//! Format (tab-separated): `method  dataset  seed  truths  scalars` where
//! `truths` is `L:` plus comma-separated labels or `N:` plus
//! comma-separated hex `f64` bit patterns, and `scalars` is comma-separated
//! hex `f64` bit patterns with `-` for workers without a scalar quality.

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::Dataset;

/// The fixture datasets: small enough that all 17 methods finish in
/// seconds, large enough to exercise multi-class and numeric paths.
pub fn fixture_datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("toy", crowd_data::toy::paper_example()),
        ("dprod005", PaperDataset::DProduct.generate(0.05, 42)),
        ("srel002", PaperDataset::SRel.generate(0.02, 1234)),
        ("nemo02", PaperDataset::NEmotion.generate(0.2, 1234)),
    ]
}

fn main() {
    println!("# crowd-core equivalence fixtures (see examples/gen_equivalence_fixtures.rs)");
    for (key, dataset) in fixture_datasets() {
        for method in Method::ALL {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            for seed in [7u64, 42] {
                let r = instance
                    .infer(&dataset, &InferenceOptions::seeded(seed))
                    .expect("fixture method must run");
                let truths = if dataset.task_type().is_categorical() {
                    let labels: Vec<String> = r
                        .truths
                        .iter()
                        .map(|a| a.label().expect("categorical").to_string())
                        .collect();
                    format!("L:{}", labels.join(","))
                } else {
                    let bits: Vec<String> = r
                        .truths
                        .iter()
                        .map(|a| format!("{:016x}", a.numeric().expect("numeric").to_bits()))
                        .collect();
                    format!("N:{}", bits.join(","))
                };
                let scalars: Vec<String> = r
                    .worker_quality
                    .iter()
                    .map(|q| match q.scalar() {
                        Some(s) => format!("{:016x}", s.to_bits()),
                        None => "-".to_string(),
                    })
                    .collect();
                println!(
                    "{}\t{}\t{}\t{}\t{}",
                    method.name(),
                    key,
                    seed,
                    truths,
                    scalars.join(",")
                );
            }
        }
    }
}
