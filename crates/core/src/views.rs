//! Internal dense views of a dataset, shared by the method
//! implementations.
//!
//! Methods iterate the answer log thousands of times; these views extract
//! the labels/values once, keep the task- and worker-adjacency as flat
//! index lists, and carry the golden-task clamps from the options.

use crowd_data::{Answer, Dataset};
use rand::rngs::StdRng;
use rand::Rng;

use crate::framework::{InferenceError, InferenceOptions};

/// Dense categorical view: every answer as `(task, worker, label)` plus
/// adjacency and golden clamps.
pub(crate) struct Cat {
    /// Number of tasks.
    pub n: usize,
    /// Number of workers.
    pub m: usize,
    /// Number of choices ℓ.
    pub l: usize,
    /// Per-task answers: `(worker, label)`.
    pub by_task: Vec<Vec<(usize, u8)>>,
    /// Per-worker answers: `(task, label)`.
    pub by_worker: Vec<Vec<(usize, u8)>>,
    /// Golden clamp per task (from `InferenceOptions::golden`).
    pub golden: Vec<Option<u8>>,
}

impl Cat {
    /// Build the view; fails on numeric datasets or malformed options.
    pub fn build(
        method: &'static str,
        dataset: &Dataset,
        options: &InferenceOptions,
        use_golden: bool,
    ) -> Result<Self, InferenceError> {
        let l = dataset.num_choices().ok_or(InferenceError::UnsupportedTaskType {
            method,
            task_type: dataset.task_type(),
        })? as usize;
        let n = dataset.num_tasks();
        let m = dataset.num_workers();
        let mut by_task: Vec<Vec<(usize, u8)>> = vec![Vec::new(); n];
        let mut by_worker: Vec<Vec<(usize, u8)>> = vec![Vec::new(); m];
        for r in dataset.records() {
            let label = r.answer.label().expect("categorical dataset holds labels");
            by_task[r.task].push((r.worker, label));
            by_worker[r.worker].push((r.task, label));
        }
        let golden = match (&options.golden, use_golden) {
            (Some(g), true) => g
                .iter()
                .map(|t| t.as_ref().and_then(Answer::label))
                .collect(),
            _ => vec![None; n],
        };
        Ok(Self { n, m, l, by_task, by_worker, golden })
    }

    /// Soft majority-vote posteriors: per-task normalized label counts
    /// (uniform when a task has no answers), with golden clamps applied.
    /// The standard initialisation for EM-style methods.
    pub fn majority_posteriors(&self) -> Vec<Vec<f64>> {
        let mut post = vec![vec![0.0; self.l]; self.n];
        for (task, answers) in self.by_task.iter().enumerate() {
            if let Some(g) = self.golden[task] {
                post[task][g as usize] = 1.0;
                continue;
            }
            if answers.is_empty() {
                post[task].fill(1.0 / self.l as f64);
                continue;
            }
            for &(_, label) in answers {
                post[task][label as usize] += 1.0;
            }
            let total: f64 = post[task].iter().sum();
            post[task].iter_mut().for_each(|p| *p /= total);
        }
        post
    }

    /// Clamp golden tasks in a posterior matrix (delta at the truth).
    pub fn clamp_golden(&self, post: &mut [Vec<f64>]) {
        for (task, g) in self.golden.iter().enumerate() {
            if let Some(truth) = g {
                post[task].fill(0.0);
                post[task][*truth as usize] = 1.0;
            }
        }
    }

    /// Decode MAP labels from posteriors, breaking exact ties uniformly
    /// at random (the paper's MV behaviour on ties).
    pub fn decode(&self, post: &[Vec<f64>], rng: &mut StdRng) -> Vec<u8> {
        post.iter()
            .map(|p| {
                let best = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let ties: Vec<u8> = p
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| (v - best).abs() < 1e-12)
                    .map(|(i, _)| i as u8)
                    .collect();
                if ties.len() == 1 {
                    ties[0]
                } else {
                    ties[rng.gen_range(0..ties.len())]
                }
            })
            .collect()
    }

    /// Convert decoded labels into `Answer`s.
    pub fn answers(labels: &[u8]) -> Vec<Answer> {
        labels.iter().map(|&l| Answer::Label(l)).collect()
    }
}

/// Dense numeric view.
pub(crate) struct Num {
    /// Number of tasks.
    pub n: usize,
    /// Number of workers.
    pub m: usize,
    /// Per-task answers: `(worker, value)`.
    pub by_task: Vec<Vec<(usize, f64)>>,
    /// Per-worker answers: `(task, value)`.
    pub by_worker: Vec<Vec<(usize, f64)>>,
    /// Golden clamp per task.
    pub golden: Vec<Option<f64>>,
}

impl Num {
    /// Build the view; fails on categorical datasets.
    pub fn build(
        method: &'static str,
        dataset: &Dataset,
        options: &InferenceOptions,
        use_golden: bool,
    ) -> Result<Self, InferenceError> {
        if dataset.task_type().is_categorical() {
            return Err(InferenceError::UnsupportedTaskType {
                method,
                task_type: dataset.task_type(),
            });
        }
        let n = dataset.num_tasks();
        let m = dataset.num_workers();
        let mut by_task: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut by_worker: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for r in dataset.records() {
            let v = r.answer.numeric().expect("numeric dataset holds numeric answers");
            by_task[r.task].push((r.worker, v));
            by_worker[r.worker].push((r.task, v));
        }
        let golden = match (&options.golden, use_golden) {
            (Some(g), true) => g.iter().map(|t| t.as_ref().and_then(Answer::numeric)).collect(),
            _ => vec![None; n],
        };
        Ok(Self { n, m, by_task, by_worker, golden })
    }

    /// Per-task mean (0.0 for unanswered tasks), golden clamps applied.
    pub fn mean_estimates(&self) -> Vec<f64> {
        (0..self.n)
            .map(|t| {
                if let Some(g) = self.golden[t] {
                    return g;
                }
                let answers = &self.by_task[t];
                if answers.is_empty() {
                    0.0
                } else {
                    answers.iter().map(|&(_, v)| v).sum::<f64>() / answers.len() as f64
                }
            })
            .collect()
    }

    /// Convert estimates into `Answer`s.
    pub fn answers(estimates: &[f64]) -> Vec<Answer> {
        estimates.iter().map(|&v| Answer::Numeric(v)).collect()
    }
}

/// Initial per-worker accuracy from the options: qualification scores
/// where available, `default` elsewhere.
pub(crate) fn initial_accuracy(
    options: &InferenceOptions,
    m: usize,
    default: f64,
) -> Vec<f64> {
    match &options.quality_init {
        crate::framework::QualityInit::Uniform => vec![default; m],
        crate::framework::QualityInit::Qualification(q) => q
            .iter()
            .map(|s| s.unwrap_or(default).clamp(0.02, 0.98))
            .collect(),
    }
}
