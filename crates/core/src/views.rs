//! Dense views of a dataset, shared by the method implementations — the
//! data layer of the flat-memory inference substrate. Public so the
//! streaming subsystem (`crowd-stream`) can maintain the same views
//! incrementally and hand them straight to the view-level inference
//! entry points (`Ds::infer_view` and friends).
//!
//! Methods iterate the answer log thousands of times. These views extract
//! the labels/values once and store both adjacencies (per task `W_i`, per
//! worker `T^w`) in **CSR form**: one contiguous entry buffer plus a
//! `u32` offset array per dimension. A task's (or worker's) answers are a
//! contiguous slice — no pointer chasing, no per-row allocations — and
//! posteriors live in a row-major [`DMat`], so the E/M hot loops touch
//! only flat memory.

use crowd_data::{Answer, Dataset};
use crowd_stats::DMat;
use rand::rngs::StdRng;
use rand::Rng;

use crate::framework::{InferenceError, InferenceOptions};

mod sharded;

pub use sharded::ShardedView;
pub(crate) use sharded::{obs_estep_seconds, obs_reduce_seconds};

/// Compressed sparse rows: `entries` holds each row's items contiguously,
/// `offsets[i]..offsets[i+1]` delimits row `i`. Entry columns are `u32`
/// (tasks and workers both fit comfortably), keeping the buffer compact.
#[derive(Debug)]
pub struct Csr<V> {
    offsets: Vec<u32>,
    entries: Vec<(u32, V)>,
}

impl<V: Copy> Csr<V> {
    /// Build from `(row, col, value)` triples, preserving the triple
    /// order within each row (a stable counting sort on the row index —
    /// two passes, no comparison sort).
    pub fn from_triples(
        num_rows: usize,
        triples: impl Iterator<Item = (usize, u32, V)> + Clone,
    ) -> Self {
        let mut offsets = vec![0u32; num_rows + 1];
        let mut total = 0usize;
        let mut first: Option<(u32, V)> = None;
        for (row, col, v) in triples.clone() {
            offsets[row + 1] += 1;
            total += 1;
            if first.is_none() {
                first = Some((col, v));
            }
        }
        for i in 0..num_rows {
            offsets[i + 1] += offsets[i];
        }
        let entries = match first {
            None => Vec::new(),
            Some(placeholder) => {
                // Pre-fill with a real value (V: Copy, no Default bound),
                // then scatter every triple to its final slot.
                let mut entries = vec![placeholder; total];
                let mut cursor: Vec<u32> = offsets[..num_rows].to_vec();
                for (row, col, v) in triples {
                    entries[cursor[row] as usize] = (col, v);
                    cursor[row] += 1;
                }
                entries
            }
        };
        Self { offsets, entries }
    }

    /// Build from `(row, col, value)` triples in a **single pass**, for
    /// callers that already know each row's entry count (the delta views
    /// track per-row degrees; the sharded builders count while
    /// bucketing). Unlike [`Csr::from_triples`] the iterator is consumed
    /// once and needs no `Clone` bound — the constructor for sources
    /// that cannot be cheaply re-iterated, e.g. a streamed answer
    /// generator that never materialises the log.
    ///
    /// Triple order within each row is preserved (same stable
    /// counting-sort layout as the two-pass path, so the two
    /// constructors produce identical buffers for identical input).
    ///
    /// # Panics
    /// Panics if a triple's row is out of range or a row receives more
    /// or fewer entries than `row_counts` promised — a miscounted CSR
    /// would mis-slice every downstream hot loop.
    pub fn from_triples_counted(
        row_counts: &[u32],
        triples: impl Iterator<Item = (usize, u32, V)>,
    ) -> Self {
        let num_rows = row_counts.len();
        let mut offsets = vec![0u32; num_rows + 1];
        for (i, &c) in row_counts.iter().enumerate() {
            offsets[i + 1] = offsets[i] + c;
        }
        let total = offsets[num_rows] as usize;
        let mut entries: Vec<(u32, V)> = Vec::with_capacity(total);
        let mut cursor: Vec<u32> = offsets[..num_rows].to_vec();
        let mut placed = 0usize;
        for (row, col, v) in triples {
            assert!(row < num_rows, "triple row {row} ≥ {num_rows}");
            let slot = cursor[row] as usize;
            assert!(
                slot < offsets[row + 1] as usize,
                "row {row} received more entries than counted"
            );
            if entries.is_empty() {
                // First triple seeds the placeholder fill (V: Copy, no
                // Default bound) — same trick as the two-pass path.
                entries = vec![(col, v); total];
            }
            entries[slot] = (col, v);
            cursor[row] += 1;
            placed += 1;
        }
        assert_eq!(placed, total, "row counts promised {total} entries");
        Self { offsets, entries }
    }

    /// Row `i` as a contiguous slice of `(col, value)` pairs.
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, V)] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of entries in row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Dense categorical view: every answer as `(task, worker, label)` plus
/// CSR adjacency in both directions and golden clamps.
#[derive(Debug)]
pub struct Cat {
    /// Number of tasks.
    pub n: usize,
    /// Number of workers.
    pub m: usize,
    /// Number of choices ℓ.
    pub l: usize,
    /// Per-task CSR: row `t` holds `(worker, label)` pairs.
    task_adj: Csr<u8>,
    /// Per-worker CSR: row `w` holds `(task, label)` pairs.
    worker_adj: Csr<u8>,
    /// Golden clamp per task (from `InferenceOptions::golden`).
    pub golden: Vec<Option<u8>>,
}

impl Cat {
    /// Build the view; fails on numeric datasets or malformed options.
    pub fn build(
        method: &'static str,
        dataset: &Dataset,
        options: &InferenceOptions,
        use_golden: bool,
    ) -> Result<Self, InferenceError> {
        let l = dataset
            .num_choices()
            .ok_or(InferenceError::UnsupportedTaskType {
                method,
                task_type: dataset.task_type(),
            })? as usize;
        let n = dataset.num_tasks();
        let m = dataset.num_workers();
        let records = dataset.records();
        let task_adj = Csr::from_triples(
            n,
            records.iter().map(|r| {
                (
                    r.task,
                    r.worker as u32,
                    r.answer.label().expect("categorical dataset"),
                )
            }),
        );
        let worker_adj = Csr::from_triples(
            m,
            records.iter().map(|r| {
                (
                    r.worker,
                    r.task as u32,
                    r.answer.label().expect("categorical dataset"),
                )
            }),
        );
        let golden = match (&options.golden, use_golden) {
            (Some(g), true) => g
                .iter()
                .map(|t| t.as_ref().and_then(Answer::label))
                .collect(),
            _ => vec![None; n],
        };
        Ok(Self {
            n,
            m,
            l,
            task_adj,
            worker_adj,
            golden,
        })
    }

    /// Assemble a view from prebuilt CSR adjacencies — the entry point
    /// for callers (the streaming delta views) that maintain the
    /// adjacencies themselves. Both CSRs must describe the same answer
    /// log: `task_adj` keyed by task with `(worker, label)` entries,
    /// `worker_adj` keyed by worker with `(task, label)` entries.
    ///
    /// # Panics
    /// Panics if the row counts do not match `n`/`m`, the entry totals
    /// disagree, `golden` is not `n` long, or any entry is out of range
    /// (worker column ≥ `m`, task column ≥ `n`, label ≥ `l`) — the EM
    /// loops index confusion tables and posterior rows by these values
    /// unchecked, so a malformed view must fail fast here rather than
    /// deep inside a method.
    pub fn from_parts(
        n: usize,
        m: usize,
        l: usize,
        task_adj: Csr<u8>,
        worker_adj: Csr<u8>,
        golden: Vec<Option<u8>>,
    ) -> Self {
        assert_eq!(task_adj.num_rows(), n, "task adjacency row count");
        assert_eq!(worker_adj.num_rows(), m, "worker adjacency row count");
        assert_eq!(
            task_adj.num_entries(),
            worker_adj.num_entries(),
            "adjacency entry totals disagree"
        );
        assert_eq!(golden.len(), n, "golden vector length");
        for t in 0..n {
            for &(worker, label) in task_adj.row(t) {
                assert!(
                    (worker as usize) < m,
                    "task {t}: worker column {worker} ≥ {m}"
                );
                assert!((label as usize) < l, "task {t}: label {label} ≥ {l}");
            }
        }
        for w in 0..m {
            for &(task, label) in worker_adj.row(w) {
                assert!((task as usize) < n, "worker {w}: task column {task} ≥ {n}");
                assert!((label as usize) < l, "worker {w}: label {label} ≥ {l}");
            }
        }
        for (t, g) in golden.iter().enumerate() {
            if let Some(label) = g {
                assert!(
                    (*label as usize) < l,
                    "golden task {t}: label {label} ≥ {l}"
                );
            }
        }
        Self {
            n,
            m,
            l,
            task_adj,
            worker_adj,
            golden,
        }
    }

    /// Total answers in the view (`|V|`).
    pub fn num_answers(&self) -> usize {
        self.task_adj.num_entries()
    }

    /// Answers on task `t` as `(worker, label)` pairs, in record order —
    /// a contiguous slice decoded on the fly.
    #[inline]
    pub fn task(&self, t: usize) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.task_adj
            .row(t)
            .iter()
            .map(|&(w, label)| (w as usize, label))
    }

    /// Raw CSR row for task `t` — the tightest-loop form (one slice, no
    /// iterator adapter).
    #[inline]
    pub fn task_row(&self, t: usize) -> &[(u32, u8)] {
        self.task_adj.row(t)
    }

    /// Number of answers on task `t` (`|W_t|`).
    #[inline]
    pub fn task_len(&self, t: usize) -> usize {
        self.task_adj.row_len(t)
    }

    /// Answers by worker `w` as `(task, label)` pairs, in record order.
    #[inline]
    pub fn worker(&self, w: usize) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.worker_adj
            .row(w)
            .iter()
            .map(|&(t, label)| (t as usize, label))
    }

    /// Raw CSR row for worker `w` — the allocation-free M-step form.
    #[inline]
    pub fn worker_row(&self, w: usize) -> &[(u32, u8)] {
        self.worker_adj.row(w)
    }

    /// Number of answers by worker `w` (`|T^w|`).
    #[inline]
    pub fn worker_len(&self, w: usize) -> usize {
        self.worker_adj.row_len(w)
    }

    /// Soft majority-vote posteriors: per-task normalized label counts
    /// (uniform when a task has no answers), with golden clamps applied.
    /// The standard initialisation for EM-style methods.
    pub fn majority_posteriors(&self) -> DMat {
        let mut post = DMat::zeros(self.n, self.l);
        for task in 0..self.n {
            if let Some(g) = self.golden[task] {
                post[(task, g as usize)] = 1.0;
                continue;
            }
            if self.task_len(task) == 0 {
                post.row_mut(task).fill(1.0 / self.l as f64);
                continue;
            }
            for (_, label) in self.task(task) {
                post[(task, label as usize)] += 1.0;
            }
            // Rows reaching here hold ≥ 1 count, so the normalize is a
            // plain division by the (positive) total.
            post.row_normalize(task);
        }
        post
    }

    /// Clamp golden tasks in a posterior matrix (delta at the truth).
    pub fn clamp_golden(&self, post: &mut DMat) {
        for (task, g) in self.golden.iter().enumerate() {
            if let Some(truth) = g {
                let row = post.row_mut(task);
                row.fill(0.0);
                row[*truth as usize] = 1.0;
            }
        }
    }

    /// Decode MAP labels from posteriors, breaking exact ties uniformly
    /// at random (the paper's MV behaviour on ties).
    pub fn decode(&self, post: &DMat, rng: &mut StdRng) -> Vec<u8> {
        (0..self.n)
            .map(|task| decode_row(post.row(task), rng))
            .collect()
    }

    /// Decode from nested rows (methods that accumulate their own
    /// posterior shape, e.g. the Gibbs samplers).
    pub fn decode_nested(&self, post: &[Vec<f64>], rng: &mut StdRng) -> Vec<u8> {
        post.iter().map(|p| decode_row(p, rng)).collect()
    }

    /// Convert decoded labels into `Answer`s.
    pub fn answers(labels: &[u8]) -> Vec<Answer> {
        labels.iter().map(|&l| Answer::Label(l)).collect()
    }
}

/// MAP label of one posterior row with seeded uniform tie-breaking.
fn decode_row(p: &[f64], rng: &mut StdRng) -> u8 {
    let best = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let ties: Vec<u8> = p
        .iter()
        .enumerate()
        .filter(|(_, &v)| (v - best).abs() < 1e-12)
        .map(|(i, _)| i as u8)
        .collect();
    if ties.len() == 1 {
        ties[0]
    } else {
        ties[rng.gen_range(0..ties.len())]
    }
}

/// Dense numeric view (CSR, like [`Cat`] with `f64` values).
#[derive(Debug)]
pub struct Num {
    /// Number of tasks.
    pub n: usize,
    /// Number of workers.
    pub m: usize,
    /// Per-task CSR: row `t` holds `(worker, value)` pairs.
    task_adj: Csr<f64>,
    /// Per-worker CSR: row `w` holds `(task, value)` pairs.
    worker_adj: Csr<f64>,
    /// Golden clamp per task.
    pub golden: Vec<Option<f64>>,
}

impl Num {
    /// Build the view; fails on categorical datasets.
    pub fn build(
        method: &'static str,
        dataset: &Dataset,
        options: &InferenceOptions,
        use_golden: bool,
    ) -> Result<Self, InferenceError> {
        if dataset.task_type().is_categorical() {
            return Err(InferenceError::UnsupportedTaskType {
                method,
                task_type: dataset.task_type(),
            });
        }
        let n = dataset.num_tasks();
        let m = dataset.num_workers();
        let records = dataset.records();
        let task_adj = Csr::from_triples(
            n,
            records.iter().map(|r| {
                (
                    r.task,
                    r.worker as u32,
                    r.answer.numeric().expect("numeric dataset"),
                )
            }),
        );
        let worker_adj = Csr::from_triples(
            m,
            records.iter().map(|r| {
                (
                    r.worker,
                    r.task as u32,
                    r.answer.numeric().expect("numeric dataset"),
                )
            }),
        );
        let golden = match (&options.golden, use_golden) {
            (Some(g), true) => g
                .iter()
                .map(|t| t.as_ref().and_then(Answer::numeric))
                .collect(),
            _ => vec![None; n],
        };
        Ok(Self {
            n,
            m,
            task_adj,
            worker_adj,
            golden,
        })
    }

    /// Assemble a numeric view from prebuilt CSR adjacencies (see
    /// [`Cat::from_parts`]).
    ///
    /// # Panics
    /// Panics if the row counts do not match `n`/`m`, the entry totals
    /// disagree, `golden` is not `n` long or holds a non-finite value,
    /// or any entry's column is out of range (worker ≥ `m`, task ≥ `n`).
    pub fn from_parts(
        n: usize,
        m: usize,
        task_adj: Csr<f64>,
        worker_adj: Csr<f64>,
        golden: Vec<Option<f64>>,
    ) -> Self {
        assert_eq!(task_adj.num_rows(), n, "task adjacency row count");
        assert_eq!(worker_adj.num_rows(), m, "worker adjacency row count");
        assert_eq!(
            task_adj.num_entries(),
            worker_adj.num_entries(),
            "adjacency entry totals disagree"
        );
        assert_eq!(golden.len(), n, "golden vector length");
        for t in 0..n {
            for &(worker, _) in task_adj.row(t) {
                assert!(
                    (worker as usize) < m,
                    "task {t}: worker column {worker} ≥ {m}"
                );
            }
        }
        for w in 0..m {
            for &(task, _) in worker_adj.row(w) {
                assert!((task as usize) < n, "worker {w}: task column {task} ≥ {n}");
            }
        }
        for (t, g) in golden.iter().enumerate() {
            if let Some(v) = g {
                assert!(v.is_finite(), "golden task {t}: non-finite value {v}");
            }
        }
        Self {
            n,
            m,
            task_adj,
            worker_adj,
            golden,
        }
    }

    /// Total answers in the view (`|V|`).
    pub fn num_answers(&self) -> usize {
        self.task_adj.num_entries()
    }

    /// Answers on task `t` as `(worker, value)` pairs, in record order.
    #[inline]
    pub fn task(&self, t: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.task_adj.row(t).iter().map(|&(w, v)| (w as usize, v))
    }

    /// Number of answers on task `t`.
    #[inline]
    pub fn task_len(&self, t: usize) -> usize {
        self.task_adj.row_len(t)
    }

    /// Answers by worker `w` as `(task, value)` pairs, in record order.
    #[inline]
    pub fn worker(&self, w: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.worker_adj.row(w).iter().map(|&(t, v)| (t as usize, v))
    }

    /// Number of answers by worker `w`.
    #[inline]
    pub fn worker_len(&self, w: usize) -> usize {
        self.worker_adj.row_len(w)
    }

    /// Per-task mean (0.0 for unanswered tasks), golden clamps applied.
    pub fn mean_estimates(&self) -> Vec<f64> {
        (0..self.n)
            .map(|t| {
                if let Some(g) = self.golden[t] {
                    return g;
                }
                let len = self.task_len(t);
                if len == 0 {
                    0.0
                } else {
                    self.task(t).map(|(_, v)| v).sum::<f64>() / len as f64
                }
            })
            .collect()
    }

    /// Convert estimates into `Answer`s.
    pub fn answers(estimates: &[f64]) -> Vec<Answer> {
        estimates.iter().map(|&v| Answer::Numeric(v)).collect()
    }
}

/// Initial per-worker accuracy from the options: qualification scores
/// where available, `default` elsewhere.
pub(crate) fn initial_accuracy(options: &InferenceOptions, m: usize, default: f64) -> Vec<f64> {
    match &options.quality_init {
        crate::framework::QualityInit::Uniform => vec![default; m],
        crate::framework::QualityInit::Qualification(q) => q
            .iter()
            .map(|s| s.unwrap_or(default).clamp(0.02, 0.98))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{DatasetBuilder, TaskType};
    use proptest::prelude::*;

    /// A random categorical dataset as raw `(task, worker, label)` edges.
    fn arb_categorical() -> impl Strategy<Value = Dataset> {
        (2usize..14, 2usize..9, 2u8..5).prop_flat_map(|(n, m, l)| {
            proptest::collection::vec((0..n, 0..m, 0..l), 0..(n * m).min(120)).prop_map(
                move |edges| {
                    let mut b =
                        DatasetBuilder::new("csr", TaskType::SingleChoice { choices: l }, n, m);
                    let mut seen = std::collections::HashSet::new();
                    for (t, w, a) in edges {
                        if seen.insert((t, w)) {
                            b.add_label(t, w, a).expect("valid edge");
                        }
                    }
                    b.build()
                },
            )
        })
    }

    /// A random numeric dataset.
    fn arb_numeric() -> impl Strategy<Value = Dataset> {
        (2usize..12, 2usize..7).prop_flat_map(|(n, m)| {
            proptest::collection::vec((0..n, 0..m, -100.0f64..100.0), 0..(n * m).min(80)).prop_map(
                move |edges| {
                    let mut b = DatasetBuilder::new("csrn", TaskType::Numeric, n, m);
                    let mut seen = std::collections::HashSet::new();
                    for (t, w, v) in edges {
                        if seen.insert((t, w)) {
                            b.add_numeric(t, w, v).expect("valid edge");
                        }
                    }
                    b.build()
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The CSR view round-trips `Dataset::records()`: walking the
        /// per-task rows in order recovers exactly the record log grouped
        /// by task (and likewise per worker), with degrees intact.
        #[test]
        fn cat_csr_round_trips_records(dataset in arb_categorical()) {
            let cat = Cat::build("test", &dataset, &InferenceOptions::default(), false).unwrap();
            prop_assert_eq!(cat.num_answers(), dataset.num_answers());

            // Per-task rows == records grouped by task, preserving order.
            let mut by_task: Vec<Vec<(usize, u8)>> = vec![Vec::new(); dataset.num_tasks()];
            let mut by_worker: Vec<Vec<(usize, u8)>> = vec![Vec::new(); dataset.num_workers()];
            for r in dataset.records() {
                let label = r.answer.label().unwrap();
                by_task[r.task].push((r.worker, label));
                by_worker[r.worker].push((r.task, label));
            }
            for t in 0..dataset.num_tasks() {
                let row: Vec<(usize, u8)> = cat.task(t).collect();
                prop_assert_eq!(&row, &by_task[t], "task {} row mismatch", t);
                prop_assert_eq!(cat.task_len(t), dataset.task_degree(t));
            }
            for w in 0..dataset.num_workers() {
                let row: Vec<(usize, u8)> = cat.worker(w).collect();
                prop_assert_eq!(&row, &by_worker[w], "worker {} row mismatch", w);
                prop_assert_eq!(cat.worker_len(w), dataset.worker_degree(w));
            }
        }

        /// Majority posteriors over the CSR view are proper distributions
        /// and match the per-task label counts.
        #[test]
        fn majority_posteriors_match_counts(dataset in arb_categorical()) {
            let cat = Cat::build("test", &dataset, &InferenceOptions::default(), false).unwrap();
            let post = cat.majority_posteriors();
            for t in 0..cat.n {
                let row = post.row(t);
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "task {} sums to {}", t, sum);
                let deg = cat.task_len(t);
                if deg > 0 {
                    for (label, &p) in row.iter().enumerate() {
                        let count =
                            cat.task(t).filter(|&(_, a)| a as usize == label).count();
                        prop_assert!((p - count as f64 / deg as f64).abs() < 1e-9);
                    }
                }
            }
        }

        /// The numeric CSR view round-trips `Dataset::records()` too.
        #[test]
        fn num_csr_round_trips_records(dataset in arb_numeric()) {
            let num = Num::build("test", &dataset, &InferenceOptions::default(), false).unwrap();
            let mut by_task: Vec<Vec<(usize, f64)>> = vec![Vec::new(); dataset.num_tasks()];
            let mut by_worker: Vec<Vec<(usize, f64)>> = vec![Vec::new(); dataset.num_workers()];
            for r in dataset.records() {
                let v = r.answer.numeric().unwrap();
                by_task[r.task].push((r.worker, v));
                by_worker[r.worker].push((r.task, v));
            }
            for t in 0..dataset.num_tasks() {
                let row: Vec<(usize, f64)> = num.task(t).collect();
                prop_assert_eq!(&row, &by_task[t]);
                prop_assert_eq!(num.task_len(t), dataset.task_degree(t));
            }
            for w in 0..dataset.num_workers() {
                let row: Vec<(usize, f64)> = num.worker(w).collect();
                prop_assert_eq!(&row, &by_worker[w]);
                prop_assert_eq!(num.worker_len(w), dataset.worker_degree(w));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The single-pass counted constructor and the two-pass `Clone`
        /// constructor produce identical CSR buffers for identical
        /// triples — offsets, entry order, everything.
        #[test]
        fn counted_constructor_matches_two_pass(
            n in 1usize..12,
            edges in proptest::collection::vec((0usize..12, 0u32..9, 0u8..4), 0..60),
        ) {
            let triples: Vec<(usize, u32, u8)> =
                edges.into_iter().map(|(t, w, v)| (t % n, w, v)).collect();
            let two_pass = Csr::from_triples(n, triples.iter().copied());
            let mut counts = vec![0u32; n];
            for &(row, _, _) in &triples {
                counts[row] += 1;
            }
            let counted = Csr::from_triples_counted(&counts, triples.iter().copied());
            prop_assert_eq!(&two_pass.offsets, &counted.offsets);
            prop_assert_eq!(&two_pass.entries, &counted.entries);
        }
    }

    #[test]
    fn counted_constructor_rejects_miscounts() {
        let triples = [(0usize, 1u32, 7u8), (1, 2, 3)];
        // Undercounted row 1.
        let r = std::panic::catch_unwind(|| {
            Csr::from_triples_counted(&[1, 0], triples.iter().copied())
        });
        assert!(r.is_err(), "undercount must panic");
        // Overcounted total.
        let r = std::panic::catch_unwind(|| {
            Csr::from_triples_counted(&[2, 2], triples.iter().copied())
        });
        assert!(r.is_err(), "overcount must panic");
    }

    #[test]
    fn csr_handles_empty_rows_and_datasets() {
        let mut b = DatasetBuilder::new("gap", TaskType::DecisionMaking, 4, 3);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(3, 2, 1).unwrap();
        // Tasks 1-2 and worker 1 receive nothing.
        let d = b.build();
        let cat = Cat::build("test", &d, &InferenceOptions::default(), false).unwrap();
        assert_eq!(cat.task_len(1), 0);
        assert_eq!(cat.task_len(2), 0);
        assert_eq!(cat.worker_len(1), 0);
        assert_eq!(cat.task(1).count(), 0);
        assert_eq!(cat.task(0).collect::<Vec<_>>(), vec![(0usize, 0u8)]);
        assert_eq!(cat.task(3).collect::<Vec<_>>(), vec![(2usize, 1u8)]);
    }
}
