//! The inference trait, options, results, and errors shared by all
//! seventeen methods.

use crowd_data::{Answer, Dataset, TaskType};
use std::fmt;

/// How a method initialises worker qualities (line 1 of Algorithm 1).
#[derive(Debug, Clone, Default)]
pub enum QualityInit {
    /// Every worker starts at the method's default quality.
    #[default]
    Uniform,
    /// Initialise from a qualification test: per-worker accuracy in
    /// `[0, 1]` (`None` for workers without a test score, who fall back
    /// to the default). For numeric methods the value is the accuracy
    /// proxy produced by `crowd_data::bootstrap_qualification`.
    Qualification(Vec<Option<f64>>),
}

/// Converged state carried from one inference run into the next — the
/// substrate of incremental/streaming re-convergence (`crowd-stream`).
///
/// When answers arrive over time, re-running EM from the majority-vote
/// initialisation discards everything the previous run learned. A warm
/// start reuses the previous run's **posteriors** and **worker quality
/// parameters** (confusion matrices for the D&S family, correctness
/// probabilities for ZC/GLAD) as the starting point, so the loop only has
/// to absorb the new answers' evidence. At an unchanged answer log the
/// warmed loop re-converges at the same fixed point as a cold run
/// (labels exactly, parameters within the convergence tolerance — see
/// the `crowd-stream` equivalence tests).
///
/// Vectors are indexed by the *previous* run's task/worker ids; entries
/// past the end (tasks or workers that appeared since) fall back to the
/// method's cold initialisation. Methods that do not support warm starts
/// ignore the field.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Per-task posterior over the `ℓ` choices from the previous run
    /// (`InferenceResult::posteriors`); `None` for methods that did not
    /// produce one.
    pub posteriors: Option<Vec<Vec<f64>>>,
    /// Per-worker quality from the previous run
    /// (`InferenceResult::worker_quality`).
    pub worker_quality: Vec<WorkerQuality>,
}

impl WarmStart {
    /// Capture the warm-startable state of a finished run.
    pub fn from_result(result: &InferenceResult) -> Self {
        Self {
            posteriors: result.posteriors.clone(),
            worker_quality: result.worker_quality.clone(),
        }
    }
}

/// Options shared by every method.
#[derive(Debug, Clone)]
pub struct InferenceOptions {
    /// Iteration cap for the outer two-step loop (paper default: enough
    /// to converge; we cap at 100).
    pub max_iterations: usize,
    /// Convergence tolerance on the mean absolute parameter change
    /// (paper example: 1e-3).
    pub tolerance: f64,
    /// Seed for any stochastic component (tie breaking, Gibbs sampling,
    /// message initialisation). Same seed ⇒ same output.
    pub seed: u64,
    /// Worker-quality initialisation.
    pub quality_init: QualityInit,
    /// Hidden-test golden tasks: a full-length truth vector with `Some`
    /// exactly at tasks whose truth the method may use (Section 6.3.3).
    /// Methods that support golden tasks clamp these truths in their
    /// truth-inference step and use them in their quality-estimation
    /// step; others ignore the field.
    pub golden: Option<Vec<Option<Answer>>>,
    /// Cap for a method's *internal* parallel fan-out (the size-gated
    /// E/M-step fan-out of the D&S family). `None` = use the machine's
    /// available parallelism. Callers that already fan out at a higher
    /// level (e.g. the experiment harness running repeats in parallel)
    /// should set `Some(1)` to avoid oversubscribing the machine. Thread
    /// count never changes results — per-task/per-worker updates are
    /// independent, so outputs are bit-identical at any setting.
    pub threads: Option<usize>,
    /// Resume from a previous run's converged state instead of the cold
    /// initialisation (majority vote / uniform qualities). Supported by
    /// the EM-family categorical methods (D&S, LFC, ZC, GLAD); others
    /// ignore it. Takes precedence over `quality_init` when both are
    /// set.
    pub warm_start: Option<WarmStart>,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-3,
            seed: 0,
            quality_init: QualityInit::Uniform,
            golden: None,
            threads: None,
            warm_start: None,
        }
    }
}

impl InferenceOptions {
    /// Options with a specific seed, otherwise defaults.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// A method's estimate of one worker's quality, in whatever shape the
/// method models it (Section 4.2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerQuality {
    /// Probability of answering correctly, in `[0, 1]`.
    Probability(f64),
    /// Unbounded reliability weight (PM, CATD).
    Weight(f64),
    /// Row-stochastic confusion matrix, `q[j][k] = Pr(answer k | truth j)`.
    Confusion(Vec<Vec<f64>>),
    /// Numeric answer variance (LFC_N); smaller is better.
    Variance(f64),
    /// Bias and variance of a numeric worker (Multi-style models).
    BiasVariance {
        /// Additive bias.
        bias: f64,
        /// Noise variance.
        variance: f64,
    },
    /// Per-topic skill vector (Multi, Minimax-style diverse skills).
    Skills(Vec<f64>),
    /// The method does not model workers (MV, Mean, Median).
    Unmodeled,
}

impl WorkerQuality {
    /// Collapse to a scalar "higher is better" score where possible, for
    /// reporting and histograms.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            Self::Probability(p) => Some(*p),
            Self::Weight(w) => Some(*w),
            Self::Confusion(m) => {
                // Mean diagonal: average per-class accuracy. A ragged or
                // short row has no diagonal entry to read — report "no
                // scalar" instead of panicking on malformed input.
                let l = m.len();
                if l == 0 || m.iter().enumerate().any(|(j, row)| row.len() <= j) {
                    return None;
                }
                Some(m.iter().enumerate().map(|(j, row)| row[j]).sum::<f64>() / l as f64)
            }
            Self::Variance(v) => Some(1.0 / (1.0 + v)),
            Self::BiasVariance { bias, variance } => {
                Some(1.0 / (1.0 + bias.abs() + variance.sqrt()))
            }
            Self::Skills(s) => {
                if s.is_empty() {
                    None
                } else {
                    Some(s.iter().sum::<f64>() / s.len() as f64)
                }
            }
            Self::Unmodeled => None,
        }
    }
}

/// Output of one inference run.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Inferred truth per task (always full length; tasks with no answers
    /// get the method's prior guess).
    pub truths: Vec<Answer>,
    /// Estimated quality per worker.
    pub worker_quality: Vec<WorkerQuality>,
    /// Outer iterations executed (1 for direct methods).
    pub iterations: usize,
    /// Whether the convergence criterion was met (always true for direct
    /// methods).
    pub converged: bool,
    /// For categorical tasks: per-task posterior over the `ℓ` choices,
    /// when the method computes one.
    pub posteriors: Option<Vec<Vec<f64>>>,
}

/// Errors a method can raise.
#[derive(Debug)]
pub enum InferenceError {
    /// The method does not handle this task type (Table 4's "Task Types"
    /// column; e.g. KOS is decision-making only).
    UnsupportedTaskType {
        /// The method name.
        method: &'static str,
        /// The offending task type.
        task_type: TaskType,
    },
    /// The dataset has no answers.
    EmptyDataset,
    /// An option vector had the wrong length (e.g. a qualification vector
    /// not matching the worker count).
    BadOptions {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedTaskType { method, task_type } => {
                write!(f, "{method} does not support task type {task_type:?}")
            }
            Self::EmptyDataset => write!(f, "dataset contains no answers"),
            Self::BadOptions { detail } => write!(f, "bad options: {detail}"),
        }
    }
}

impl std::error::Error for InferenceError {}

/// The unifying interface: every method in Table 4 implements this.
pub trait TruthInference {
    /// The method's name as used in the paper (e.g. `"D&S"`).
    fn name(&self) -> &'static str;

    /// Whether the method can run on datasets of this task type.
    fn supports(&self, task_type: TaskType) -> bool;

    /// Whether worker qualities can be initialised from a qualification
    /// test (the paper finds 8 such methods, §6.3.2).
    fn supports_qualification(&self) -> bool {
        false
    }

    /// Whether hidden-test golden tasks can be incorporated (the paper
    /// finds 9 such methods, §6.3.3).
    fn supports_golden(&self) -> bool {
        false
    }

    /// Run inference over the answer set.
    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError>;
}

/// Validate options for the view-level entry points (`infer_view`),
/// which bypass [`validate_common`]: the view supplies task type and
/// golden clamps, but a qualification vector still has to match the
/// worker count or the per-worker init loops would index past its end.
pub(crate) fn validate_view_options(
    num_workers: usize,
    options: &InferenceOptions,
) -> Result<(), InferenceError> {
    if let QualityInit::Qualification(q) = &options.quality_init {
        if q.len() != num_workers {
            return Err(InferenceError::BadOptions {
                detail: format!(
                    "qualification vector has {} entries for {} workers",
                    q.len(),
                    num_workers
                ),
            });
        }
    }
    Ok(())
}

/// Validate the parts of [`InferenceOptions`] that are method-independent
/// (shared by every implementation).
pub(crate) fn validate_common(
    method: &'static str,
    dataset: &Dataset,
    options: &InferenceOptions,
    supports: bool,
) -> Result<(), InferenceError> {
    if !supports {
        return Err(InferenceError::UnsupportedTaskType {
            method,
            task_type: dataset.task_type(),
        });
    }
    if dataset.num_answers() == 0 {
        return Err(InferenceError::EmptyDataset);
    }
    if let QualityInit::Qualification(q) = &options.quality_init {
        if q.len() != dataset.num_workers() {
            return Err(InferenceError::BadOptions {
                detail: format!(
                    "qualification vector has {} entries for {} workers",
                    q.len(),
                    dataset.num_workers()
                ),
            });
        }
    }
    if let Some(g) = &options.golden {
        if g.len() != dataset.num_tasks() {
            return Err(InferenceError::BadOptions {
                detail: format!(
                    "golden vector has {} entries for {} tasks",
                    g.len(),
                    dataset.num_tasks()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_scalar_shapes() {
        assert_eq!(WorkerQuality::Probability(0.7).scalar(), Some(0.7));
        assert_eq!(WorkerQuality::Weight(2.5).scalar(), Some(2.5));
        let conf = WorkerQuality::Confusion(vec![vec![0.8, 0.2], vec![0.4, 0.6]]);
        assert_eq!(conf.scalar(), Some(0.7));
        assert_eq!(WorkerQuality::Unmodeled.scalar(), None);
        let v = WorkerQuality::Variance(3.0).scalar().unwrap();
        assert!((v - 0.25).abs() < 1e-12);
    }

    #[test]
    fn malformed_confusion_yields_none_instead_of_panicking() {
        // Empty matrix.
        assert_eq!(WorkerQuality::Confusion(vec![]).scalar(), None);
        // Ragged: second row too short to hold its diagonal entry.
        let ragged = WorkerQuality::Confusion(vec![vec![0.9, 0.1], vec![0.3]]);
        assert_eq!(ragged.scalar(), None);
        // Uniformly short rows (no row reaches its diagonal column).
        let short = WorkerQuality::Confusion(vec![vec![1.0], vec![1.0]]);
        assert_eq!(short.scalar(), None);
        // A square-but-wider matrix still works.
        let wide = WorkerQuality::Confusion(vec![vec![0.6, 0.4, 0.0], vec![0.2, 0.8, 0.0]]);
        assert_eq!(wide.scalar(), Some(0.7));
    }

    #[test]
    fn default_options_match_paper() {
        let o = InferenceOptions::default();
        assert_eq!(o.max_iterations, 100);
        assert!((o.tolerance - 1e-3).abs() < 1e-15);
        assert!(o.golden.is_none());
    }
}
