//! Task-range sharding of the categorical CSR view — the data layer of
//! the sharded EM substrate (see ARCHITECTURE.md §sharded substrate).
//!
//! A [`ShardedView`] splits the task axis into contiguous ranges
//! (the **shard directory**) and stores, per shard, both CSR
//! adjacencies restricted to that range:
//!
//! - `task_adj`: the shard's task rows (local row `i` = global task
//!   `start + i`), entries `(worker, label)` in record order — a
//!   verbatim slice of the unsharded task adjacency;
//! - `worker_adj`: all `m` worker rows restricted to the shard's tasks,
//!   entries `(global task, label)` in **task-ascending order** (the
//!   canonical order — derived from the task rows, not from arrival
//!   order).
//!
//! The canonical worker-row order is the bit-identity keystone: walking
//! every shard's worker row in ascending shard order visits a worker's
//! answers in ascending task order **regardless of the shard count**, so
//! any per-worker f64 fold over the sharded view is invariant in the
//! number of shards — and equal to the unsharded fold whenever the flat
//! view's worker rows are themselves task-ascending (true for every
//! dataset built task-by-task: the simulators, the builders, and
//! compacted streams of task-grouped arrivals).
//!
//! Shards are built either by slicing an existing [`Cat`]
//! ([`ShardedView::from_cat`]) or streamed from a `(task, worker,
//! label)` iterator in a single pass ([`ShardedView::from_records`]) —
//! per-shard buffers plus the counted CSR constructor
//! ([`Csr::from_triples_counted`]) lift `from_triples`' `Clone`-iterator
//! two-pass requirement, so a million-task synthetic stream never
//! materialises one flat answer log.

use crowd_stats::DMat;
use rand::rngs::StdRng;
use std::ops::Range;
use std::sync::OnceLock;

use super::{decode_row, Cat, Csr};
use crate::exec;

/// Shards-rebuilt counter: incremented once per shard rebuild (the
/// streaming dirty-shard path calls [`ShardedView::rebuild_shard`] only
/// for shards that received answers since the last converge, so this
/// counts shards-dirty-per-converge in aggregate).
fn obs_dirty_rebuilds() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("core.shard.dirty_rebuilds_total"))
}

/// Per-shard E-step wall time (one sample per shard per EM iteration).
pub(crate) fn obs_estep_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("core.shard.estep_seconds"))
}

/// M-step partial-reduce wall time (one sample per EM iteration).
pub(crate) fn obs_reduce_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("core.shard.reduce_seconds"))
}

/// The shard directory: `shard_count + 1` task boundaries splitting
/// `0..n` into contiguous ranges as evenly as possible (the first
/// `n % shard_count` shards hold one extra task; with more shards than
/// tasks the tail shards are empty ranges).
pub(crate) fn shard_starts(n: usize, shard_count: usize) -> Vec<usize> {
    let s = shard_count.max(1);
    let (base, extra) = (n / s, n % s);
    let mut starts = Vec::with_capacity(s + 1);
    let mut at = 0usize;
    starts.push(0);
    for i in 0..s {
        at += base + usize::from(i < extra);
        starts.push(at);
    }
    starts
}

/// One task-range shard: both adjacencies restricted to the range.
#[derive(Debug)]
struct ShardData {
    /// Local task rows (`(worker, label)` entries, record order).
    task_adj: Csr<u8>,
    /// All `m` worker rows over this range (`(global task, label)`
    /// entries, task-ascending — the canonical order).
    worker_adj: Csr<u8>,
}

impl ShardData {
    /// Derive the canonical worker adjacency from the shard's task rows:
    /// count per-worker degrees, then scatter the task rows in ascending
    /// task order. Both constructors and the rebuild path funnel through
    /// here, so the canonical-order invariant has one owner.
    fn from_task_adj(start: usize, m: usize, task_adj: Csr<u8>) -> Self {
        let mut counts = vec![0u32; m];
        for local in 0..task_adj.num_rows() {
            for &(worker, _) in task_adj.row(local) {
                counts[worker as usize] += 1;
            }
        }
        let worker_adj = Csr::from_triples_counted(
            &counts,
            (0..task_adj.num_rows()).flat_map(|local| {
                task_adj
                    .row(local)
                    .iter()
                    .map(move |&(worker, label)| (worker as usize, (start + local) as u32, label))
            }),
        );
        Self {
            task_adj,
            worker_adj,
        }
    }
}

/// A categorical answer view split into contiguous task-range shards —
/// the substrate the sharded EM paths (`Ds::infer_sharded` and friends)
/// run on. See the module docs for the layout and order guarantees.
#[derive(Debug)]
pub struct ShardedView {
    /// Number of tasks.
    pub n: usize,
    /// Number of workers.
    pub m: usize,
    /// Number of choices ℓ.
    pub l: usize,
    /// Shard directory: task boundaries, `starts[s]..starts[s + 1]` is
    /// shard `s`'s global task range.
    starts: Vec<usize>,
    /// Global answer offset of each shard in canonical task-major order
    /// (`entry_offsets[s]..entry_offsets[s + 1]` indexes shard `s`'s
    /// answers in any answer-major buffer).
    entry_offsets: Vec<usize>,
    shards: Vec<ShardData>,
    /// Golden clamp per global task.
    golden: Vec<Option<u8>>,
}

impl ShardedView {
    /// Slice an existing flat view into `shard_count` task-range shards.
    /// Task rows are copied verbatim; worker rows are re-derived in the
    /// canonical task-ascending order.
    pub fn from_cat(cat: &Cat, shard_count: usize) -> Self {
        let starts = shard_starts(cat.n, shard_count);
        let shards: Vec<ShardData> = starts
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                let counts: Vec<u32> = (start..end).map(|t| cat.task_len(t) as u32).collect();
                let task_adj = Csr::from_triples_counted(
                    &counts,
                    (start..end).flat_map(|t| {
                        cat.task_row(t)
                            .iter()
                            .map(move |&(worker, label)| (t - start, worker, label))
                    }),
                );
                ShardData::from_task_adj(start, cat.m, task_adj)
            })
            .collect();
        let mut view = Self {
            n: cat.n,
            m: cat.m,
            l: cat.l,
            starts,
            entry_offsets: Vec::new(),
            shards,
            golden: cat.golden.clone(),
        };
        view.refresh_entry_offsets();
        view
    }

    /// Build directly from a `(task, worker, label)` record stream in
    /// **one pass** — the iterator is consumed once (no `Clone` bound)
    /// and the full log is never materialised as a single allocation:
    /// records are bucketed per shard with per-task degree counting,
    /// then each shard builds its CSRs via the counted constructor.
    ///
    /// Within each task, record order is preserved, so a view streamed
    /// from a task-grouped log is entry-identical to
    /// [`ShardedView::from_cat`] over the equivalent flat view.
    ///
    /// # Panics
    /// Panics on any out-of-range record (task ≥ `n`, worker ≥ `m`,
    /// label ≥ `l`) — same fail-fast contract as [`Cat::from_parts`].
    pub fn from_records(
        n: usize,
        m: usize,
        l: usize,
        shard_count: usize,
        records: impl Iterator<Item = (u32, u32, u8)>,
        golden: Vec<Option<u8>>,
    ) -> Self {
        assert_eq!(golden.len(), n, "golden vector length");
        let starts = shard_starts(n, shard_count);
        let num_shards = starts.len() - 1;
        let mut buffers: Vec<Vec<(u32, u32, u8)>> = vec![Vec::new(); num_shards];
        let mut counts: Vec<Vec<u32>> =
            starts.windows(2).map(|w| vec![0u32; w[1] - w[0]]).collect();
        for (task, worker, label) in records {
            let (t, w) = (task as usize, worker as usize);
            assert!(t < n, "record task {t} ≥ {n}");
            assert!(w < m, "record worker {w} ≥ {m}");
            assert!((label as usize) < l, "record label {label} ≥ {l}");
            let s = shard_of(&starts, t);
            counts[s][t - starts[s]] += 1;
            buffers[s].push((task, worker, label));
        }
        let shards: Vec<ShardData> = buffers
            .into_iter()
            .zip(&counts)
            .enumerate()
            .map(|(s, (buf, counts))| {
                let start = starts[s];
                let task_adj = Csr::from_triples_counted(
                    counts,
                    buf.into_iter()
                        .map(|(task, worker, label)| (task as usize - start, worker, label)),
                );
                ShardData::from_task_adj(start, m, task_adj)
            })
            .collect();
        let mut view = Self {
            n,
            m,
            l,
            starts,
            entry_offsets: Vec::new(),
            shards,
            golden,
        };
        view.refresh_entry_offsets();
        view
    }

    fn refresh_entry_offsets(&mut self) {
        self.entry_offsets.clear();
        self.entry_offsets.push(0);
        let mut at = 0usize;
        for shard in &self.shards {
            at += shard.task_adj.num_entries();
            self.entry_offsets.push(at);
        }
    }

    /// Rebuild one shard from its current records — the streaming
    /// dirty-shard path: `StreamEngine` buckets the answer log per dirty
    /// shard and rebuilds only those, leaving clean shards untouched.
    /// `records` must hold **every** answer in the shard's task range
    /// (global coordinates), in the desired within-task order.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or any record falls outside the
    /// shard's task range (or out of the view's worker/label ranges).
    pub fn rebuild_shard(&mut self, shard: usize, records: &[(u32, u32, u8)]) {
        let (start, end) = (self.starts[shard], self.starts[shard + 1]);
        let mut counts = vec![0u32; end - start];
        for &(task, worker, label) in records {
            let t = task as usize;
            assert!(
                (start..end).contains(&t),
                "record task {t} outside shard {shard} range {start}..{end}"
            );
            assert!(
                (worker as usize) < self.m,
                "record worker {worker} ≥ {}",
                self.m
            );
            assert!(
                (label as usize) < self.l,
                "record label {label} ≥ {}",
                self.l
            );
            counts[t - start] += 1;
        }
        let task_adj = Csr::from_triples_counted(
            &counts,
            records
                .iter()
                .map(|&(task, worker, label)| (task as usize - start, worker, label)),
        );
        self.shards[shard] = ShardData::from_task_adj(start, self.m, task_adj);
        self.refresh_entry_offsets();
        obs_dirty_rebuilds().inc();
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard directory: `num_shards() + 1` task boundaries.
    pub fn directory(&self) -> &[usize] {
        &self.starts
    }

    /// Shard `s`'s global task range.
    pub fn shard_tasks(&self, s: usize) -> Range<usize> {
        self.starts[s]..self.starts[s + 1]
    }

    /// The shard holding global task `t`.
    pub fn shard_for_task(&self, t: usize) -> usize {
        shard_of(&self.starts, t)
    }

    /// Answers in shard `s`.
    pub fn shard_num_answers(&self, s: usize) -> usize {
        self.shards[s].task_adj.num_entries()
    }

    /// Global answer offset of shard `s` in canonical task-major order —
    /// the cursor base for answer-major scratch buffers (GLAD's σ/log
    /// tables).
    pub fn shard_entry_offset(&self, s: usize) -> usize {
        self.entry_offsets[s]
    }

    /// Task row for **local** task `local` of shard `s` (`(worker,
    /// label)` entries, record order).
    #[inline]
    pub fn shard_task_row(&self, s: usize, local: usize) -> &[(u32, u8)] {
        self.shards[s].task_adj.row(local)
    }

    /// Worker `w`'s answers within shard `s` (`(global task, label)`
    /// entries, task-ascending).
    #[inline]
    pub fn shard_worker_row(&self, s: usize, w: usize) -> &[(u32, u8)] {
        self.shards[s].worker_adj.row(w)
    }

    /// Total answers in the view (`|V|`).
    pub fn num_answers(&self) -> usize {
        *self.entry_offsets.last().unwrap()
    }

    /// Number of answers on global task `t`.
    pub fn task_len(&self, t: usize) -> usize {
        let s = self.shard_for_task(t);
        self.shards[s].task_adj.row_len(t - self.starts[s])
    }

    /// Number of answers by worker `w` (summed over shards).
    pub fn worker_len(&self, w: usize) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.worker_adj.row_len(w))
            .sum()
    }

    /// Golden clamps per global task.
    pub fn golden(&self) -> &[Option<u8>] {
        &self.golden
    }

    /// Maximum per-task answer count, combined across shards with the
    /// deterministic pairwise [`exec::tree_reduce`] (max is exact, so
    /// the combine shape cannot change the result).
    pub fn max_task_degree(&self) -> usize {
        let per_shard: Vec<usize> = self
            .shards
            .iter()
            .map(|shard| {
                (0..shard.task_adj.num_rows())
                    .map(|local| shard.task_adj.row_len(local))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        exec::tree_reduce(per_shard, usize::max).unwrap_or(0)
    }

    /// Soft majority-vote posteriors — same per-task arithmetic as
    /// [`Cat::majority_posteriors`], walked shard-by-shard, so the
    /// result is bit-identical at any shard count.
    pub fn majority_posteriors(&self) -> DMat {
        let mut post = DMat::zeros(self.n, self.l);
        for s in 0..self.num_shards() {
            let start = self.starts[s];
            for task in self.shard_tasks(s) {
                if let Some(g) = self.golden[task] {
                    post[(task, g as usize)] = 1.0;
                    continue;
                }
                let row = self.shard_task_row(s, task - start);
                if row.is_empty() {
                    post.row_mut(task).fill(1.0 / self.l as f64);
                    continue;
                }
                for &(_, label) in row {
                    post[(task, label as usize)] += 1.0;
                }
                post.row_normalize(task);
            }
        }
        post
    }

    /// Clamp golden tasks in a posterior matrix (delta at the truth).
    pub fn clamp_golden(&self, post: &mut DMat) {
        for (task, g) in self.golden.iter().enumerate() {
            if let Some(truth) = g {
                let row = post.row_mut(task);
                row.fill(0.0);
                row[*truth as usize] = 1.0;
            }
        }
    }

    /// Decode MAP labels from posteriors with seeded tie-breaking — same
    /// RNG consumption pattern as [`Cat::decode`].
    pub fn decode(&self, post: &DMat, rng: &mut StdRng) -> Vec<u8> {
        (0..self.n)
            .map(|task| decode_row(post.row(task), rng))
            .collect()
    }

    /// Flatten back into an unsharded [`Cat`] — the compatibility shim
    /// for methods without a native sharded path (`Mv` in the streaming
    /// set). Task rows concatenate verbatim; worker rows come out in the
    /// canonical task-ascending order.
    pub fn flatten(&self) -> Cat {
        let task_counts: Vec<u32> = (0..self.n).map(|t| self.task_len(t) as u32).collect();
        let task_adj = Csr::from_triples_counted(
            &task_counts,
            (0..self.num_shards()).flat_map(|s| {
                let start = self.starts[s];
                self.shard_tasks(s).flat_map(move |task| {
                    self.shard_task_row(s, task - start)
                        .iter()
                        .map(move |&(worker, label)| (task, worker, label))
                })
            }),
        );
        let worker_counts: Vec<u32> = (0..self.m).map(|w| self.worker_len(w) as u32).collect();
        let worker_adj = Csr::from_triples_counted(
            &worker_counts,
            (0..self.num_shards()).flat_map(|s| {
                (0..self.m).flat_map(move |w| {
                    self.shard_worker_row(s, w)
                        .iter()
                        .map(move |&(task, label)| (w, task, label))
                })
            }),
        );
        Cat::from_parts(
            self.n,
            self.m,
            self.l,
            task_adj,
            worker_adj,
            self.golden.clone(),
        )
    }
}

/// Locate the shard containing task `t` in a monotone directory
/// (`partition_point` handles empty shards: the returned range always
/// contains `t`).
fn shard_of(starts: &[usize], t: usize) -> usize {
    debug_assert!(t < *starts.last().unwrap());
    starts.partition_point(|&s| s <= t) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::InferenceOptions;
    use crowd_data::{DatasetBuilder, TaskType};

    fn ragged_cat() -> Cat {
        let mut b = DatasetBuilder::new("shard", TaskType::SingleChoice { choices: 3 }, 7, 4);
        // Task-by-task fill with uneven degrees and gaps (task 3 empty).
        b.add_label(0, 0, 0).unwrap();
        b.add_label(0, 1, 1).unwrap();
        b.add_label(0, 2, 0).unwrap();
        b.add_label(1, 3, 2).unwrap();
        b.add_label(2, 0, 1).unwrap();
        b.add_label(2, 3, 1).unwrap();
        b.add_label(4, 1, 2).unwrap();
        b.add_label(5, 0, 0).unwrap();
        b.add_label(5, 2, 2).unwrap();
        b.add_label(6, 3, 0).unwrap();
        let d = b.build();
        Cat::build("test", &d, &InferenceOptions::default(), false).unwrap()
    }

    #[test]
    fn directory_splits_evenly_and_handles_boundaries() {
        assert_eq!(shard_starts(7, 2), vec![0, 4, 7]);
        assert_eq!(shard_starts(7, 7), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // More shards than tasks: tail shards are empty ranges.
        assert_eq!(shard_starts(3, 5), vec![0, 1, 2, 3, 3, 3]);
        // Zero is clamped to one shard.
        assert_eq!(shard_starts(4, 0), vec![0, 4]);
        assert_eq!(shard_starts(0, 3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn from_cat_preserves_rows_and_canonicalizes_workers() {
        let cat = ragged_cat();
        for shards in [1, 2, 3, 7, 11] {
            let view = ShardedView::from_cat(&cat, shards);
            assert_eq!(view.num_answers(), cat.num_answers());
            assert_eq!(view.max_task_degree(), 3);
            // Task rows are verbatim slices.
            for t in 0..cat.n {
                let s = view.shard_for_task(t);
                assert_eq!(
                    view.shard_task_row(s, t - view.shard_tasks(s).start),
                    cat.task_row(t),
                    "task {t} at {shards} shards"
                );
                assert_eq!(view.task_len(t), cat.task_len(t));
            }
            // Concatenated worker rows are the task-ascending canonical
            // order (the builder filled task-by-task, so this equals the
            // flat worker rows).
            for w in 0..cat.m {
                let mut concat: Vec<(u32, u8)> = Vec::new();
                for s in 0..view.num_shards() {
                    concat.extend_from_slice(view.shard_worker_row(s, w));
                }
                assert_eq!(concat, cat.worker_row(w), "worker {w} at {shards} shards");
                assert_eq!(view.worker_len(w), cat.worker_len(w));
            }
        }
    }

    #[test]
    fn streamed_build_matches_sliced_build() {
        let cat = ragged_cat();
        let records: Vec<(u32, u32, u8)> = (0..cat.n)
            .flat_map(|t| {
                cat.task_row(t)
                    .iter()
                    .map(move |&(w, label)| (t as u32, w, label))
            })
            .collect();
        for shards in [1, 2, 5, 9] {
            let sliced = ShardedView::from_cat(&cat, shards);
            let streamed = ShardedView::from_records(
                cat.n,
                cat.m,
                cat.l,
                shards,
                records.iter().copied(),
                vec![None; cat.n],
            );
            for s in 0..sliced.num_shards() {
                let start = sliced.shard_tasks(s).start;
                for t in sliced.shard_tasks(s) {
                    assert_eq!(
                        sliced.shard_task_row(s, t - start),
                        streamed.shard_task_row(s, t - start)
                    );
                }
                for w in 0..cat.m {
                    assert_eq!(
                        sliced.shard_worker_row(s, w),
                        streamed.shard_worker_row(s, w)
                    );
                }
            }
            assert_eq!(sliced.directory(), streamed.directory());
        }
    }

    #[test]
    fn majority_posteriors_bit_identical_to_flat() {
        let cat = ragged_cat();
        let flat = cat.majority_posteriors();
        for shards in [1, 2, 7, 16] {
            let view = ShardedView::from_cat(&cat, shards);
            let sharded = view.majority_posteriors();
            assert_eq!(
                flat.data()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<u64>>(),
                sharded
                    .data()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<u64>>(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn flatten_round_trips_through_cat() {
        let cat = ragged_cat();
        let view = ShardedView::from_cat(&cat, 3);
        let back = view.flatten();
        assert_eq!(back.n, cat.n);
        assert_eq!(back.num_answers(), cat.num_answers());
        for t in 0..cat.n {
            assert_eq!(back.task_row(t), cat.task_row(t));
        }
        // Worker rows come back task-ascending — equal to the flat rows
        // on this task-grouped log.
        for w in 0..cat.m {
            assert_eq!(back.worker_row(w), cat.worker_row(w));
        }
    }

    #[test]
    fn rebuild_shard_swaps_one_range_only() {
        let cat = ragged_cat();
        let mut view = ShardedView::from_cat(&cat, 3);
        // Shard 1 covers tasks 3..5 (ceil split of 7 into 3: [0,3,5,7]).
        let range = view.shard_tasks(1);
        // Replace shard 1's content: task 4 now has two answers.
        let records = vec![(4u32, 0u32, 1u8), (4, 3, 1)];
        assert!(records.iter().all(|r| range.contains(&(r.0 as usize))));
        view.rebuild_shard(1, &records);
        assert_eq!(view.task_len(4), 2);
        assert_eq!(view.task_len(3), 0);
        // Other shards untouched.
        assert_eq!(view.shard_task_row(0, 0), cat.task_row(0));
        assert_eq!(view.task_len(6), cat.task_len(6));
        // Entry offsets re-derived.
        assert_eq!(
            view.num_answers(),
            cat.num_answers() - cat.task_len(3) - cat.task_len(4) + 2
        );
        // Canonical worker rows reflect the swap.
        assert_eq!(view.shard_worker_row(1, 0), &[(4u32, 1u8)]);
    }

    #[test]
    #[should_panic(expected = "outside shard")]
    fn rebuild_shard_rejects_out_of_range_records() {
        let cat = ragged_cat();
        let mut view = ShardedView::from_cat(&cat, 3);
        view.rebuild_shard(1, &[(0, 0, 0)]);
    }
}
