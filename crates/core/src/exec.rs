//! The shared parallel execution backend.
//!
//! One thread-pool-free executor used by the method hot loops (worker-level
//! M-step fan-out), the experiment harness (repeat-level fan-out), and the
//! bench crate. Built on `std::thread::scope` — no external dependency —
//! with work-stealing over an atomic cursor so uneven job costs do not
//! serialise a batch.
//!
//! Two entry points:
//!
//! - [`parallel_map`]: run `n` heterogeneous closures, preserving output
//!   order — the repeat/sweep pattern.
//! - [`parallel_chunks`]: split one contiguous `&mut [T]` into fixed-size
//!   chunks and process each `(chunk_index, chunk)` — the pattern for
//!   fanning a flat-matrix M-step out across workers without aliasing.
//!
//! Both fall back to inline execution when `threads <= 1` or the job count
//! is 1, so callers can gate parallelism by problem size and keep small
//! runs allocation-free and deterministic in cost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `jobs` closures across at most `threads` OS threads, preserving
/// output order. Panics in a job propagate to the caller.
pub fn parallel_map<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Work-stealing by atomic cursor over the job list.
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job mutex")
                    .take()
                    .expect("job taken once");
                let out = job();
                *results[i].lock().expect("result mutex") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex")
                .expect("every job ran")
        })
        .collect()
}

/// Split `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and run `f(chunk_index, chunk)` for each, using at
/// most `threads` OS threads. Chunks are disjoint, so `f` may freely write.
///
/// With `threads <= 1` this degenerates to a plain loop with **zero heap
/// allocation**, which is what the allocation-free method hot loops rely
/// on when they gate fan-out by problem size.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    // Hand each thread a striped share of the chunk iterator up front;
    // chunk costs are uniform in the M-step use case, so striping balances
    // without a shared cursor over &mut aliasing.
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
        let mut shares: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
        for (k, item) in chunks.into_iter().enumerate() {
            shares[k % threads].push(item);
        }
        for share in shares {
            let f = &f;
            scope.spawn(move || {
                for (i, chunk) in share {
                    f(i, chunk);
                }
            });
        }
    });
}

/// A sensible thread count for CPU-bound fan-out: the machine's available
/// parallelism, `1` when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        assert!(parallel_map(4, empty).is_empty());
        let one: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(parallel_map(8, one), vec![42]);
    }

    #[test]
    fn map_serial_path_matches_parallel() {
        let mk = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..33usize).map(|i| Box::new(move || i + 1) as _).collect()
        };
        assert_eq!(parallel_map(1, mk()), parallel_map(7, mk()));
    }

    #[test]
    fn chunks_cover_all_elements_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            parallel_chunks(threads, &mut data, 10, |i, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
            // Every element written exactly once, with its chunk index.
            for (pos, &x) in data.iter().enumerate() {
                assert_eq!(x, 1 + (pos / 10) as u32, "pos {pos} threads {threads}");
            }
        }
    }

    #[test]
    fn chunks_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        parallel_chunks(4, &mut data, 3, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
