//! The shared parallel execution backend.
//!
//! One executor used by the method hot loops (worker-level M-step
//! fan-out), the experiment harness (repeat-level fan-out), and the bench
//! crate. Work is dispatched to a **persistent worker pool** — threads
//! are spawned once, parked on a condvar between batches, and woken per
//! fan-out — so dispatching a batch costs a few microseconds instead of
//! the ~100µs a fresh `std::thread::scope` spawn costs. That is what lets
//! the E/M fan-out thresholds sit an order of magnitude lower than in the
//! scope-spawn design (see `PARALLEL_*_MIN_WORK` in `methods/ds.rs`).
//!
//! Two entry points:
//!
//! - [`parallel_map`]: run `n` heterogeneous closures, preserving output
//!   order — the repeat/sweep pattern.
//! - [`parallel_chunks`]: split one contiguous `&mut [T]` into fixed-size
//!   chunks and process each `(chunk_index, chunk)` — the pattern for
//!   fanning a flat-matrix M-step out across workers without aliasing.
//!
//! Both steal work over an atomic cursor so uneven job costs do not
//! serialise a batch, and both fall back to inline execution when
//! `threads <= 1` or the job count is 1, so callers can gate parallelism
//! by problem size and keep small runs allocation-free and deterministic
//! in cost.
//!
//! Thread budget: [`default_threads`] is the machine's available
//! parallelism, capped by the **`CROWD_THREADS`** environment variable
//! when set (deployments use it to bound parallelism without code
//! changes).
//!
//! Nesting: a fan-out issued from inside a pool batch (e.g. a method's
//! internal E-step fan-out while the experiment harness is already
//! fanning repeats out) runs inline on the calling thread instead of
//! re-entering the pool — the machine is already saturated, and inline
//! execution is exactly the serial path whose outputs are bit-identical.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Observability handles (`core.pool.*`), cached per site so the registry
// map lock is paid once per process, not per dispatch.
// ---------------------------------------------------------------------------

fn obs_submits() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("core.pool.submits_total"))
}

fn obs_batches() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("core.pool.batches_total"))
}

fn obs_inline_batches() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("core.pool.inline_batches_total"))
}

fn obs_queue_depth() -> &'static crowd_obs::Gauge {
    static H: OnceLock<crowd_obs::Gauge> = OnceLock::new();
    H.get_or_init(|| crowd_obs::gauge("core.pool.queue_depth"))
}

fn obs_jobs_in_flight() -> &'static crowd_obs::Gauge {
    static H: OnceLock<crowd_obs::Gauge> = OnceLock::new();
    H.get_or_init(|| crowd_obs::gauge("core.pool.jobs_in_flight"))
}

fn obs_dispatch_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("core.pool.dispatch_seconds"))
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A batch job: a lifetime-erased pointer to the caller's `Fn() + Sync`
/// closure. The erasure is sound because [`WorkerPool::run_batch`] does
/// not return until every worker that entered the batch has left it, so
/// the pointee outlives every dereference.
struct JobPtr(*const (dyn Fn() + Sync));
// Safety: the pointer is only dereferenced between batch open and batch
// close, a window during which the submitting thread keeps the closure
// alive (see `run_batch`).
unsafe impl Send for JobPtr {}

/// A free-standing job submitted from any thread via
/// [`WorkerPool::submit`], paired with the ticket its completion is
/// reported through.
struct QueuedJob {
    job: Box<dyn FnOnce() + Send>,
    ticket: Arc<TicketInner>,
    /// Enqueue instant for the `core.pool.dispatch_seconds` queue-time
    /// histogram; `None` while recording is disabled (no clock read).
    queued_at: Option<Instant>,
}

/// Shared state behind a [`JobTicket`].
struct TicketInner {
    state: Mutex<TicketState>,
    done: Condvar,
}

enum TicketState {
    Pending,
    Finished(JobOutcome),
    /// The outcome was already taken by `join`.
    Taken,
}

/// How a submitted job ended.
#[derive(Debug)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed,
    /// The job panicked; the payload is returned to the submitter instead
    /// of poisoning the pool.
    Panicked(Box<dyn std::any::Any + Send>),
    /// The pool shut down before the job was started.
    Cancelled,
}

/// Completion handle for a job submitted with [`WorkerPool::submit`].
///
/// Unlike [`WorkerPool::run_batch`], a panic in a submitted job is *not*
/// re-raised on the submitting thread — it is delivered here as
/// [`JobOutcome::Panicked`], so one failing job cannot take down the
/// submitter or its sibling jobs (the isolation the multi-session serve
/// layer is built on).
pub struct JobTicket(Arc<TicketInner>);

impl JobTicket {
    fn new() -> (Self, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            state: Mutex::new(TicketState::Pending),
            done: Condvar::new(),
        });
        (Self(Arc::clone(&inner)), inner)
    }

    /// Block until the job has finished (or was cancelled) and return how
    /// it ended.
    pub fn join(self) -> JobOutcome {
        let mut st = self.0.state.lock().expect("ticket state");
        loop {
            match std::mem::replace(&mut *st, TicketState::Taken) {
                TicketState::Pending => {
                    *st = TicketState::Pending;
                    st = self.0.done.wait(st).expect("ticket wait");
                }
                TicketState::Finished(outcome) => return outcome,
                TicketState::Taken => unreachable!("ticket joined twice"),
            }
        }
    }
}

fn finish_ticket(ticket: &TicketInner, outcome: JobOutcome) {
    *ticket.state.lock().expect("ticket state") = TicketState::Finished(outcome);
    ticket.done.notify_all();
}

/// How a typed submitted job failed (the error half of
/// [`TypedTicket::join`]).
#[derive(Debug)]
pub enum JobError {
    /// The job panicked; the payload is returned to the submitter instead
    /// of poisoning the pool.
    Panicked(Box<dyn std::any::Any + Send>),
    /// The pool shut down before the job was started.
    Cancelled,
}

impl JobError {
    /// Best-effort human-readable panic message (`"cancelled"` for
    /// [`JobError::Cancelled`]). Panic payloads are `&str` or `String` in
    /// practice; anything else renders as a placeholder.
    pub fn message(&self) -> String {
        match self {
            Self::Cancelled => "cancelled".to_string(),
            Self::Panicked(payload) => payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        }
    }
}

/// Completion handle for a job submitted with
/// [`WorkerPool::submit_with_result`]: a [`JobTicket`] plus the slot the
/// job's return value lands in, so callers stop hand-rolling
/// `Arc<Mutex<Option<T>>>` result plumbing around [`WorkerPool::submit`].
pub struct TypedTicket<T> {
    ticket: JobTicket,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> TypedTicket<T> {
    /// Block until the job has finished and return its value. A panic in
    /// the job is **not** re-raised here — it comes back as
    /// [`JobError::Panicked`] with the payload, preserving the submit
    /// path's isolation guarantee.
    pub fn join(self) -> Result<T, JobError> {
        match self.ticket.join() {
            JobOutcome::Completed => Ok(self
                .slot
                .lock()
                .expect("typed result slot")
                .take()
                .expect("completed job stored its result")),
            JobOutcome::Panicked(payload) => Err(JobError::Panicked(payload)),
            JobOutcome::Cancelled => Err(JobError::Cancelled),
        }
    }
}

/// Mutex-protected pool state.
struct PoolState {
    /// Bumped once per batch so parked workers can tell a new batch from
    /// a spurious wake-up.
    generation: u64,
    /// The open batch's job; `None` once the batch is closed to new
    /// entrants (or no batch is running).
    job: Option<JobPtr>,
    /// Worker entry slots remaining in the open batch.
    quota: usize,
    /// Workers currently executing the job.
    running: usize,
    /// Workers currently executing free-standing queued jobs (kept apart
    /// from `running` so a long submitted job never stalls a batch
    /// submitter's drain wait).
    queued_running: usize,
    /// First panic payload caught from a worker in this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Free-standing jobs submitted from any thread ([`WorkerPool::submit`]),
    /// drained by parked workers between batches (batches take priority).
    queue: VecDeque<QueuedJob>,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work: Condvar,
    /// The submitter parks here while enrolled workers finish.
    done: Condvar,
}

/// A pool of persistent worker threads executing fan-out batches.
///
/// Threads are spawned lazily up to the requested batch width and then
/// reused for every later batch: waking a parked worker is a
/// condvar-notify, not a thread spawn. One batch runs at a time per pool
/// (a submission mutex serialises concurrent submitters); the submitting
/// thread always participates in its own batch, so a pool with zero
/// spawned workers still makes progress.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    /// Serialises batches from concurrent submitting threads.
    submission: Mutex<()>,
    /// Spawned worker handles (guarded by `submission` during growth).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Hard cap on spawned workers.
    max_workers: usize,
}

thread_local! {
    /// Set while the current thread is executing inside a pool batch
    /// (either as a pool worker or as a submitting participant); nested
    /// fan-outs check it and run inline.
    static IN_BATCH: Cell<bool> = const { Cell::new(false) };
}

/// Sets the thread-local batch flag and restores the *previous* value on
/// drop (even if the job panics) — restoring rather than clearing keeps
/// the flag correct across arbitrarily deep nested inline fan-outs.
struct BatchFlagGuard {
    prev: bool,
}

impl BatchFlagGuard {
    fn enter() -> Self {
        let prev = IN_BATCH.with(|f| f.replace(true));
        BatchFlagGuard { prev }
    }
}

impl Drop for BatchFlagGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_BATCH.with(|f| f.set(prev));
    }
}

impl WorkerPool {
    /// A pool that will spawn at most `max_workers` persistent threads
    /// (spawned lazily as batches request them).
    pub fn new(max_workers: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    generation: 0,
                    job: None,
                    quota: 0,
                    running: 0,
                    queued_running: 0,
                    panic: None,
                    queue: VecDeque::new(),
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            submission: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
            max_workers,
        }
    }

    /// Workers spawned so far.
    pub fn spawned_workers(&self) -> usize {
        self.handles.lock().expect("pool handles").len()
    }

    /// Free-standing jobs submitted via [`WorkerPool::submit`]/
    /// [`WorkerPool::submit_with_result`] that are queued but not yet
    /// started. Cheap (one short mutex acquire); the live signal behind
    /// the `core.pool.queue_depth` gauge.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("pool state").queue.len()
    }

    /// Free-standing jobs currently executing on pool workers.
    pub fn jobs_in_flight(&self) -> usize {
        self.inner.state.lock().expect("pool state").queued_running
    }

    /// Workers currently executing inside an open fan-out batch.
    pub fn batch_workers_running(&self) -> usize {
        self.inner.state.lock().expect("pool state").running
    }

    /// Whether the pool is fully quiescent: no queued jobs, no running
    /// jobs, no batch in flight. Liveness probe for tests and drains.
    pub fn is_idle(&self) -> bool {
        let st = self.inner.state.lock().expect("pool state");
        st.queue.is_empty() && st.queued_running == 0 && st.running == 0 && st.job.is_none()
    }

    /// Run `job` on the calling thread plus up to `extra_workers` pool
    /// threads, returning once every participant has finished. The job is
    /// expected to do its own work splitting (the callers here steal over
    /// an atomic cursor), so launching more participants than there is
    /// work is harmless.
    ///
    /// A panic in any participant is re-raised on the calling thread
    /// after the batch has fully drained (so no worker still references
    /// the caller's stack).
    ///
    /// Called from inside another batch (nested fan-out), this degrades
    /// to `job()` inline on the calling thread.
    pub fn run_batch(&self, extra_workers: usize, job: &(dyn Fn() + Sync)) {
        if extra_workers == 0 || IN_BATCH.with(|f| f.get()) {
            // The fan-out decision that ran inline (nested fan-out or no
            // extra workers) — the signal for tuning the `PARALLEL_*`
            // size gates.
            obs_inline_batches().inc();
            let _guard = BatchFlagGuard::enter();
            job();
            return;
        }
        obs_batches().inc();
        // Poison-tolerant: the guard protects no data (it only serialises
        // batches), and a panic from a *previous* batch's job must not
        // disable the pool for the rest of a long-lived process.
        let submission = self
            .submission
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let extra_workers = extra_workers.min(self.max_workers);
        self.ensure_workers(extra_workers);

        // Open the batch.
        {
            let mut st = self.inner.state.lock().expect("pool state");
            st.generation = st.generation.wrapping_add(1);
            // The transmute erases the borrow's lifetime from the fat
            // pointer; it is dereferenced only before this function
            // observes `running == 0` with the batch closed, below.
            let raw: *const (dyn Fn() + Sync) = unsafe {
                std::mem::transmute::<
                    *const (dyn Fn() + Sync + '_),
                    *const (dyn Fn() + Sync + 'static),
                >(job)
            };
            st.job = Some(JobPtr(raw));
            st.quota = extra_workers;
            st.panic = None;
            self.inner.work.notify_all();
        }

        // The submitter participates in its own batch.
        let caller_result = {
            let _guard = BatchFlagGuard::enter();
            std::panic::catch_unwind(AssertUnwindSafe(job))
        };

        // Close the batch to new entrants and drain the enrolled workers.
        let worker_panic = {
            let mut st = self.inner.state.lock().expect("pool state");
            st.job = None;
            st.quota = 0;
            while st.running > 0 {
                st = self.inner.done.wait(st).expect("pool done wait");
            }
            st.panic.take()
        };

        // Release the submission lock *before* re-raising so a propagated
        // job panic cannot poison it — the pool must stay usable after a
        // caller catches the panic.
        drop(submission);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Submit a free-standing job from any thread. The job is queued and
    /// picked up by a parked pool worker (batch fan-outs keep priority);
    /// the returned [`JobTicket`] reports completion, panic, or
    /// cancellation. The submitting thread does **not** participate —
    /// this is the fire-and-join path the multi-session serve layer
    /// drains its shards through, where the submitter goes on to submit
    /// the next shard's job instead of working.
    ///
    /// Jobs run with the nested-fan-out flag set, so any `parallel_map`/
    /// `parallel_chunks` issued from inside a submitted job executes
    /// inline on that worker — submitted jobs are the unit of
    /// parallelism, and their outputs stay bit-identical to inline
    /// execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> JobTicket {
        let (ticket, inner) = JobTicket::new();
        // At least one worker must exist to drain the queue; scale with
        // demand up to the cap so concurrent submitters actually run
        // concurrently.
        {
            let mut st = self.inner.state.lock().expect("pool state");
            if st.shutdown {
                drop(st);
                finish_ticket(&inner, JobOutcome::Cancelled);
                return ticket;
            }
            st.queue.push_back(QueuedJob {
                job: Box::new(job),
                ticket: Arc::clone(&inner),
                queued_at: crowd_obs::enabled().then(Instant::now),
            });
            obs_submits().inc();
            obs_queue_depth().set(st.queue.len() as i64);
            let demand = st.queue.len() + st.queued_running;
            drop(st);
            self.ensure_workers(demand);
        }
        self.inner.work.notify_all();
        ticket
    }

    /// [`WorkerPool::submit`] for jobs that return a value: the result is
    /// stored behind the returned [`TypedTicket`] and handed back by
    /// [`TypedTicket::join`], with panics delivered as
    /// [`JobError::Panicked`] rather than unwinding the submitter.
    pub fn submit_with_result<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> TypedTicket<T> {
        let slot = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        let ticket = self.submit(move || {
            let value = job();
            *out.lock().expect("typed result slot") = Some(value);
        });
        TypedTicket { ticket, slot }
    }

    /// Spawn workers until `target` are available (bounded by
    /// `max_workers`). Growth is serialised by the `handles` mutex.
    fn ensure_workers(&self, target: usize) {
        let mut handles = self.handles.lock().expect("pool handles");
        let target = target.min(self.max_workers);
        while handles.len() < target {
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name("crowd-exec-worker".into())
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            handles.push(handle);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let orphans = {
            let mut st = self.inner.state.lock().expect("pool state");
            st.shutdown = true;
            self.inner.work.notify_all();
            std::mem::take(&mut st.queue)
        };
        // Jobs never started are cancelled, not dropped silently — their
        // tickets must complete or a joiner would hang forever.
        for q in orphans {
            finish_ticket(&q.ticket, JobOutcome::Cancelled);
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    let _guard = BatchFlagGuard::enter(); // workers only ever run batch jobs
    let mut seen = 0u64;
    let mut st = inner.state.lock().expect("pool state");
    loop {
        if st.shutdown {
            return;
        }
        if st.generation != seen {
            seen = st.generation;
            if st.quota > 0 {
                if let Some(job) = &st.job {
                    let job = job.0;
                    st.quota -= 1;
                    st.running += 1;
                    drop(st);
                    // Safety: `run_batch` keeps the closure alive until
                    // `running` returns to zero, which happens strictly
                    // after this call returns.
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                        (*job)();
                    }));
                    st = inner.state.lock().expect("pool state");
                    st.running -= 1;
                    if let Err(payload) = result {
                        if st.panic.is_none() {
                            st.panic = Some(payload);
                        }
                    }
                    if st.running == 0 {
                        inner.done.notify_all();
                    }
                    // Re-check immediately: the next batch may already be
                    // open.
                    continue;
                }
            }
        }
        // No batch to join — drain the free-standing job queue. A panic
        // is delivered through the job's ticket (not stored in the batch
        // panic slot), so one submitted job cannot poison a batch or a
        // sibling job.
        if let Some(q) = st.queue.pop_front() {
            st.queued_running += 1;
            obs_queue_depth().set(st.queue.len() as i64);
            obs_jobs_in_flight().set(st.queued_running as i64);
            drop(st);
            if let Some(t0) = q.queued_at {
                obs_dispatch_seconds().record(t0.elapsed().as_secs_f64());
            }
            let result = std::panic::catch_unwind(AssertUnwindSafe(q.job));
            finish_ticket(
                &q.ticket,
                match result {
                    Ok(()) => JobOutcome::Completed,
                    Err(payload) => JobOutcome::Panicked(payload),
                },
            );
            st = inner.state.lock().expect("pool state");
            st.queued_running -= 1;
            obs_jobs_in_flight().set(st.queued_running as i64);
            continue;
        }
        st = inner.work.wait(st).expect("pool work wait");
    }
}

/// The process-wide pool shared by [`parallel_map`] and
/// [`parallel_chunks`]. Sized to the machine (workers spawn lazily, so an
/// all-serial workload never spawns any).
fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    // Workers spawn lazily per the largest batch actually requested, so a
    // generous cap costs nothing on machines (or workloads) that never
    // ask for it; 256 is a runaway backstop, not a tuning knob. Explicit
    // thread requests above the hardware count (e.g. CROWD_THREADS=16 on
    // 4 cores, for IO-ish jobs) get real threads up to the cap.
    POOL.get_or_init(|| WorkerPool::new(256))
}

// ---------------------------------------------------------------------------
// Fan-out entry points.
// ---------------------------------------------------------------------------

/// Run `jobs` closures across at most `threads` OS threads, preserving
/// output order. Panics in a job propagate to the caller.
pub fn parallel_map<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Work-stealing by atomic cursor over the job list.
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let job = queue[i]
            .lock()
            .expect("job mutex")
            .take()
            .expect("job taken once");
        let out = job();
        *results[i].lock().expect("result mutex") = Some(out);
    };
    global_pool().run_batch(threads - 1, &worker);

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex")
                .expect("every job ran")
        })
        .collect()
}

/// Raw base pointer of a chunked buffer, sendable to pool workers. The
/// chunk-stealing cursor hands each chunk index to exactly one worker, so
/// all derived slices are disjoint.
struct ChunkBase<T>(*mut T);
unsafe impl<T: Send> Send for ChunkBase<T> {}
unsafe impl<T: Send> Sync for ChunkBase<T> {}

impl<T> ChunkBase<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare `*mut T` (edition-2021 closures
    /// capture disjoint fields).
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Split `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and run `f(chunk_index, chunk)` for each, using at
/// most `threads` OS threads. Chunks are disjoint, so `f` may freely write.
///
/// With `threads <= 1` this degenerates to a plain loop with **zero heap
/// allocation**, which is what the allocation-free method hot loops rely
/// on when they gate fan-out by problem size. Above that, chunk indices
/// are stolen over an atomic cursor by the calling thread plus pool
/// workers; every chunk is processed exactly once whichever thread gets
/// it, so outputs never depend on the thread count.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let len = data.len();
    let base = ChunkBase(data.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // Safety: chunk `i` is claimed by exactly one worker (fetch_add),
        // chunk ranges are disjoint by construction, and the buffer
        // outlives the batch because `run_batch` blocks until every
        // worker is done.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
        f(i, chunk);
    };
    global_pool().run_batch(threads - 1, &worker);
}

/// Combine per-shard partials in a **fixed, shard-count-independent
/// shape**: repeated rounds of adjacent pairwise combines (`0⊕1`, `2⊕3`,
/// …, odd tail carried) until one value remains. The combine order is a
/// pure function of `items.len()`, never of thread timing — there is no
/// parallelism here by design, so two runs over the same partials always
/// produce the same result.
///
/// Use it for reductions whose combine is **exact or order-free**:
/// integer counts, maxima/minima, flag unions, disjoint-range merges.
/// For f64 *sums* the pairwise shape still differs from a left fold
/// (floating-point addition is not associative), which is why the
/// sharded EM M-steps do **not** tree-reduce their confusion partials:
/// they fold shards sequentially in ascending order, reproducing the
/// unsharded task-major walk bit-for-bit (see
/// `methods/ds.rs::run_sharded` and ARCHITECTURE.md §sharded substrate).
///
/// Returns `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, combine: impl Fn(T, T) -> T) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

/// A malformed `CROWD_*` environment override.
///
/// Deployment knobs that are silently ignored when mistyped
/// (`CROWD_THREADS=fourcores`) are worse than no knob at all — the
/// operator believes the cap is in force. Parsers return this typed
/// error; entry points that cannot fail (like [`default_threads`])
/// surface it as a loud once-per-process warning instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable name.
    pub var: &'static str,
    /// The raw value found.
    pub value: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl std::fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} value {:?}: {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for EnvParseError {}

/// Parse a `CROWD_THREADS` override: a positive integer (whitespace
/// tolerated). The cap may exceed the hardware thread count — deployments
/// use that for IO-ish jobs.
pub fn parse_thread_env(value: &str) -> Result<usize, EnvParseError> {
    let err = |reason| EnvParseError {
        var: "CROWD_THREADS",
        value: value.to_string(),
        reason,
    };
    let n: usize = value
        .trim()
        .parse()
        .map_err(|_| err("not a non-negative integer"))?;
    if n == 0 {
        return Err(err("thread cap must be at least 1"));
    }
    Ok(n)
}

/// A sensible thread count for CPU-bound fan-out: the machine's available
/// parallelism capped by the `CROWD_THREADS` environment variable when
/// set, `1` when nothing can be determined. A malformed `CROWD_THREADS`
/// is *not* silently ignored: it produces a once-per-process warning on
/// stderr and falls back to the hardware count (use [`parse_thread_env`]
/// for the typed-error path).
pub fn default_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1);
    match std::env::var("CROWD_THREADS") {
        Err(_) => hw,
        // An empty value means "unset" (CI matrices and shell scripts
        // export empty strings to mean exactly that), not a parse error.
        Ok(v) if v.trim().is_empty() => hw,
        Ok(v) => match parse_thread_env(&v) {
            Ok(n) => n,
            Err(e) => {
                static WARNED: OnceLock<()> = OnceLock::new();
                WARNED.get_or_init(|| {
                    eprintln!("WARNING: {e}; using the hardware default of {hw} threads");
                });
                hw
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        assert!(parallel_map(4, empty).is_empty());
        let one: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(parallel_map(8, one), vec![42]);
    }

    #[test]
    fn map_serial_path_matches_parallel() {
        let mk = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..33usize).map(|i| Box::new(move || i + 1) as _).collect()
        };
        assert_eq!(parallel_map(1, mk()), parallel_map(7, mk()));
    }

    #[test]
    fn chunks_cover_all_elements_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            parallel_chunks(threads, &mut data, 10, |i, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
            // Every element written exactly once, with its chunk index.
            for (pos, &x) in data.iter().enumerate() {
                assert_eq!(x, 1 + (pos / 10) as u32, "pos {pos} threads {threads}");
            }
        }
    }

    #[test]
    fn chunks_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        parallel_chunks(4, &mut data, 3, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn tree_reduce_shape_is_deterministic_and_total() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), u32::max), None);
        assert_eq!(tree_reduce(vec![7u32], u32::max), Some(7));
        // Exact ops see every element exactly once, any length (incl.
        // odd tails at every round).
        for n in 1usize..40 {
            let items: Vec<u64> = (0..n as u64).map(|i| 1u64 << (i % 60)).collect();
            let expect: u64 = items.iter().copied().fold(0, |a, b| a | b);
            assert_eq!(tree_reduce(items, |a, b| a | b), Some(expect), "n={n}");
            assert_eq!(
                tree_reduce((0..n).collect::<Vec<usize>>(), usize::max),
                Some(n - 1)
            );
        }
        // The combine shape is a pure function of the length: record it
        // via a string trace and pin the 5-element shape.
        let trace = tree_reduce(
            vec!["a", "b", "c", "d", "e"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<String>>(),
            |a, b| format!("({a}{b})"),
        )
        .unwrap();
        assert_eq!(trace, "(((ab)(cd))e)");
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_env_parse_semantics() {
        assert_eq!(parse_thread_env("3"), Ok(3));
        assert_eq!(parse_thread_env(" 2 "), Ok(2));
        // The cap can exceed the hardware (deployments may want that for
        // IO-ish jobs); it is taken at face value.
        assert_eq!(parse_thread_env("16"), Ok(16));
        // Malformed values are typed errors, not silent fallbacks.
        let zero = parse_thread_env("0").unwrap_err();
        assert_eq!(zero.var, "CROWD_THREADS");
        assert!(zero.to_string().contains("at least 1"));
        let junk = parse_thread_env("many").unwrap_err();
        assert_eq!(junk.value, "many");
        assert!(junk.to_string().contains("CROWD_THREADS"));
        assert!(parse_thread_env("-4").is_err());
        assert!(parse_thread_env("2.5").is_err());
        assert!(parse_thread_env("").is_err());
    }

    #[test]
    fn submitted_jobs_run_and_join() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<JobTicket> = (0..32)
            .map(|_| {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in tickets {
            assert!(matches!(t.join(), JobOutcome::Completed));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn typed_tickets_return_values_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tickets: Vec<TypedTicket<usize>> = (0..32)
            .map(|i| pool.submit_with_result(move || i * i))
            .collect();
        let out: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.join().expect("job completed"))
            .collect();
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn typed_ticket_delivers_panic_without_unwinding() {
        let pool = WorkerPool::new(2);
        let bad = pool.submit_with_result(|| -> usize { panic!("typed boom") });
        let good = pool.submit_with_result(|| 7usize);
        match bad.join() {
            Err(JobError::Panicked(_)) => {}
            other => panic!("expected panic error, got {:?}", other.map(|_| ())),
        }
        assert_eq!(good.join().expect("sibling unaffected"), 7);
    }

    #[test]
    fn typed_job_error_messages() {
        let pool = WorkerPool::new(1);
        let bad = pool.submit_with_result(|| -> () { panic!("str payload") });
        assert_eq!(bad.join().unwrap_err().message(), "str payload");
        let owned = pool.submit_with_result(|| -> () { panic!("{}-{}", "fmt", 1) });
        assert_eq!(owned.join().unwrap_err().message(), "fmt-1");
        assert_eq!(JobError::Cancelled.message(), "cancelled");
    }

    #[test]
    fn dropping_pool_cancels_unstarted_typed_jobs() {
        // Mirror of `dropping_pool_cancels_unstarted_jobs` for the typed
        // path: a blocked single worker, a queued typed job, pool drop.
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let s = Arc::clone(&started);
        let first = pool.submit(move || {
            s.store(1, Ordering::SeqCst);
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let stuck = pool.submit_with_result(|| 9usize);
        let opener = {
            let g = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let (lock, cv) = &*g;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            })
        };
        drop(pool);
        opener.join().unwrap();
        assert!(matches!(first.join(), JobOutcome::Completed));
        assert!(matches!(stuck.join(), Err(JobError::Cancelled)));
    }

    #[test]
    fn submitted_job_panic_is_isolated() {
        // A panicking submitted job reports through its own ticket and
        // leaves siblings, later submissions, and batches untouched.
        let pool = WorkerPool::new(2);
        let bad = pool.submit(|| panic!("job boom"));
        let good = pool.submit(|| ());
        match bad.join() {
            JobOutcome::Panicked(payload) => {
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "job boom");
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
        assert!(matches!(good.join(), JobOutcome::Completed));
        // The pool still runs batches after a job panic.
        let n = AtomicUsize::new(0);
        pool.run_batch(1, &|| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert!(n.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn submitted_jobs_interleave_with_batches() {
        let pool = Arc::new(WorkerPool::new(4));
        let hits = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<JobTicket> = (0..8)
            .map(|_| {
                let h = Arc::clone(&hits);
                pool.submit(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for _ in 0..10 {
            pool.run_batch(2, &|| {});
        }
        for t in tickets {
            assert!(matches!(t.join(), JobOutcome::Completed));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_fanout_inside_submitted_job_runs_inline() {
        // A submitted job that itself calls parallel_map must not
        // deadlock or re-enter the pool — the worker thread carries the
        // in-batch flag.
        let pool = WorkerPool::new(2);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let t = pool.submit(move || {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..8usize).map(|i| Box::new(move || i * 2) as _).collect();
            *o.lock().unwrap() = parallel_map(4, jobs);
        });
        assert!(matches!(t.join(), JobOutcome::Completed));
        assert_eq!(
            *out.lock().unwrap(),
            (0..8usize).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dropping_pool_cancels_unstarted_jobs() {
        // A pool with a blocked single worker and a deep queue: dropping
        // it must complete every ticket (Cancelled, not hang).
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let s = Arc::clone(&started);
        let first = pool.submit(move || {
            s.store(1, Ordering::SeqCst);
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Wait until the single worker is demonstrably inside the first
        // job, so the jobs queued next cannot start before the drop.
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let stuck: Vec<JobTicket> = (0..4).map(|_| pool.submit(|| ())).collect();
        // Open the gate from another thread after the drop begins.
        let opener = {
            let g = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let (lock, cv) = &*g;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            })
        };
        drop(pool);
        opener.join().unwrap();
        assert!(matches!(first.join(), JobOutcome::Completed));
        for t in stuck {
            assert!(matches!(t.join(), JobOutcome::Cancelled));
        }
    }

    #[test]
    fn introspection_sees_depth_rise_and_drain() {
        // One worker, blocked on a gate: every further submit must be
        // visible as queue depth from outside, and the depth must drain
        // back to a fully idle pool once the gate opens.
        let pool = WorkerPool::new(1);
        assert!(pool.is_idle());
        assert_eq!(pool.queue_depth(), 0);

        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let s = Arc::clone(&started);
        let blocker = pool.submit(move || {
            s.store(1, Ordering::SeqCst);
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.jobs_in_flight(), 1, "blocker is running");
        assert!(!pool.is_idle());

        // The single worker is blocked, so these can only queue.
        let queued: Vec<JobTicket> = (0..5).map(|_| pool.submit(|| ())).collect();
        assert_eq!(pool.queue_depth(), 5, "submits behind a blocked worker");

        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(matches!(blocker.join(), JobOutcome::Completed));
        for t in queued {
            assert!(matches!(t.join(), JobOutcome::Completed));
        }
        assert_eq!(pool.queue_depth(), 0, "queue drained");
        // The last ticket completes before the worker re-takes the state
        // lock to decrement `queued_running`; spin briefly for idle.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !pool.is_idle() {
            assert!(std::time::Instant::now() < deadline, "pool never idled");
            std::thread::yield_now();
        }
        assert_eq!(pool.jobs_in_flight(), 0);
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run_batch(3, &|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // 50 batches × (caller + up to 3 workers, depending on wake-up
        // timing) ran on at most 3 spawned threads total — the whole
        // point of the pool is that batches never re-spawn.
        assert!(pool.spawned_workers() <= 3);
        let ran = counter.load(Ordering::Relaxed);
        assert!((50..=200).contains(&ran), "{ran} job entries");
    }

    #[test]
    fn pool_executes_work_on_real_threads() {
        // A rendezvous only two genuinely concurrent participants can
        // complete: each arrival waits (bounded) for a second arrival in
        // the same batch. Works on single-core machines too — the OS
        // still schedules the parked worker once it is woken.
        let pool = WorkerPool::new(2);
        let arrivals = AtomicUsize::new(0);
        let met = AtomicUsize::new(0);
        pool.run_batch(2, &|| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while arrivals.load(Ordering::SeqCst) < 2 {
                if std::time::Instant::now() > deadline {
                    return;
                }
                std::thread::yield_now();
            }
            met.fetch_add(1, Ordering::SeqCst);
        });
        assert!(pool.spawned_workers() >= 1);
        assert!(
            met.load(Ordering::SeqCst) >= 2,
            "two participants never met inside one batch"
        );
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let result = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| {
                    Box::new(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                        i
                    }) as _
                })
                .collect();
            parallel_map(4, jobs)
        });
        assert!(result.is_err(), "panic in a job must propagate");
    }

    #[test]
    fn pool_survives_a_propagated_panic() {
        // A caught job panic must not poison the global pool: later
        // fan-outs (possibly much later, in a long-lived process) have
        // to keep working.
        let poisoned = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| panic!("boom")), Box::new(|| 1)];
            parallel_map(2, jobs)
        });
        assert!(poisoned.is_err());
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * 3) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..16usize).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fanout_runs_inline() {
        // A fan-out issued from inside a pool batch must not deadlock on
        // the (held) submission lock — it runs inline instead.
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                        .map(|j| Box::new(move || i * 10 + j) as _)
                        .collect();
                    parallel_map(4, inner).into_iter().sum()
                }) as _
            })
            .collect();
        let out = parallel_map(4, outer);
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_submitters_serialise_without_deadlock() {
        let done: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                            .map(|i| Box::new(move || t * 100 + i) as _)
                            .collect();
                        parallel_map(3, jobs).into_iter().sum::<usize>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect: Vec<usize> = (0..4).map(|t| (0..16).map(|i| t * 100 + i).sum()).collect();
        assert_eq!(done, expect);
    }
}
