//! The shared parallel execution backend.
//!
//! One executor used by the method hot loops (worker-level M-step
//! fan-out), the experiment harness (repeat-level fan-out), and the bench
//! crate. Work is dispatched to a **persistent worker pool** — threads
//! are spawned once, parked on a condvar between batches, and woken per
//! fan-out — so dispatching a batch costs a few microseconds instead of
//! the ~100µs a fresh `std::thread::scope` spawn costs. That is what lets
//! the E/M fan-out thresholds sit an order of magnitude lower than in the
//! scope-spawn design (see `PARALLEL_*_MIN_WORK` in `methods/ds.rs`).
//!
//! Two entry points:
//!
//! - [`parallel_map`]: run `n` heterogeneous closures, preserving output
//!   order — the repeat/sweep pattern.
//! - [`parallel_chunks`]: split one contiguous `&mut [T]` into fixed-size
//!   chunks and process each `(chunk_index, chunk)` — the pattern for
//!   fanning a flat-matrix M-step out across workers without aliasing.
//!
//! Both steal work over an atomic cursor so uneven job costs do not
//! serialise a batch, and both fall back to inline execution when
//! `threads <= 1` or the job count is 1, so callers can gate parallelism
//! by problem size and keep small runs allocation-free and deterministic
//! in cost.
//!
//! Thread budget: [`default_threads`] is the machine's available
//! parallelism, capped by the **`CROWD_THREADS`** environment variable
//! when set (deployments use it to bound parallelism without code
//! changes).
//!
//! Nesting: a fan-out issued from inside a pool batch (e.g. a method's
//! internal E-step fan-out while the experiment harness is already
//! fanning repeats out) runs inline on the calling thread instead of
//! re-entering the pool — the machine is already saturated, and inline
//! execution is exactly the serial path whose outputs are bit-identical.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A batch job: a lifetime-erased pointer to the caller's `Fn() + Sync`
/// closure. The erasure is sound because [`WorkerPool::run_batch`] does
/// not return until every worker that entered the batch has left it, so
/// the pointee outlives every dereference.
struct JobPtr(*const (dyn Fn() + Sync));
// Safety: the pointer is only dereferenced between batch open and batch
// close, a window during which the submitting thread keeps the closure
// alive (see `run_batch`).
unsafe impl Send for JobPtr {}

/// Mutex-protected pool state.
struct PoolState {
    /// Bumped once per batch so parked workers can tell a new batch from
    /// a spurious wake-up.
    generation: u64,
    /// The open batch's job; `None` once the batch is closed to new
    /// entrants (or no batch is running).
    job: Option<JobPtr>,
    /// Worker entry slots remaining in the open batch.
    quota: usize,
    /// Workers currently executing the job.
    running: usize,
    /// First panic payload caught from a worker in this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work: Condvar,
    /// The submitter parks here while enrolled workers finish.
    done: Condvar,
}

/// A pool of persistent worker threads executing fan-out batches.
///
/// Threads are spawned lazily up to the requested batch width and then
/// reused for every later batch: waking a parked worker is a
/// condvar-notify, not a thread spawn. One batch runs at a time per pool
/// (a submission mutex serialises concurrent submitters); the submitting
/// thread always participates in its own batch, so a pool with zero
/// spawned workers still makes progress.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    /// Serialises batches from concurrent submitting threads.
    submission: Mutex<()>,
    /// Spawned worker handles (guarded by `submission` during growth).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Hard cap on spawned workers.
    max_workers: usize,
}

thread_local! {
    /// Set while the current thread is executing inside a pool batch
    /// (either as a pool worker or as a submitting participant); nested
    /// fan-outs check it and run inline.
    static IN_BATCH: Cell<bool> = const { Cell::new(false) };
}

/// Sets the thread-local batch flag and restores the *previous* value on
/// drop (even if the job panics) — restoring rather than clearing keeps
/// the flag correct across arbitrarily deep nested inline fan-outs.
struct BatchFlagGuard {
    prev: bool,
}

impl BatchFlagGuard {
    fn enter() -> Self {
        let prev = IN_BATCH.with(|f| f.replace(true));
        BatchFlagGuard { prev }
    }
}

impl Drop for BatchFlagGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_BATCH.with(|f| f.set(prev));
    }
}

impl WorkerPool {
    /// A pool that will spawn at most `max_workers` persistent threads
    /// (spawned lazily as batches request them).
    pub fn new(max_workers: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    generation: 0,
                    job: None,
                    quota: 0,
                    running: 0,
                    panic: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            submission: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
            max_workers,
        }
    }

    /// Workers spawned so far.
    pub fn spawned_workers(&self) -> usize {
        self.handles.lock().expect("pool handles").len()
    }

    /// Run `job` on the calling thread plus up to `extra_workers` pool
    /// threads, returning once every participant has finished. The job is
    /// expected to do its own work splitting (the callers here steal over
    /// an atomic cursor), so launching more participants than there is
    /// work is harmless.
    ///
    /// A panic in any participant is re-raised on the calling thread
    /// after the batch has fully drained (so no worker still references
    /// the caller's stack).
    ///
    /// Called from inside another batch (nested fan-out), this degrades
    /// to `job()` inline on the calling thread.
    pub fn run_batch(&self, extra_workers: usize, job: &(dyn Fn() + Sync)) {
        if extra_workers == 0 || IN_BATCH.with(|f| f.get()) {
            let _guard = BatchFlagGuard::enter();
            job();
            return;
        }
        // Poison-tolerant: the guard protects no data (it only serialises
        // batches), and a panic from a *previous* batch's job must not
        // disable the pool for the rest of a long-lived process.
        let submission = self
            .submission
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let extra_workers = extra_workers.min(self.max_workers);
        self.ensure_workers(extra_workers);

        // Open the batch.
        {
            let mut st = self.inner.state.lock().expect("pool state");
            st.generation = st.generation.wrapping_add(1);
            // The transmute erases the borrow's lifetime from the fat
            // pointer; it is dereferenced only before this function
            // observes `running == 0` with the batch closed, below.
            let raw: *const (dyn Fn() + Sync) = unsafe {
                std::mem::transmute::<
                    *const (dyn Fn() + Sync + '_),
                    *const (dyn Fn() + Sync + 'static),
                >(job)
            };
            st.job = Some(JobPtr(raw));
            st.quota = extra_workers;
            st.panic = None;
            self.inner.work.notify_all();
        }

        // The submitter participates in its own batch.
        let caller_result = {
            let _guard = BatchFlagGuard::enter();
            std::panic::catch_unwind(AssertUnwindSafe(job))
        };

        // Close the batch to new entrants and drain the enrolled workers.
        let worker_panic = {
            let mut st = self.inner.state.lock().expect("pool state");
            st.job = None;
            st.quota = 0;
            while st.running > 0 {
                st = self.inner.done.wait(st).expect("pool done wait");
            }
            st.panic.take()
        };

        // Release the submission lock *before* re-raising so a propagated
        // job panic cannot poison it — the pool must stay usable after a
        // caller catches the panic.
        drop(submission);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Spawn workers until `target` are available (bounded by
    /// `max_workers`). Called with the submission lock held.
    fn ensure_workers(&self, target: usize) {
        let mut handles = self.handles.lock().expect("pool handles");
        let target = target.min(self.max_workers);
        while handles.len() < target {
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name("crowd-exec-worker".into())
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            handles.push(handle);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("pool state");
            st.shutdown = true;
            self.inner.work.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    let _guard = BatchFlagGuard::enter(); // workers only ever run batch jobs
    let mut seen = 0u64;
    let mut st = inner.state.lock().expect("pool state");
    loop {
        if st.shutdown {
            return;
        }
        if st.generation != seen {
            seen = st.generation;
            if st.quota > 0 {
                if let Some(job) = &st.job {
                    let job = job.0;
                    st.quota -= 1;
                    st.running += 1;
                    drop(st);
                    // Safety: `run_batch` keeps the closure alive until
                    // `running` returns to zero, which happens strictly
                    // after this call returns.
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                        (*job)();
                    }));
                    st = inner.state.lock().expect("pool state");
                    st.running -= 1;
                    if let Err(payload) = result {
                        if st.panic.is_none() {
                            st.panic = Some(payload);
                        }
                    }
                    if st.running == 0 {
                        inner.done.notify_all();
                    }
                    // Re-check immediately: the next batch may already be
                    // open.
                    continue;
                }
            }
        }
        st = inner.work.wait(st).expect("pool work wait");
    }
}

/// The process-wide pool shared by [`parallel_map`] and
/// [`parallel_chunks`]. Sized to the machine (workers spawn lazily, so an
/// all-serial workload never spawns any).
fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    // Workers spawn lazily per the largest batch actually requested, so a
    // generous cap costs nothing on machines (or workloads) that never
    // ask for it; 256 is a runaway backstop, not a tuning knob. Explicit
    // thread requests above the hardware count (e.g. CROWD_THREADS=16 on
    // 4 cores, for IO-ish jobs) get real threads up to the cap.
    POOL.get_or_init(|| WorkerPool::new(256))
}

// ---------------------------------------------------------------------------
// Fan-out entry points.
// ---------------------------------------------------------------------------

/// Run `jobs` closures across at most `threads` OS threads, preserving
/// output order. Panics in a job propagate to the caller.
pub fn parallel_map<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Work-stealing by atomic cursor over the job list.
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let job = queue[i]
            .lock()
            .expect("job mutex")
            .take()
            .expect("job taken once");
        let out = job();
        *results[i].lock().expect("result mutex") = Some(out);
    };
    global_pool().run_batch(threads - 1, &worker);

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex")
                .expect("every job ran")
        })
        .collect()
}

/// Raw base pointer of a chunked buffer, sendable to pool workers. The
/// chunk-stealing cursor hands each chunk index to exactly one worker, so
/// all derived slices are disjoint.
struct ChunkBase<T>(*mut T);
unsafe impl<T: Send> Send for ChunkBase<T> {}
unsafe impl<T: Send> Sync for ChunkBase<T> {}

impl<T> ChunkBase<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare `*mut T` (edition-2021 closures
    /// capture disjoint fields).
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Split `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and run `f(chunk_index, chunk)` for each, using at
/// most `threads` OS threads. Chunks are disjoint, so `f` may freely write.
///
/// With `threads <= 1` this degenerates to a plain loop with **zero heap
/// allocation**, which is what the allocation-free method hot loops rely
/// on when they gate fan-out by problem size. Above that, chunk indices
/// are stolen over an atomic cursor by the calling thread plus pool
/// workers; every chunk is processed exactly once whichever thread gets
/// it, so outputs never depend on the thread count.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn parallel_chunks<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let len = data.len();
    let base = ChunkBase(data.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // Safety: chunk `i` is claimed by exactly one worker (fetch_add),
        // chunk ranges are disjoint by construction, and the buffer
        // outlives the batch because `run_batch` blocks until every
        // worker is done.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
        f(i, chunk);
    };
    global_pool().run_batch(threads - 1, &worker);
}

/// A sensible thread count for CPU-bound fan-out: the machine's available
/// parallelism capped by the `CROWD_THREADS` environment variable when
/// set (values below 1 or unparseable values are ignored), `1` when
/// nothing can be determined.
pub fn default_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    apply_thread_env(std::env::var("CROWD_THREADS").ok().as_deref(), hw)
}

/// `CROWD_THREADS` semantics, factored out for testing: a parseable
/// positive override wins, anything else falls back to `hw`.
fn apply_thread_env(env: Option<&str>, hw: usize) -> usize {
    match env.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => hw.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..64usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        assert!(parallel_map(4, empty).is_empty());
        let one: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(parallel_map(8, one), vec![42]);
    }

    #[test]
    fn map_serial_path_matches_parallel() {
        let mk = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..33usize).map(|i| Box::new(move || i + 1) as _).collect()
        };
        assert_eq!(parallel_map(1, mk()), parallel_map(7, mk()));
    }

    #[test]
    fn chunks_cover_all_elements_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            parallel_chunks(threads, &mut data, 10, |i, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
            // Every element written exactly once, with its chunk index.
            for (pos, &x) in data.iter().enumerate() {
                assert_eq!(x, 1 + (pos / 10) as u32, "pos {pos} threads {threads}");
            }
        }
    }

    #[test]
    fn chunks_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        parallel_chunks(4, &mut data, 3, |_, _| panic!("no chunks expected"));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_env_override_semantics() {
        assert_eq!(apply_thread_env(Some("3"), 8), 3);
        assert_eq!(apply_thread_env(Some(" 2 "), 8), 2);
        assert_eq!(apply_thread_env(Some("0"), 8), 8);
        assert_eq!(apply_thread_env(Some("many"), 8), 8);
        assert_eq!(apply_thread_env(None, 8), 8);
        assert_eq!(apply_thread_env(None, 0), 1);
        // The cap can exceed the hardware (deployments may want that for
        // IO-ish jobs); it is taken at face value.
        assert_eq!(apply_thread_env(Some("16"), 4), 16);
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run_batch(3, &|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // 50 batches × (caller + up to 3 workers, depending on wake-up
        // timing) ran on at most 3 spawned threads total — the whole
        // point of the pool is that batches never re-spawn.
        assert!(pool.spawned_workers() <= 3);
        let ran = counter.load(Ordering::Relaxed);
        assert!((50..=200).contains(&ran), "{ran} job entries");
    }

    #[test]
    fn pool_executes_work_on_real_threads() {
        // A rendezvous only two genuinely concurrent participants can
        // complete: each arrival waits (bounded) for a second arrival in
        // the same batch. Works on single-core machines too — the OS
        // still schedules the parked worker once it is woken.
        let pool = WorkerPool::new(2);
        let arrivals = AtomicUsize::new(0);
        let met = AtomicUsize::new(0);
        pool.run_batch(2, &|| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while arrivals.load(Ordering::SeqCst) < 2 {
                if std::time::Instant::now() > deadline {
                    return;
                }
                std::thread::yield_now();
            }
            met.fetch_add(1, Ordering::SeqCst);
        });
        assert!(pool.spawned_workers() >= 1);
        assert!(
            met.load(Ordering::SeqCst) >= 2,
            "two participants never met inside one batch"
        );
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let result = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| {
                    Box::new(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                        i
                    }) as _
                })
                .collect();
            parallel_map(4, jobs)
        });
        assert!(result.is_err(), "panic in a job must propagate");
    }

    #[test]
    fn pool_survives_a_propagated_panic() {
        // A caught job panic must not poison the global pool: later
        // fan-outs (possibly much later, in a long-lived process) have
        // to keep working.
        let poisoned = std::panic::catch_unwind(|| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| panic!("boom")), Box::new(|| 1)];
            parallel_map(2, jobs)
        });
        assert!(poisoned.is_err());
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * 3) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..16usize).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fanout_runs_inline() {
        // A fan-out issued from inside a pool batch must not deadlock on
        // the (held) submission lock — it runs inline instead.
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                        .map(|j| Box::new(move || i * 10 + j) as _)
                        .collect();
                    parallel_map(4, inner).into_iter().sum()
                }) as _
            })
            .collect();
        let out = parallel_map(4, outer);
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_submitters_serialise_without_deadlock() {
        let done: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                            .map(|i| Box::new(move || t * 100 + i) as _)
                            .collect();
                        parallel_map(3, jobs).into_iter().sum::<usize>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect: Vec<usize> = (0..4).map(|t| (0..16).map(|i| t * 100 + i).sum()).collect();
        assert_eq!(done, expect);
    }
}
