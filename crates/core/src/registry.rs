//! Name-based method registry used by the experiment harness and CLI.

use crowd_data::TaskType;

use crate::framework::TruthInference;
use crate::methods::{
    Bcc, Catd, Cbcc, Ds, Glad, Kos, Lfc, LfcN, MeanAgg, MedianAgg, Minimax, Multi, Mv, Pm, ViBp,
    ViMf, Zc,
};

/// Enumeration of the seventeen benchmark methods (Table 4 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the paper's method names
pub enum Method {
    Mv,
    Zc,
    Glad,
    Ds,
    Minimax,
    Bcc,
    Cbcc,
    Lfc,
    Catd,
    Pm,
    Multi,
    Kos,
    ViBp,
    ViMf,
    LfcN,
    Mean,
    Median,
}

impl Method {
    /// All seventeen methods, in the paper's Table 4 / Table 6 order.
    pub const ALL: [Method; 17] = [
        Method::Mv,
        Method::Zc,
        Method::Glad,
        Method::Ds,
        Method::Minimax,
        Method::Bcc,
        Method::Cbcc,
        Method::Lfc,
        Method::Catd,
        Method::Pm,
        Method::Multi,
        Method::Kos,
        Method::ViBp,
        Method::ViMf,
        Method::LfcN,
        Method::Mean,
        Method::Median,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mv => "MV",
            Self::Zc => "ZC",
            Self::Glad => "GLAD",
            Self::Ds => "D&S",
            Self::Minimax => "Minimax",
            Self::Bcc => "BCC",
            Self::Cbcc => "CBCC",
            Self::Lfc => "LFC",
            Self::Catd => "CATD",
            Self::Pm => "PM",
            Self::Multi => "Multi",
            Self::Kos => "KOS",
            Self::ViBp => "VI-BP",
            Self::ViMf => "VI-MF",
            Self::LfcN => "LFC_N",
            Self::Mean => "Mean",
            Self::Median => "Median",
        }
    }

    /// Parse a method from its (case-insensitive) display name. Accepts a
    /// few aliases (`DS`, `D&S`, `LFCN`).
    pub fn parse(name: &str) -> Option<Method> {
        let lower = name.to_ascii_lowercase().replace(['&', '-', '_'], "");
        Some(match lower.as_str() {
            "mv" | "majorityvoting" | "majority" => Self::Mv,
            "zc" | "zencrowd" => Self::Zc,
            "glad" => Self::Glad,
            "ds" | "dawidskene" => Self::Ds,
            "minimax" => Self::Minimax,
            "bcc" => Self::Bcc,
            "cbcc" => Self::Cbcc,
            "lfc" => Self::Lfc,
            "catd" => Self::Catd,
            "pm" | "crh" => Self::Pm,
            "multi" => Self::Multi,
            "kos" => Self::Kos,
            "vibp" => Self::ViBp,
            "vimf" => Self::ViMf,
            "lfcn" => Self::LfcN,
            "mean" => Self::Mean,
            "median" => Self::Median,
            _ => return None,
        })
    }

    /// Instantiate the method with its default hyperparameters.
    pub fn build(&self) -> Box<dyn TruthInference + Send + Sync> {
        match self {
            Self::Mv => Box::new(Mv),
            Self::Zc => Box::new(Zc::default()),
            Self::Glad => Box::new(Glad::default()),
            Self::Ds => Box::new(Ds),
            Self::Minimax => Box::new(Minimax::default()),
            Self::Bcc => Box::new(Bcc::default()),
            Self::Cbcc => Box::new(Cbcc::default()),
            Self::Lfc => Box::new(Lfc::default()),
            Self::Catd => Box::new(Catd::default()),
            Self::Pm => Box::new(Pm::default()),
            Self::Multi => Box::new(Multi::default()),
            Self::Kos => Box::new(Kos::default()),
            Self::ViBp => Box::new(ViBp::default()),
            Self::ViMf => Box::new(ViMf::default()),
            Self::LfcN => Box::new(LfcN::default()),
            Self::Mean => Box::new(MeanAgg),
            Self::Median => Box::new(MedianAgg),
        }
    }

    /// Whether the method handles a task type (Table 4's first column).
    pub fn supports(&self, task_type: TaskType) -> bool {
        self.build().supports(task_type)
    }

    /// The methods applicable to a task type, in Table 4 order — e.g. the
    /// 14 decision-making methods of Figure 4, the 10 single-choice
    /// methods of Figure 5, the 5 numeric methods of Figure 6.
    pub fn for_task_type(task_type: TaskType) -> Vec<Method> {
        Self::ALL
            .iter()
            .copied()
            .filter(|m| m.supports(task_type))
            .collect()
    }
}

/// Convenience module-level function mirroring [`Method::parse`].
pub fn registry(name: &str) -> Option<Box<dyn TruthInference + Send + Sync>> {
    Method::parse(name).map(|m| m.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_methods() {
        assert_eq!(Method::ALL.len(), 17);
        // Names are unique.
        let mut names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn parse_roundtrips_display_names() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m), "failed on {}", m.name());
        }
        assert_eq!(Method::parse("dawid-skene"), Some(Method::Ds));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn task_type_counts_match_paper_figures() {
        // Figure 4 compares 14 methods on decision-making tasks.
        assert_eq!(Method::for_task_type(TaskType::DecisionMaking).len(), 14);
        // Figure 5 compares 10 methods on single-choice tasks.
        assert_eq!(
            Method::for_task_type(TaskType::SingleChoice { choices: 4 }).len(),
            10
        );
        // Figure 6 compares 5 methods on numeric tasks.
        assert_eq!(Method::for_task_type(TaskType::Numeric).len(), 5);
    }

    #[test]
    fn build_matches_name() {
        for m in Method::ALL {
            assert_eq!(m.build().name(), m.name());
        }
    }

    #[test]
    fn qualification_and_golden_counts_match_paper() {
        // §6.3.2: 8 methods accept qualification-test initialisation.
        let qual = Method::ALL
            .iter()
            .filter(|m| m.build().supports_qualification())
            .count();
        assert_eq!(qual, 8);
        // §6.3.3: 9 methods incorporate golden tasks.
        let gold = Method::ALL
            .iter()
            .filter(|m| m.build().supports_golden())
            .count();
        assert_eq!(gold, 9);
    }
}
