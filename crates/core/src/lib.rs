//! # crowd-core — seventeen truth-inference algorithms behind one trait
//!
//! This crate implements every method compared in the VLDB 2017 benchmark
//! *"Truth Inference in Crowdsourcing: Is the Problem Solved?"* (Table 4):
//!
//! **Direct computation** — [`methods::Mv`], [`methods::MeanAgg`],
//! [`methods::MedianAgg`].
//!
//! **Optimization** — [`methods::Pm`] (worker probability, Li et al. /
//! Aydin et al.), [`methods::Catd`] (confidence-aware, Li et al.),
//! [`methods::Minimax`] (minimax entropy, Zhou et al.).
//!
//! **Probabilistic graphical models** — [`methods::Zc`] (ZenCrowd EM),
//! [`methods::Glad`] (task difficulty, Whitehill et al.), [`methods::Ds`]
//! (Dawid–Skene), [`methods::Lfc`] (D&S with priors, Raykar et al.),
//! [`methods::LfcN`] (numeric Gaussian variant), [`methods::Bcc`]
//! (Bayesian classifier combination via Gibbs, Kim & Ghahramani),
//! [`methods::Cbcc`] (community BCC, Venanzi et al.), [`methods::Kos`]
//! (belief propagation, Karger–Oh–Shah), [`methods::ViBp`] /
//! [`methods::ViMf`] (variational inference, Liu–Peng–Ihler), and
//! [`methods::Multi`] (multidimensional wisdom of crowds, Welinder et
//! al.).
//!
//! All methods implement [`TruthInference`] and run under the paper's
//! Algorithm 1 regime: iterate truth inference and worker-quality
//! estimation until the parameter change drops below a tolerance
//! (default `1e-3`) or an iteration cap (default 100) is hit. Methods
//! additionally support, where the paper says they do,
//! **qualification-test initialisation** (Section 6.3.2) via
//! [`QualityInit::Qualification`] and **hidden-test golden tasks**
//! (Section 6.3.3) via [`InferenceOptions::golden`].

#![warn(missing_docs)]
// The estimators update several same-length parameter arrays in lockstep
// (posteriors, confusion matrices, multipliers); explicit index loops are
// the clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod exec;
mod framework;
pub mod methods;
pub mod registry;
pub mod views;

pub use framework::{
    InferenceError, InferenceOptions, InferenceResult, QualityInit, TruthInference, WarmStart,
    WorkerQuality,
};
pub use registry::Method;
