//! PM — the optimization method of Li et al. (SIGMOD 2014, "CRH") and
//! Aydin et al. (AAAI 2014), as presented in Section 3 of the paper.
//!
//! Minimises `f({q^w}, {v*}) = Σ_w q^w Σ_{i ∈ T^w} d(v_i^w, v*_i)` by
//! coordinate descent:
//!
//! - **Step 1** `v*_i = argmax_v Σ_{w∈W_i} q^w · 1{v = v_i^w}` for
//!   categorical tasks (weighted vote), or the `q`-weighted mean for
//!   numeric tasks (squared loss);
//! - **Step 2** `q^w = −log( Σ_{t_i∈T^w} d(v_i^w, v*_i) / max_{w'} Σ d )`.
//!
//! Numeric distances are variance-normalised per task (the CRH
//! normalisation) so quality weights are scale-free.

use crowd_data::{Dataset, TaskType};
use crowd_stats::kernels::safe_ln;
use crowd_stats::summary::variance;
use crowd_stats::ConvergenceTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat, Num};

/// PM: conflict-resolution by joint optimisation.
#[derive(Debug, Clone, Copy)]
pub struct Pm {
    /// Small constant keeping the log argument away from 0 (a worker who
    /// agrees with every inferred truth would otherwise get infinite
    /// weight).
    pub epsilon: f64,
}

impl Default for Pm {
    fn default() -> Self {
        Self { epsilon: 1e-4 }
    }
}

impl TruthInference for Pm {
    fn name(&self) -> &'static str {
        "PM"
    }

    fn supports(&self, _task_type: TaskType) -> bool {
        true // decision-making, single-choice, and numeric (Table 4)
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(self.name(), dataset, options, true)?;
        if dataset.task_type().is_categorical() {
            self.infer_categorical(dataset, options)
        } else {
            self.infer_numeric(dataset, options)
        }
    }
}

impl Pm {
    fn infer_categorical(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let cat = Cat::build("PM", dataset, options, true)?;
        let mut rng = StdRng::seed_from_u64(options.seed);

        // Initial qualities: uniform 1 (paper) or scaled test accuracy.
        let mut quality: Vec<f64> = match &options.quality_init {
            crate::framework::QualityInit::Uniform => vec![1.0; cat.m],
            _ => initial_accuracy(options, cat.m, 0.7),
        };

        let mut truths: Vec<u8> = vec![0; cat.n];
        // Pre-allocated scratch: vote scores, tie list, per-worker
        // distances, and the convergence vector — the loop allocates
        // nothing per iteration.
        let mut scores = vec![0.0f64; cat.l];
        let mut ties: Vec<u8> = Vec::with_capacity(cat.l);
        let mut dist = vec![0.0f64; cat.m];
        let mut params = vec![0.0f64; cat.n];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Step 1: weighted vote.
            for task in 0..cat.n {
                if let Some(g) = cat.golden[task] {
                    truths[task] = g;
                    continue;
                }
                scores.fill(0.0);
                for (worker, label) in cat.task(task) {
                    scores[label as usize] += quality[worker];
                }
                let best = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ties.clear();
                ties.extend(
                    scores
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| (s - best).abs() < 1e-12)
                        .map(|(i, _)| i as u8),
                );
                truths[task] = if ties.len() == 1 {
                    ties[0]
                } else {
                    ties[rng.gen_range(0..ties.len())]
                };
            }

            // Step 2: q^w = −log(Σd / max Σd).
            for (w, d) in dist.iter_mut().enumerate() {
                *d = cat
                    .worker(w)
                    .filter(|&(task, label)| truths[task] != label)
                    .count() as f64;
            }
            let max_d = dist
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                .max(self.epsilon);
            for (w, d) in dist.iter().enumerate() {
                quality[w] = -safe_ln((d + self.epsilon) / (max_d + self.epsilon));
            }

            for (p, &t) in params.iter_mut().zip(&truths) {
                *p = t as f64;
            }
            if tracker.step(&params) {
                break;
            }
        }

        Ok(InferenceResult {
            truths: Cat::answers(&truths),
            worker_quality: quality.into_iter().map(WorkerQuality::Weight).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: None,
        })
    }

    fn infer_numeric(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let num = Num::build("PM", dataset, options, true)?;

        // Per-task answer variance for scale-free distances.
        let mut vs: Vec<f64> = Vec::new();
        let task_var: Vec<f64> = (0..num.n)
            .map(|t| {
                vs.clear();
                vs.extend(num.task(t).map(|(_, v)| v));
                variance(&vs).max(1e-6)
            })
            .collect();

        let mut quality: Vec<f64> = match &options.quality_init {
            crate::framework::QualityInit::Uniform => vec![1.0; num.m],
            _ => initial_accuracy(options, num.m, 0.7),
        };
        let mut truths = num.mean_estimates();
        // Pre-allocated distance scratch: the loop allocates nothing per
        // iteration.
        let mut dist = vec![0.0f64; num.m];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Step 1: weighted mean per task (squared loss minimiser).
            for task in 0..num.n {
                if let Some(g) = num.golden[task] {
                    truths[task] = g;
                    continue;
                }
                let len = num.task_len(task);
                if len == 0 {
                    continue;
                }
                let mut wsum = 0.0;
                let mut vsum = 0.0;
                for (worker, v) in num.task(task) {
                    let q = quality[worker].max(0.0);
                    wsum += q;
                    vsum += q * v;
                }
                if wsum > 0.0 {
                    truths[task] = vsum / wsum;
                } else {
                    truths[task] = num.task(task).map(|(_, v)| v).sum::<f64>() / len as f64;
                }
            }

            // Step 2: normalised squared distances.
            for (w, d) in dist.iter_mut().enumerate() {
                *d = num
                    .worker(w)
                    .map(|(task, v)| (v - truths[task]).powi(2) / task_var[task])
                    .sum::<f64>();
            }
            let max_d = dist
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                .max(self.epsilon);
            for (w, d) in dist.iter().enumerate() {
                quality[w] = -safe_ln((d + self.epsilon) / (max_d + self.epsilon));
            }

            if tracker.step(&truths) {
                break;
            }
        }

        Ok(InferenceResult {
            truths: Num::answers(&truths),
            worker_quality: quality.into_iter().map(WorkerQuality::Weight).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::Answer;

    #[test]
    fn solves_toy_example_like_section_3() {
        // Section 3 walks PM through Table 2 and reports converged truths
        // v*_1 = v*_6 = T with the rest F, and w3 the best worker.
        let d = toy();
        let r = Pm::default()
            .infer(&d, &InferenceOptions::seeded(11))
            .unwrap();
        assert_result_sane(&d, &r);
        assert_eq!(r.truths[0], Answer::Label(0), "t1 should be T");
        assert_eq!(r.truths[5], Answer::Label(0), "t6 should be T");
        for t in 1..5 {
            assert_eq!(r.truths[t], Answer::Label(1), "t{} should be F", t + 1);
        }
        let q: Vec<f64> = r
            .worker_quality
            .iter()
            .map(|x| x.scalar().unwrap())
            .collect();
        assert!(
            q[2] > q[1] && q[1] > q[0],
            "qualities should order w3 > w2 > w1: {q:?}"
        );
    }

    #[test]
    fn first_iteration_matches_paper_quality_ratios() {
        // After step 1 with uniform weights the mistake counts are 3, 2, 1
        // giving q = [−ln(3/3), −ln(2/3), −ln(1/3)] ≈ [0, 0.41, 1.10].
        // We can't observe iteration 1 directly, but converged weights
        // must preserve that strict ordering with w1 pinned at ~0.
        let d = toy();
        let r = Pm::default()
            .infer(&d, &InferenceOptions::seeded(11))
            .unwrap();
        let q0 = r.worker_quality[0].scalar().unwrap();
        assert!(
            q0.abs() < 0.05,
            "worst worker weight should be ≈ 0, got {q0}"
        );
    }

    #[test]
    fn good_on_decision_data() {
        // Table 6 shape: PM (89.8%) sits below the confusion-matrix
        // methods (~93.7%) on D_Product; the simulated fixture shows the
        // same gap.
        let d = small_decision();
        assert_accuracy_at_least(&Pm::default(), &d, 0.75);
    }

    #[test]
    fn numeric_beats_nothing_catastrophically() {
        let d = small_numeric();
        let r = Pm::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let e = rmse(&d, &r);
        assert!(e < 18.0, "PM numeric RMSE {e}");
    }

    #[test]
    fn golden_clamped_categorical_and_numeric() {
        use crowd_data::GoldenSplit;
        for d in [small_decision(), small_numeric()] {
            let split = GoldenSplit::sample(&d, 0.3, 6);
            let opts = InferenceOptions {
                golden: Some(split.revealed.clone()),
                ..InferenceOptions::seeded(6)
            };
            let r = Pm::default().infer(&d, &opts).unwrap();
            for &t in &split.golden {
                assert_eq!(Some(r.truths[t]), d.truth(t), "dataset {}", d.name());
            }
        }
    }

    #[test]
    fn supports_all_task_types() {
        let pm = Pm::default();
        assert!(pm.supports(TaskType::DecisionMaking));
        assert!(pm.supports(TaskType::SingleChoice { choices: 4 }));
        assert!(pm.supports(TaskType::Numeric));
    }
}
