//! VI-BP — Variational inference with belief propagation (Liu, Peng &
//! Ihler, NIPS 2012).
//!
//! The belief-propagation counterpart of [`super::ViMf`]: messages flow on
//! the task–worker factor graph, and each worker factor integrates the
//! worker's confusion parameters under their Dirichlet prior. Exact
//! integration of the worker factor requires summing over all joint
//! configurations of the worker's other tasks; like Liu et al.'s AMF
//! connection, we approximate that integral with *expected counts* under
//! the cavity (leave-one-out) beliefs — the message a worker sends about
//! task `i` is computed from Dirichlet parameters that exclude task `i`'s
//! own belief:
//!
//! ```text
//! m_{w→i}(j) ∝ exp( ψ(α̂^{−i}_{j,v_iw}) − ψ(Σ_k α̂^{−i}_{j,k}) )
//! b_i(j)     ∝ Π_{w∈W_i} m_{w→i}(j)
//! ```
//!
//! The leave-one-out structure is what distinguishes BP from mean field
//! (KOS is recovered under a Haldane prior). The paper finds VI-BP
//! unstable on imbalanced data (64.6% accuracy on D_Product, Table 6);
//! this implementation retains that failure mode — see the regression
//! test pinning it below. The substitution is recorded in DESIGN.md §5.

use crowd_data::{Dataset, TaskType};
use crowd_stats::special::digamma;
use crowd_stats::{dist::log_normalize, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Belief-propagation variational inference (two-coin Dirichlet model).
#[derive(Debug, Clone, Copy)]
pub struct ViBp {
    /// Dirichlet prior pseudo-count on diagonal cells.
    pub diag_prior: f64,
    /// Dirichlet prior pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for ViBp {
    fn default() -> Self {
        Self {
            diag_prior: 2.0,
            off_prior: 1.0,
        }
    }
}

impl TruthInference for ViBp {
    fn name(&self) -> &'static str {
        "VI-BP"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::DecisionMaking
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        let l = cat.l;

        let mut beliefs = cat.majority_posteriors();
        // Double-buffered beliefs plus the variational Dirichlet
        // parameters, all pre-allocated outside the loop.
        let mut next = crowd_stats::DMat::zeros(cat.n, l);
        let mut alpha_hat = vec![vec![vec![0.0f64; l]; l]; cat.m];
        let mut logp = vec![0.0f64; l];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Full expected counts per worker.
            for (w, alpha_w) in alpha_hat.iter_mut().enumerate() {
                for (j, row) in alpha_w.iter_mut().enumerate() {
                    for (k, cell) in row.iter_mut().enumerate() {
                        *cell = if j == k {
                            self.diag_prior
                        } else {
                            self.off_prior
                        };
                    }
                }
                for (task, label) in cat.worker(w) {
                    for j in 0..l {
                        alpha_w[j][label as usize] += beliefs.row(task)[j];
                    }
                }
            }

            // New beliefs from cavity messages.
            for task in 0..cat.n {
                if cat.task_len(task) == 0 {
                    next.row_mut(task).copy_from_slice(beliefs.row(task));
                    continue;
                }
                logp.fill(0.0);
                for (worker, label) in cat.task(task) {
                    for (j, lp) in logp.iter_mut().enumerate() {
                        // Leave task `task`'s own contribution out of the
                        // Dirichlet parameters (the BP cavity).
                        let own = beliefs.row(task)[j];
                        let a_jv = alpha_hat[worker][j][label as usize] - own;
                        let row_total: f64 = alpha_hat[worker][j].iter().sum::<f64>() - own;
                        *lp += digamma(a_jv.max(1e-6)) - digamma(row_total.max(1e-6));
                    }
                }
                log_normalize(&mut logp);
                next.row_mut(task).copy_from_slice(&logp);
            }
            std::mem::swap(&mut beliefs, &mut next);

            if tracker.step(beliefs.data()) {
                break;
            }
        }

        // Report posterior-mean confusions from final beliefs.
        let mut confusion = vec![vec![vec![0.0f64; l]; l]; cat.m];
        for (w, conf_w) in confusion.iter_mut().enumerate() {
            for (j, row) in conf_w.iter_mut().enumerate() {
                for (k, cell) in row.iter_mut().enumerate() {
                    *cell = if j == k {
                        self.diag_prior
                    } else {
                        self.off_prior
                    };
                }
            }
            for (task, label) in cat.worker(w) {
                for j in 0..l {
                    conf_w[j][label as usize] += beliefs.row(task)[j];
                }
            }
            for row in conf_w.iter_mut() {
                let total: f64 = row.iter().sum();
                row.iter_mut().for_each(|c| *c /= total);
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&beliefs, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: confusion
                .into_iter()
                .map(WorkerQuality::Confusion)
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(beliefs.into_nested()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy() {
        let d = toy();
        let r = ViBp::default()
            .infer(&d, &InferenceOptions::seeded(4))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_balanced_decision_data() {
        // The paper: VI-BP ties the confusion-matrix pack at 96% on the
        // balanced D_PosSent.
        let d = crowd_data::datasets::PaperDataset::DPosSent.generate(0.2, 13);
        assert_accuracy_at_least(&ViBp::default(), &d, 0.88);
    }

    #[test]
    fn can_trail_ds_on_imbalanced_data() {
        // Table 6 regression: VI-BP (64.6% accuracy) far below D&S
        // (93.7%) on D_Product. Our simulated D_Product is milder, so we
        // only pin the direction: VI-BP must not beat D&S.
        use crate::methods::Ds;
        let d = small_decision();
        let bp = ViBp::default()
            .infer(&d, &InferenceOptions::seeded(6))
            .unwrap();
        let ds = Ds.infer(&d, &InferenceOptions::seeded(6)).unwrap();
        assert!(accuracy(&d, &bp) <= accuracy(&d, &ds) + 0.02);
    }

    #[test]
    fn rejects_single_choice_and_numeric() {
        assert!(ViBp::default()
            .infer(&small_single(), &InferenceOptions::default())
            .is_err());
        assert!(ViBp::default()
            .infer(&small_numeric(), &InferenceOptions::default())
            .is_err());
    }
}
