//! Median — the robust direct baseline for numeric tasks (Section 5.1).

use crowd_data::{Dataset, TaskType};
use crowd_stats::summary::median;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Num;

/// Per-task median of workers' answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianAgg;

impl TruthInference for MedianAgg {
    fn name(&self) -> &'static str {
        "Median"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::Numeric
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let num = Num::build(self.name(), dataset, options, false)?;
        let estimates: Vec<f64> = (0..num.n)
            .map(|t| {
                let values: Vec<f64> = num.task(t).map(|(_, v)| v).collect();
                median(&values)
            })
            .collect();
        Ok(InferenceResult {
            truths: Num::answers(&estimates),
            worker_quality: vec![WorkerQuality::Unmodeled; num.m],
            iterations: 1,
            converged: true,
            posteriors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn robust_to_one_outlier() {
        let mut b = DatasetBuilder::new("m", TaskType::Numeric, 1, 3);
        b.add_numeric(0, 0, 10.0).unwrap();
        b.add_numeric(0, 1, 11.0).unwrap();
        b.add_numeric(0, 2, 1000.0).unwrap();
        let d = b.build();
        let r = MedianAgg.infer(&d, &InferenceOptions::default()).unwrap();
        assert!((r.truths[0].numeric().unwrap() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn reasonable_on_emotion_sim() {
        let d = small_numeric();
        let r = MedianAgg.infer(&d, &InferenceOptions::default()).unwrap();
        assert_result_sane(&d, &r);
        let e = rmse(&d, &r);
        assert!(e < 19.0, "Median RMSE {e}");
    }

    #[test]
    fn rejects_categorical() {
        let d = toy();
        assert!(MedianAgg.infer(&d, &InferenceOptions::default()).is_err());
    }
}
