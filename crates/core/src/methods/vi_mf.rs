//! VI-MF — Variational inference with mean field (Liu, Peng & Ihler,
//! NIPS 2012).
//!
//! Decision-making tasks (Table 4). Unlike ZC/D&S, which point-estimate
//! worker parameters, VI methods are *Bayesian estimators* (Section
//! 5.3(1), Equation 2): they integrate over worker confusion matrices
//! under Dirichlet priors. Mean field approximates the joint posterior as
//! `q(z) Π_i q(z_i) Π_w q(π^w)` with closed-form coordinate updates:
//!
//! - `q(π^w_j) = Dirichlet(α_j + expected counts of w's answers given
//!   truth j)`;
//! - `q(z_i = j) ∝ exp( Σ_{w∈W_i} E[ln π^w_j,v_iw] )` where
//!   `E[ln π_jk] = ψ(α̂_jk) − ψ(Σ_k α̂_jk)`.

use crowd_data::{Dataset, TaskType};
use crowd_stats::special::digamma;
use crowd_stats::{dist::log_normalize, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat};

/// Mean-field variational inference over the confusion-matrix model.
#[derive(Debug, Clone, Copy)]
pub struct ViMf {
    /// Dirichlet prior pseudo-count on diagonal cells.
    pub diag_prior: f64,
    /// Dirichlet prior pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for ViMf {
    fn default() -> Self {
        // The "workers are better than chance" prior used by Liu et al.
        Self { diag_prior: 2.0, off_prior: 1.0 }
    }
}

impl TruthInference for ViMf {
    fn name(&self) -> &'static str {
        "VI-MF"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::DecisionMaking
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(self.name(), dataset, options, self.supports(dataset.task_type()))?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        let l = cat.l;

        // Initial posteriors: majority vote, possibly sharpened by
        // qualification-test accuracies via one weighted-vote pass.
        let mut post = cat.majority_posteriors();
        if let crate::framework::QualityInit::Qualification(_) = &options.quality_init {
            let acc = initial_accuracy(options, cat.m, 0.7);
            for task in 0..cat.n {
                if cat.golden[task].is_some() || cat.by_task[task].is_empty() {
                    continue;
                }
                let mut logp = vec![0.0f64; l];
                for &(worker, label) in &cat.by_task[task] {
                    let a = acc[worker];
                    for (z, lp) in logp.iter_mut().enumerate() {
                        let p = if z == label as usize { a } else { (1.0 - a) / (l - 1) as f64 };
                        *lp += p.max(1e-9).ln();
                    }
                }
                log_normalize(&mut logp);
                post[task] = logp;
            }
            cat.clamp_golden(&mut post);
        }

        // Variational Dirichlet parameters per worker row.
        let mut alpha_hat = vec![vec![vec![0.0f64; l]; l]; cat.m];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Update q(π^w): prior + expected counts.
            for w in 0..cat.m {
                for j in 0..l {
                    for k in 0..l {
                        alpha_hat[w][j][k] =
                            if j == k { self.diag_prior } else { self.off_prior };
                    }
                }
                for &(task, label) in &cat.by_worker[w] {
                    for j in 0..l {
                        alpha_hat[w][j][label as usize] += post[task][j];
                    }
                }
            }

            // Expected log-confusions.
            let eln: Vec<Vec<Vec<f64>>> = alpha_hat
                .iter()
                .map(|rows| {
                    rows.iter()
                        .map(|row| {
                            let total: f64 = row.iter().sum();
                            let d_total = digamma(total);
                            row.iter().map(|&a| digamma(a) - d_total).collect()
                        })
                        .collect()
                })
                .collect();

            // Update q(z_i).
            for task in 0..cat.n {
                if cat.golden[task].is_some() || cat.by_task[task].is_empty() {
                    continue;
                }
                let mut logp = vec![0.0f64; l];
                for &(worker, label) in &cat.by_task[task] {
                    for (j, lp) in logp.iter_mut().enumerate() {
                        *lp += eln[worker][j][label as usize];
                    }
                }
                log_normalize(&mut logp);
                post[task] = logp;
            }
            cat.clamp_golden(&mut post);

            let flat: Vec<f64> = post.iter().flatten().copied().collect();
            if tracker.step(&flat) {
                break;
            }
        }

        // Posterior-mean confusion matrices for reporting.
        let confusion: Vec<Vec<Vec<f64>>> = alpha_hat
            .iter()
            .map(|rows| {
                rows.iter()
                    .map(|row| {
                        let total: f64 = row.iter().sum();
                        row.iter().map(|&a| a / total).collect()
                    })
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: confusion.into_iter().map(WorkerQuality::Confusion).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy_example() {
        let d = toy();
        let r = ViMf::default().infer(&d, &InferenceOptions::seeded(2)).unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_balanced_decision_data() {
        let d = crowd_data::datasets::PaperDataset::DPosSent.generate(0.2, 31);
        assert_accuracy_at_least(&ViMf::default(), &d, 0.90);
    }

    #[test]
    fn reasonable_on_imbalanced_data() {
        // Table 6 shape: VI-MF (83.9%) lands *below* MV (89.7%) on the
        // imbalanced D_Product; our simulator reproduces that gap.
        let d = small_decision();
        assert_accuracy_at_least(&ViMf::default(), &d, 0.70);
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.25, 2);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(2)
        };
        let r = ViMf::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn rejects_single_choice() {
        // Table 4 lists VI methods under decision-making only.
        let d = small_single();
        assert!(ViMf::default().infer(&d, &InferenceOptions::default()).is_err());
    }
}
