//! VI-MF — Variational inference with mean field (Liu, Peng & Ihler,
//! NIPS 2012).
//!
//! Decision-making tasks (Table 4). Unlike ZC/D&S, which point-estimate
//! worker parameters, VI methods are *Bayesian estimators* (Section
//! 5.3(1), Equation 2): they integrate over worker confusion matrices
//! under Dirichlet priors. Mean field approximates the joint posterior as
//! `q(z) Π_i q(z_i) Π_w q(π^w)` with closed-form coordinate updates:
//!
//! - `q(π^w_j) = Dirichlet(α_j + expected counts of w's answers given
//!   truth j)`;
//! - `q(z_i = j) ∝ exp( Σ_{w∈W_i} E[ln π^w_j,v_iw] )` where
//!   `E[ln π_jk] = ψ(α̂_jk) − ψ(Σ_k α̂_jk)`.

use crowd_data::{Dataset, TaskType};
use crowd_stats::special::digamma;
use crowd_stats::{fused_posterior_row, fused_two_term_row, ln_map_into, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat};

/// Mean-field variational inference over the confusion-matrix model.
#[derive(Debug, Clone, Copy)]
pub struct ViMf {
    /// Dirichlet prior pseudo-count on diagonal cells.
    pub diag_prior: f64,
    /// Dirichlet prior pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for ViMf {
    fn default() -> Self {
        // The "workers are better than chance" prior used by Liu et al.
        Self {
            diag_prior: 2.0,
            off_prior: 1.0,
        }
    }
}

impl TruthInference for ViMf {
    fn name(&self) -> &'static str {
        "VI-MF"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::DecisionMaking
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        let l = cat.l;

        // Initial posteriors: majority vote, possibly sharpened by
        // qualification-test accuracies via one weighted-vote pass.
        let mut post = cat.majority_posteriors();
        if let crate::framework::QualityInit::Qualification(_) = &options.quality_init {
            let acc = initial_accuracy(options, cat.m, 0.7);
            // Per-worker correct/wrong log terms, tabulated once as two
            // fused fill-and-ln maps (elementwise identical to the old
            // per-answer `p.max(1e-9).ln()`), instead of ℓ `ln`s per
            // answer.
            let mut ln_correct = vec![0.0f64; cat.m];
            let mut ln_wrong = vec![0.0f64; cat.m];
            ln_map_into(&mut ln_correct, |w| acc[w].max(1e-9));
            ln_map_into(&mut ln_wrong, |w| {
                ((1.0 - acc[w]) / (l - 1) as f64).max(1e-9)
            });
            for task in 0..cat.n {
                if cat.golden[task].is_some() || cat.task_len(task) == 0 {
                    continue;
                }
                let row = post.row_mut(task);
                row.fill(0.0);
                fused_two_term_row(
                    row,
                    cat.task(task).map(|(worker, label)| {
                        (label as usize, ln_correct[worker], ln_wrong[worker])
                    }),
                );
            }
            cat.clamp_golden(&mut post);
        }

        // Variational Dirichlet parameters per worker row, flat: worker
        // `w`, truth row `j` at DMat row `w·ℓ + j`. `eln` holds the
        // expected log-confusions in the same layout. Both update in
        // place — the loop below allocates nothing per iteration.
        let mut alpha_hat = crowd_stats::DMat::zeros(cat.m * l, l);
        let mut eln = crowd_stats::DMat::zeros(cat.m * l, l);
        let zero_prior = vec![0.0f64; l];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Update q(π^w): prior + expected counts.
            for w in 0..cat.m {
                for j in 0..l {
                    let row = alpha_hat.row_mut(w * l + j);
                    row.fill(self.off_prior);
                    row[j] = self.diag_prior;
                }
                for (task, label) in cat.worker(w) {
                    let post_row = post.row(task);
                    for j in 0..l {
                        alpha_hat.row_mut(w * l + j)[label as usize] += post_row[j];
                    }
                }
            }

            // Expected log-confusions.
            for r in 0..cat.m * l {
                let a_row = alpha_hat.row(r);
                let total: f64 = a_row.iter().sum();
                let d_total = digamma(total);
                let e_row = eln.row_mut(r);
                for (e, &a) in e_row.iter_mut().zip(a_row) {
                    *e = digamma(a) - d_total;
                }
            }

            // Update q(z_i): one fused posterior-row pass per task —
            // zero init, table gather against `eln` walking each
            // worker's ℓ×ℓ block column `label` by stride (the same
            // access pattern as the D&S E-step), log-sum-exp and
            // normalize, written straight into the posterior row.
            let el = eln.data();
            let stride = l * l;
            {
                let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
                let mut fused_rows = 0u64;
                for task in 0..cat.n {
                    if cat.golden[task].is_some() || cat.task_len(task) == 0 {
                        continue;
                    }
                    fused_posterior_row(
                        post.row_mut(task),
                        &zero_prior,
                        el,
                        cat.task_row(task)
                            .iter()
                            .map(|&(worker, label)| worker as usize * stride + label as usize),
                    );
                    fused_rows += 1;
                }
                crate::methods::obs_fused_rows().add(fused_rows);
            }
            cat.clamp_golden(&mut post);

            if tracker.step(post.data()) {
                break;
            }
        }

        // Posterior-mean confusion matrices for reporting.
        let confusion: Vec<Vec<Vec<f64>>> = (0..cat.m)
            .map(|w| {
                (0..l)
                    .map(|j| {
                        let row = alpha_hat.row(w * l + j);
                        let total: f64 = row.iter().sum();
                        row.iter().map(|&a| a / total).collect()
                    })
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: confusion
                .into_iter()
                .map(WorkerQuality::Confusion)
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy_example() {
        let d = toy();
        let r = ViMf::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_balanced_decision_data() {
        let d = crowd_data::datasets::PaperDataset::DPosSent.generate(0.2, 31);
        assert_accuracy_at_least(&ViMf::default(), &d, 0.90);
    }

    #[test]
    fn reasonable_on_imbalanced_data() {
        // Table 6 shape: VI-MF (83.9%) lands *below* MV (89.7%) on the
        // imbalanced D_Product; our simulator reproduces that gap (the
        // bar is "clearly above chance, clearly below MV", and the exact
        // margin depends on the simulated instance).
        let d = small_decision();
        assert_accuracy_at_least(&ViMf::default(), &d, 0.60);
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.25, 2);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(2)
        };
        let r = ViMf::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn rejects_single_choice() {
        // Table 4 lists VI methods under decision-making only.
        let d = small_single();
        assert!(ViMf::default()
            .infer(&d, &InferenceOptions::default())
            .is_err());
    }
}
