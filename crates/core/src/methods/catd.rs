//! CATD — Confidence-Aware Truth Discovery (Li et al., PVLDB 2014).
//!
//! Models worker probability *plus confidence* (Section 4.2.4): a worker
//! who answered only a few tasks gets an uncertain quality estimate, so
//! the estimate is scaled by the chi-squared quantile
//! `X²(0.975, |T^w|)` — the more tasks answered, the larger the factor.
//! The two coordinate-descent steps are:
//!
//! - quality: `q^w = X²(0.975, |T^w|) / Σ_{t_i∈T^w} d(v_i^w, v*_i)`;
//! - truth: `q`-weighted vote (categorical) or weighted mean (numeric,
//!   variance-normalised distances as in the original paper).
//!
//! Supports decision-making, single-choice and numeric tasks (Table 4),
//! qualification initialisation, and golden tasks.

use crowd_data::{Dataset, TaskType};
use crowd_stats::chi2::chi2_quantile_975;
use crowd_stats::summary::variance;
use crowd_stats::ConvergenceTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat, Num};

/// CATD: chi-squared-scaled reliability weights.
#[derive(Debug, Clone, Copy)]
pub struct Catd {
    /// Additive distance floor preventing division by zero for perfect
    /// workers.
    pub epsilon: f64,
}

impl Default for Catd {
    fn default() -> Self {
        Self { epsilon: 0.1 }
    }
}

impl TruthInference for Catd {
    fn name(&self) -> &'static str {
        "CATD"
    }

    fn supports(&self, _task_type: TaskType) -> bool {
        true
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(self.name(), dataset, options, true)?;
        if dataset.task_type().is_categorical() {
            self.infer_categorical(dataset, options)
        } else {
            self.infer_numeric(dataset, options)
        }
    }
}

impl Catd {
    fn infer_categorical(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let cat = Cat::build("CATD", dataset, options, true)?;
        let mut rng = StdRng::seed_from_u64(options.seed);
        let chi: Vec<f64> = (0..cat.m)
            .map(|w| chi2_quantile_975(cat.worker_len(w)))
            .collect();

        let mut quality: Vec<f64> = match &options.quality_init {
            crate::framework::QualityInit::Uniform => vec![1.0; cat.m],
            _ => initial_accuracy(options, cat.m, 0.7),
        };
        let mut truths: Vec<u8> = vec![0; cat.n];
        // Pre-allocated scratch: vote scores, tie list, and the
        // convergence vector — the loop allocates nothing per iteration.
        let mut scores = vec![0.0f64; cat.l];
        let mut ties: Vec<u8> = Vec::with_capacity(cat.l);
        let mut params = vec![0.0f64; cat.n];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            for task in 0..cat.n {
                if let Some(g) = cat.golden[task] {
                    truths[task] = g;
                    continue;
                }
                scores.fill(0.0);
                for (worker, label) in cat.task(task) {
                    scores[label as usize] += quality[worker];
                }
                let best = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ties.clear();
                ties.extend(
                    scores
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| (s - best).abs() < 1e-12)
                        .map(|(i, _)| i as u8),
                );
                truths[task] = if ties.len() == 1 {
                    ties[0]
                } else {
                    ties[rng.gen_range(0..ties.len())]
                };
            }

            for w in 0..cat.m {
                let mistakes = cat
                    .worker(w)
                    .filter(|&(task, label)| truths[task] != label)
                    .count() as f64;
                quality[w] = chi[w] / (mistakes + self.epsilon);
            }
            // Normalise so the weight scale (and the convergence check)
            // stays comparable across iterations.
            let max_q = quality.iter().copied().fold(0.0f64, f64::max).max(1e-12);
            quality.iter_mut().for_each(|q| *q /= max_q);

            for (p, &t) in params.iter_mut().zip(&truths) {
                *p = t as f64;
            }
            if tracker.step(&params) {
                break;
            }
        }

        Ok(InferenceResult {
            truths: Cat::answers(&truths),
            worker_quality: quality.into_iter().map(WorkerQuality::Weight).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: None,
        })
    }

    fn infer_numeric(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let num = Num::build("CATD", dataset, options, true)?;
        let chi: Vec<f64> = (0..num.m)
            .map(|w| chi2_quantile_975(num.worker_len(w)))
            .collect();
        let mut vs: Vec<f64> = Vec::new();
        let task_var: Vec<f64> = (0..num.n)
            .map(|t| {
                vs.clear();
                vs.extend(num.task(t).map(|(_, v)| v));
                variance(&vs).max(1e-6)
            })
            .collect();

        let mut quality: Vec<f64> = match &options.quality_init {
            crate::framework::QualityInit::Uniform => vec![1.0; num.m],
            _ => initial_accuracy(options, num.m, 0.7),
        };
        let mut truths = num.mean_estimates();
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            for task in 0..num.n {
                if let Some(g) = num.golden[task] {
                    truths[task] = g;
                    continue;
                }
                if num.task_len(task) == 0 {
                    continue;
                }
                let mut wsum = 0.0;
                let mut vsum = 0.0;
                for (worker, v) in num.task(task) {
                    wsum += quality[worker];
                    vsum += quality[worker] * v;
                }
                if wsum > 0.0 {
                    truths[task] = vsum / wsum;
                }
            }

            for w in 0..num.m {
                let dist: f64 = num
                    .worker(w)
                    .map(|(task, v)| (v - truths[task]).powi(2) / task_var[task])
                    .sum();
                quality[w] = chi[w] / (dist + self.epsilon);
            }
            let max_q = quality.iter().copied().fold(0.0f64, f64::max).max(1e-12);
            quality.iter_mut().for_each(|q| *q /= max_q);

            if tracker.step(&truths) {
                break;
            }
        }

        Ok(InferenceResult {
            truths: Num::answers(&truths),
            worker_quality: quality.into_iter().map(WorkerQuality::Weight).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn solves_toy_example() {
        let d = toy();
        let r = Catd::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 5.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn good_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Catd::default(), &d, 0.80);
    }

    #[test]
    fn confidence_scaling_favours_prolific_workers() {
        // Two workers with identical *rates* of error, one with 10× the
        // answers: the prolific one must end up with the larger weight.
        let mut b = DatasetBuilder::new("conf", TaskType::DecisionMaking, 40, 3);
        // Worker 0 answers 40 tasks, worker 1 answers 4, both perfectly
        // agreeing with worker 2 (so distances are 0 and weights are
        // driven purely by the chi-squared factor).
        for t in 0..40 {
            b.add_label(t, 0, (t % 2) as u8).unwrap();
            b.add_label(t, 2, (t % 2) as u8).unwrap();
        }
        for t in 0..4 {
            b.add_label(t, 1, (t % 2) as u8).unwrap();
        }
        let d = b.build();
        let r = Catd::default()
            .infer(&d, &InferenceOptions::seeded(0))
            .unwrap();
        let q0 = r.worker_quality[0].scalar().unwrap();
        let q1 = r.worker_quality[1].scalar().unwrap();
        assert!(
            q0 > q1,
            "prolific worker should outweigh sparse one: {q0} vs {q1}"
        );
    }

    #[test]
    fn numeric_runs_and_is_reasonable() {
        let d = small_numeric();
        let r = Catd::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        assert_result_sane(&d, &r);
        let e = rmse(&d, &r);
        assert!(e < 18.0, "CATD numeric RMSE {e}");
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 3);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(3)
        };
        let r = Catd::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }
}
