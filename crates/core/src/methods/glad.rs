//! GLAD — Whitehill et al. (NIPS 2009): "Whose vote should count more".
//!
//! The only method in the benchmark with a *task model* besides Minimax:
//! each task has a difficulty `1/β_i` (`β_i > 0`, larger = easier) and
//! each worker an ability `α_w ∈ ℝ`; the probability a worker answers
//! correctly is `σ(α_w · β_i)` (Section 4.1.1). Errors spread uniformly
//! over the remaining `ℓ − 1` choices (the standard multi-class
//! generalisation). Inference is EM with gradient ascent in the M-step —
//! which is also why GLAD is orders of magnitude slower than D&S in
//! Table 6.

use crowd_data::{Dataset, TaskType};
use crowd_stats::kernels;
use crowd_stats::{
    exp_map_into, fused_two_term_row, ln_map_into, sigmoid_map_into, ConvergenceTracker,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat};

/// GLAD: worker ability × task difficulty EM.
///
/// ## Iteration cap at benchmark scale
///
/// At `CROWD_BENCH_SCALE=0.1`, GLAD reports `converged: false` at the
/// 100-iteration cap on the larger datasets (D_Product, S_Rel,
/// S_Adult) while converging on the small D_PosSent. This is expected,
/// not a defect: the shared [`ConvergenceTracker`] watches the mean
/// absolute change of the full parameter vector `(α, ln β)`, and with
/// thousands of per-task difficulties each nudged by
/// `learning_rate · ∂Q/∂ln β` every M-step under only a weak Gaussian
/// pull (`prior_precision = 0.01`), the mean parameter motion decays
/// slowly — `ln β` keeps creeping long after the label posteriors have
/// stabilised (the labels at the cap are pinned by the equivalence
/// fixtures). A larger step size makes the gradient ascent oscillate
/// against the ±8/±4 clamps instead of settling, and a smaller one
/// converges even later, so the cap is the documented operating point;
/// the bench artifact records the cap (`max_iterations`) and the
/// regression gate fails any row that *was* converging and stops
/// (`crowd-bench-check`'s converged-flip rule), which fences this
/// documented state from silently spreading.
#[derive(Debug, Clone, Copy)]
pub struct Glad {
    /// Gradient-ascent learning rate in the M-step.
    pub learning_rate: f64,
    /// Gradient steps per M-step.
    pub gradient_steps: usize,
    /// Gaussian prior precision pulling `α_w` toward 1 and `ln β_i`
    /// toward 0 (regularisation used in the reference implementation).
    pub prior_precision: f64,
}

impl Default for Glad {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            gradient_steps: 12,
            prior_precision: 0.01,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + kernels::exp(-x))
    } else {
        let e = kernels::exp(x);
        e / (1.0 + e)
    }
}

impl TruthInference for Glad {
    fn name(&self) -> &'static str {
        "GLAD"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        self.infer_view(&cat, options)
    }
}

impl Glad {
    /// Run GLAD directly on a prebuilt categorical view — the streaming
    /// entry point (see `Ds::infer_view`). A warm start resumes the
    /// worker abilities `α_w` (recovered from the previous run's reported
    /// `σ(α_w)`); task difficulties `β_i` restart at 1 — they are not
    /// part of the reported state — so GLAD re-converges warm on the
    /// worker side only.
    pub fn infer_view(
        &self,
        cat: &Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        if cat.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(cat.m, options)?;
        let lm1 = (cat.l - 1).max(1) as f64;

        // α_w from qualification accuracy via the inverse of σ at β = 1
        // (log-odds against uniform error), else 1.0.
        let init_acc = initial_accuracy(options, cat.m, sigmoid(1.0));
        let mut alpha: Vec<f64> = init_acc
            .iter()
            .map(|&a| kernels::ln(a / (1.0 - a)).clamp(-4.0, 4.0))
            .collect();
        if let Some(warm) = &options.warm_start {
            for (w, a) in alpha.iter_mut().enumerate() {
                if let Some(p) = warm.worker_quality.get(w).and_then(WorkerQuality::scalar) {
                    // σ⁻¹ round-trips the reported quality back to α; the
                    // wider clamp matches the loop's own ±8 bound.
                    let p = p.clamp(1e-4, 1.0 - 1e-4);
                    *a = kernels::ln(p / (1.0 - p)).clamp(-8.0, 8.0);
                }
            }
        }
        // ln β_i = 0 (difficulty 1).
        let mut log_beta = vec![0.0f64; cat.n];

        let mut post = cat.majority_posteriors();
        // Pre-allocated scratch: M-step gradients, the convergence
        // parameter vector, the per-task difficulty table `beta`, and the
        // answer-major batch buffers (`sig` holds every answer's
        // σ(α_w·β_i); `lc`/`lw` the correct/wrong log terms). Batching
        // runs over the *whole answer log* in task-major order, which
        // keeps the kernel sweeps long even when individual tasks have
        // only a handful of answers. The flat `answer_workers`/
        // `answer_tasks` gather indices (built once — the task-major
        // answer order never changes) let the σ∘(α·β) refresh run as one
        // fused fill-and-squash pass. The loop below allocates nothing
        // per iteration.
        let mut grad_alpha = vec![0.0f64; cat.m];
        let mut grad_logbeta = vec![0.0f64; cat.n];
        let mut beta = vec![0.0f64; cat.n];
        let num_answers = cat.num_answers();
        let mut sig = vec![0.0f64; num_answers];
        let mut lc = vec![0.0f64; num_answers];
        let mut lw = vec![0.0f64; num_answers];
        let mut answer_workers = Vec::with_capacity(num_answers);
        let mut answer_tasks = Vec::with_capacity(num_answers);
        for task in 0..cat.n {
            for &(worker, _) in cat.task_row(task) {
                answer_workers.push(worker);
                answer_tasks.push(task as u32);
            }
        }
        let mut params: Vec<f64> = Vec::with_capacity(cat.m + cat.n);
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // Fill `sig` with σ(α_w·β_i) for every answer (task-major) as one
        // fused gather-multiply-sigmoid pass. Values are bit-identical to
        // the per-answer scalar `sigmoid(alpha[w] * beta)`.
        fn fill_sigmoids(
            sig: &mut [f64],
            beta: &[f64],
            alpha: &[f64],
            answer_workers: &[u32],
            answer_tasks: &[u32],
        ) {
            sigmoid_map_into(sig, |i| {
                alpha[answer_workers[i] as usize] * beta[answer_tasks[i] as usize]
            });
        }

        loop {
            // E-step: Pr(z | answers, α, β). The difficulty table and
            // every answer's correctness probability refresh as fused
            // whole-log sweeps (one exp pass, one sigmoid pass, two ln
            // passes — 2 lns per answer instead of the ℓ the per-element
            // form paid); each posterior row is then one fused two-term
            // accumulate + normalize. Elementwise identical to the
            // scalar form.
            exp_map_into(&mut beta, |i| log_beta[i]);
            fill_sigmoids(&mut sig, &beta, &alpha, &answer_workers, &answer_tasks);
            ln_map_into(&mut lc, |i| sig[i].clamp(1e-9, 1.0 - 1e-9));
            ln_map_into(&mut lw, |i| (1.0 - sig[i].clamp(1e-9, 1.0 - 1e-9)) / lm1);
            {
                let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
                let mut fused_rows = 0u64;
                let mut cursor = 0usize;
                for task in 0..cat.n {
                    let row = cat.task_row(task);
                    let deg = row.len();
                    if cat.golden[task].is_some() || deg == 0 {
                        cursor += deg;
                        continue;
                    }
                    let out = post.row_mut(task);
                    out.fill(0.0);
                    fused_two_term_row(
                        out,
                        row.iter()
                            .zip(
                                lc[cursor..cursor + deg]
                                    .iter()
                                    .zip(&lw[cursor..cursor + deg]),
                            )
                            .map(|(&(_, label), (&lci, &lwi))| (label as usize, lci, lwi)),
                    );
                    fused_rows += 1;
                    cursor += deg;
                }
                crate::methods::obs_fused_rows().add(fused_rows);
            }
            cat.clamp_golden(&mut post);

            // M-step: gradient ascent on the expected complete-data
            // log-likelihood Q(α, ln β).
            //
            // With p_iw = Pr(worker w correct on i | posterior) =
            // post[i][v_iw], and s = σ(α_w β_i):
            //   ∂Q/∂α_w    = Σ_i β_i (p_iw − s_iw) − λ(α_w − 1)
            //   ∂Q/∂ln β_i = β_i Σ_w α_w (p_iw − s_iw) − λ ln β_i
            //
            // The β table and σ evaluations batch over the whole answer
            // log exactly as in the E-step; accumulation order is
            // unchanged.
            for _ in 0..self.gradient_steps {
                grad_alpha.fill(0.0);
                grad_logbeta.fill(0.0);
                exp_map_into(&mut beta, |i| log_beta[i]);
                fill_sigmoids(&mut sig, &beta, &alpha, &answer_workers, &answer_tasks);
                let mut cursor = 0usize;
                for task in 0..cat.n {
                    let b = beta[task];
                    let post_row = post.row(task);
                    let row = cat.task_row(task);
                    let mut g_beta = 0.0;
                    for (&(worker, label), &s) in row.iter().zip(&sig[cursor..cursor + row.len()]) {
                        let worker = worker as usize;
                        let p = post_row[label as usize];
                        grad_alpha[worker] += b * (p - s);
                        g_beta += b * alpha[worker] * (p - s);
                    }
                    grad_logbeta[task] += g_beta;
                    cursor += row.len();
                }
                for (w, g) in grad_alpha.iter().enumerate() {
                    alpha[w] += self.learning_rate * (g - self.prior_precision * (alpha[w] - 1.0));
                    alpha[w] = alpha[w].clamp(-8.0, 8.0);
                }
                for (t, g) in grad_logbeta.iter().enumerate() {
                    log_beta[t] += self.learning_rate * (g - self.prior_precision * log_beta[t]);
                    log_beta[t] = log_beta[t].clamp(-4.0, 4.0);
                }
            }

            params.clear();
            params.extend_from_slice(&alpha);
            params.extend_from_slice(&log_beta);
            if tracker.step(&params) {
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            // Report σ(α) — the worker's correctness probability on a
            // difficulty-1 task — as the scalar quality.
            worker_quality: alpha
                .into_iter()
                .map(|a| WorkerQuality::Probability(sigmoid(a)))
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }

    /// Run GLAD on a task-range sharded view. GLAD is task-major
    /// throughout — the E-step posterior accumulation, the σ table
    /// fills, and the M-step gradient scatter all walk task rows in
    /// ascending task order and never a worker row — so iterating shards
    /// in ascending order with a global answer cursor (the shard's
    /// [`crate::views::ShardedView::shard_entry_offset`]) reproduces the
    /// flat walk **bit-for-bit on any record order**, at any shard
    /// count. The per-shard E/M passes are timed into the `core.shard.*`
    /// histograms; the worker-side gradients are the one cross-shard
    /// accumulation, and they fold in the same task-major visit order as
    /// the flat loop.
    pub fn infer_sharded(
        &self,
        view: &crate::views::ShardedView,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        if view.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(view.m, options)?;
        let lm1 = (view.l - 1).max(1) as f64;

        let init_acc = initial_accuracy(options, view.m, sigmoid(1.0));
        let mut alpha: Vec<f64> = init_acc
            .iter()
            .map(|&a| kernels::ln(a / (1.0 - a)).clamp(-4.0, 4.0))
            .collect();
        if let Some(warm) = &options.warm_start {
            for (w, a) in alpha.iter_mut().enumerate() {
                if let Some(p) = warm.worker_quality.get(w).and_then(WorkerQuality::scalar) {
                    let p = p.clamp(1e-4, 1.0 - 1e-4);
                    *a = kernels::ln(p / (1.0 - p)).clamp(-8.0, 8.0);
                }
            }
        }
        let mut log_beta = vec![0.0f64; view.n];

        let mut post = view.majority_posteriors();
        let mut grad_alpha = vec![0.0f64; view.m];
        let mut grad_logbeta = vec![0.0f64; view.n];
        let mut beta = vec![0.0f64; view.n];
        let num_answers = view.num_answers();
        let mut sig = vec![0.0f64; num_answers];
        let mut lc = vec![0.0f64; num_answers];
        let mut lw = vec![0.0f64; num_answers];
        // Flat gather indices in the shard-concatenated task-major order
        // (which *is* the flat task-major order), built once.
        let mut answer_workers = Vec::with_capacity(num_answers);
        let mut answer_tasks = Vec::with_capacity(num_answers);
        for s in 0..view.num_shards() {
            let range = view.shard_tasks(s);
            for task in range.clone() {
                for &(worker, _) in view.shard_task_row(s, task - range.start) {
                    answer_workers.push(worker);
                    answer_tasks.push(task as u32);
                }
            }
        }
        let mut params: Vec<f64> = Vec::with_capacity(view.m + view.n);
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // Same fused σ(α_w·β_i) refresh as the flat path.
        fn fill_sigmoids(
            sig: &mut [f64],
            beta: &[f64],
            alpha: &[f64],
            answer_workers: &[u32],
            answer_tasks: &[u32],
        ) {
            sigmoid_map_into(sig, |i| {
                alpha[answer_workers[i] as usize] * beta[answer_tasks[i] as usize]
            });
        }

        loop {
            exp_map_into(&mut beta, |i| log_beta[i]);
            fill_sigmoids(&mut sig, &beta, &alpha, &answer_workers, &answer_tasks);
            ln_map_into(&mut lc, |i| sig[i].clamp(1e-9, 1.0 - 1e-9));
            ln_map_into(&mut lw, |i| (1.0 - sig[i].clamp(1e-9, 1.0 - 1e-9)) / lm1);
            {
                let _timer = crate::views::obs_estep_seconds().start_timer();
                let _ktimer = crate::methods::obs_kernel_estep_seconds().start_timer();
                let mut fused_rows = 0u64;
                for s in 0..view.num_shards() {
                    let mut cursor = view.shard_entry_offset(s);
                    let range = view.shard_tasks(s);
                    for task in range.clone() {
                        let row = view.shard_task_row(s, task - range.start);
                        let deg = row.len();
                        if view.golden()[task].is_some() || deg == 0 {
                            cursor += deg;
                            continue;
                        }
                        let out = post.row_mut(task);
                        out.fill(0.0);
                        fused_two_term_row(
                            out,
                            row.iter()
                                .zip(
                                    lc[cursor..cursor + deg]
                                        .iter()
                                        .zip(&lw[cursor..cursor + deg]),
                                )
                                .map(|(&(_, label), (&lci, &lwi))| (label as usize, lci, lwi)),
                        );
                        fused_rows += 1;
                        cursor += deg;
                    }
                }
                crate::methods::obs_fused_rows().add(fused_rows);
            }
            view.clamp_golden(&mut post);

            {
                let _timer = crate::views::obs_reduce_seconds().start_timer();
                for _ in 0..self.gradient_steps {
                    grad_alpha.fill(0.0);
                    grad_logbeta.fill(0.0);
                    exp_map_into(&mut beta, |i| log_beta[i]);
                    fill_sigmoids(&mut sig, &beta, &alpha, &answer_workers, &answer_tasks);
                    for s in 0..view.num_shards() {
                        let mut cursor = view.shard_entry_offset(s);
                        let range = view.shard_tasks(s);
                        for task in range.clone() {
                            let b = beta[task];
                            let post_row = post.row(task);
                            let row = view.shard_task_row(s, task - range.start);
                            let mut g_beta = 0.0;
                            for (&(worker, label), &sv) in
                                row.iter().zip(&sig[cursor..cursor + row.len()])
                            {
                                let worker = worker as usize;
                                let p = post_row[label as usize];
                                grad_alpha[worker] += b * (p - sv);
                                g_beta += b * alpha[worker] * (p - sv);
                            }
                            grad_logbeta[task] += g_beta;
                            cursor += row.len();
                        }
                    }
                    for (w, g) in grad_alpha.iter().enumerate() {
                        alpha[w] +=
                            self.learning_rate * (g - self.prior_precision * (alpha[w] - 1.0));
                        alpha[w] = alpha[w].clamp(-8.0, 8.0);
                    }
                    for (t, g) in grad_logbeta.iter().enumerate() {
                        log_beta[t] +=
                            self.learning_rate * (g - self.prior_precision * log_beta[t]);
                        log_beta[t] = log_beta[t].clamp(-4.0, 4.0);
                    }
                }
            }

            params.clear();
            params.extend_from_slice(&alpha);
            params.extend_from_slice(&log_beta);
            if tracker.step(&params) {
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = view.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: alpha
                .into_iter()
                .map(|a| WorkerQuality::Probability(sigmoid(a)))
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy_example() {
        let d = toy();
        let r = Glad::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn good_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Glad::default(), &d, 0.77);
    }

    #[test]
    fn ranks_better_workers_higher() {
        let d = small_decision();
        let r = Glad::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        // Correlate estimated quality with empirical accuracy.
        let mut pairs = Vec::new();
        for w in 0..d.num_workers() {
            let mut total = 0usize;
            let mut correct = 0usize;
            for rec in d.answers_by_worker(w) {
                if let Some(t) = d.truth(rec.task) {
                    total += 1;
                    if rec.answer == t {
                        correct += 1;
                    }
                }
            }
            if total >= 10 {
                let emp = correct as f64 / total as f64;
                pairs.push((r.worker_quality[w].scalar().unwrap(), emp));
            }
        }
        // Spearman-ish check: split on empirical median, compare means.
        let med = {
            let mut e: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            e.sort_by(|a, b| a.partial_cmp(b).unwrap());
            e[e.len() / 2]
        };
        let hi: Vec<f64> = pairs.iter().filter(|p| p.1 > med).map(|p| p.0).collect();
        let lo: Vec<f64> = pairs.iter().filter(|p| p.1 <= med).map(|p| p.0).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&hi) > mean(&lo),
            "estimated quality not ordered: hi {} lo {}",
            mean(&hi),
            mean(&lo)
        );
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.25, 8);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(8)
        };
        let r = Glad::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn warm_start_keeps_fixed_point_and_does_not_slow_down() {
        use crate::framework::WarmStart;
        let d = small_decision();
        let cold = Glad::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        let opts = InferenceOptions {
            warm_start: Some(WarmStart::from_result(&cold)),
            ..InferenceOptions::seeded(2)
        };
        let warm = Glad::default().infer(&d, &opts).unwrap();
        // GLAD resumes only the worker side (β restarts at 1) and its
        // gradient M-step often exhausts the iteration cap rather than
        // converging, so the guarantee is weaker than the D&S family's:
        // high label agreement and matching quality, with no extra
        // iterations.
        let agree = warm
            .truths
            .iter()
            .zip(&cold.truths)
            .filter(|(a, b)| a == b)
            .count() as f64
            / cold.truths.len() as f64;
        assert!(agree >= 0.93, "label agreement {agree}");
        let (aw, ac) = (accuracy(&d, &warm), accuracy(&d, &cold));
        assert!(aw >= ac - 0.02, "warm accuracy {aw} vs cold {ac}");
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn rejects_numeric() {
        let d = small_numeric();
        assert!(Glad::default()
            .infer(&d, &InferenceOptions::default())
            .is_err());
    }
}
