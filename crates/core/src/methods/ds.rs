//! D&S — Dawid & Skene (Applied Statistics, 1979).
//!
//! The classical confusion-matrix EM (Section 5.3(2)): each worker is an
//! `ℓ × ℓ` row-stochastic matrix `q^w` with `q^w[j][k] = Pr(answer k |
//! truth j)`, plus a class prior. The paper's headline recommendation:
//! "we recommend the classical method D&S, which is robust in practice"
//! (Section 7).
//!
//! The implementation is shared with [`super::Lfc`], which is D&S plus
//! Dirichlet (Beta) priors on the confusion rows; D&S itself uses a tiny
//! symmetric smoothing count purely for numerical safety.

use crowd_data::{Dataset, TaskType};
use crowd_stats::{dist::log_normalize, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, QualityInit,
    TruthInference, WorkerQuality,
};
use crate::views::{initial_accuracy, Cat};

/// Shared EM engine for D&S-family methods.
///
/// `diag_prior`/`off_prior` are Dirichlet pseudo-counts added to the
/// diagonal/off-diagonal confusion cells in the M-step; `prior_strength`
/// scales both.
pub(crate) struct DsEngine {
    pub method: &'static str,
    pub diag_prior: f64,
    pub off_prior: f64,
}

impl DsEngine {
    pub fn run(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let cat = Cat::build(self.method, dataset, options, true)?;
        let l = cat.l;

        // Initial posteriors: majority vote; with qualification scores we
        // instead seed per-worker confusion matrices and run an E-step
        // first (the worker knowledge arrives through the matrices).
        let mut post = cat.majority_posteriors();
        let mut confusion: Vec<Vec<Vec<f64>>> = match &options.quality_init {
            QualityInit::Uniform => Vec::new(),
            QualityInit::Qualification(_) => {
                let acc = initial_accuracy(options, cat.m, 0.7);
                let matrices = acc
                    .iter()
                    .map(|&a| {
                        let off = (1.0 - a) / (l - 1).max(1) as f64;
                        (0..l)
                            .map(|j| (0..l).map(|k| if j == k { a } else { off }).collect())
                            .collect()
                    })
                    .collect::<Vec<Vec<Vec<f64>>>>();
                matrices
            }
        };
        let mut class_prior = vec![1.0 / l as f64; l];

        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);
        let mut iterations = 0usize;
        let converged;

        // When qualification matrices exist, run an E-step before the
        // first M-step so the seeded qualities matter.
        let mut need_estep_first = !confusion.is_empty();

        loop {
            if need_estep_first {
                self.e_step(&cat, &confusion, &class_prior, &mut post);
                need_estep_first = false;
            }

            // M-step: confusion matrices and class prior from expected
            // counts.
            confusion = (0..cat.m)
                .map(|w| {
                    let mut counts = vec![vec![self.off_prior; l]; l];
                    for (j, row) in counts.iter_mut().enumerate() {
                        row[j] = self.diag_prior;
                    }
                    for &(task, label) in &cat.by_worker[w] {
                        for j in 0..l {
                            counts[j][label as usize] += post[task][j];
                        }
                    }
                    for row in &mut counts {
                        let total: f64 = row.iter().sum();
                        row.iter_mut().for_each(|c| *c /= total);
                    }
                    counts
                })
                .collect();
            for z in 0..l {
                class_prior[z] =
                    post.iter().map(|p| p[z]).sum::<f64>() / cat.n.max(1) as f64;
            }
            // Guard against a degenerate all-zero prior.
            let prior_sum: f64 = class_prior.iter().sum();
            if prior_sum <= 0.0 {
                class_prior.fill(1.0 / l as f64);
            }

            // E-step.
            self.e_step(&cat, &confusion, &class_prior, &mut post);

            // Track convergence on the flattened confusion parameters.
            let flat: Vec<f64> =
                confusion.iter().flat_map(|m| m.iter().flatten().copied()).collect();
            iterations += 1;
            if tracker.step(&flat) {
                converged = tracker.converged();
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: confusion.into_iter().map(WorkerQuality::Confusion).collect(),
            iterations,
            converged,
            posteriors: Some(post),
        })
    }

    fn e_step(
        &self,
        cat: &Cat,
        confusion: &[Vec<Vec<f64>>],
        class_prior: &[f64],
        post: &mut [Vec<f64>],
    ) {
        for task in 0..cat.n {
            if cat.golden[task].is_some() || cat.by_task[task].is_empty() {
                continue;
            }
            let mut logp: Vec<f64> =
                class_prior.iter().map(|&p| p.max(1e-12).ln()).collect();
            for &(worker, label) in &cat.by_task[task] {
                let m = &confusion[worker];
                for (j, lp) in logp.iter_mut().enumerate() {
                    *lp += m[j][label as usize].max(1e-12).ln();
                }
            }
            log_normalize(&mut logp);
            post[task] = logp;
        }
        cat.clamp_golden(post);
    }
}

/// Dawid–Skene EM.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ds;

impl TruthInference for Ds {
    fn name(&self) -> &'static str {
        "D&S"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(self.name(), dataset, options, self.supports(dataset.task_type()))?;
        // Near-zero symmetric smoothing: plain maximum likelihood.
        DsEngine { method: self.name(), diag_prior: 0.01, off_prior: 0.01 }.run(dataset, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{Answer, GoldenSplit};

    #[test]
    fn reasonable_on_toy_example() {
        // The toy admits a competing EM optimum; D&S must at least match
        // majority-vote quality (4/6).
        let d = toy();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn confusion_matrices_are_row_stochastic() {
        let d = small_decision();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Confusion(m) = q else { panic!("expected confusion") };
            assert_eq!(m.len(), 2);
            for row in m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn strong_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Ds, &d, 0.85);
    }

    #[test]
    fn captures_asymmetric_error_structure() {
        // On D_Product-like data the simulator makes class 1 ('F') easier
        // than class 0 ('T'); D&S should recover diag[1] > diag[0] on
        // average — the very capability the paper credits for its win.
        let d = small_decision();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        let mut diag0 = 0.0;
        let mut diag1 = 0.0;
        let mut count = 0.0;
        for q in &r.worker_quality {
            if let WorkerQuality::Confusion(m) = q {
                diag0 += m[0][0];
                diag1 += m[1][1];
                count += 1.0;
            }
        }
        assert!(
            diag1 / count > diag0 / count,
            "expected q_FF > q_TT on average: {} vs {}",
            diag1 / count,
            diag0 / count
        );
    }

    #[test]
    fn single_choice_beats_mv() {
        use crate::methods::Mv;
        let d = small_single();
        let ds = Ds.infer(&d, &InferenceOptions::seeded(2)).unwrap();
        let mv = Mv.infer(&d, &InferenceOptions::seeded(2)).unwrap();
        let (a_ds, a_mv) = (accuracy(&d, &ds), accuracy(&d, &mv));
        assert!(
            a_ds + 0.02 >= a_mv,
            "D&S {a_ds} should not lose clearly to MV {a_mv} on S_Rel-like data"
        );
    }

    #[test]
    fn golden_tasks_clamped() {
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 4);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(4)
        };
        let r = Ds.infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn qualification_init_runs() {
        let d = small_decision();
        let q = crowd_data::bootstrap_qualification(&d, 20, 5);
        let opts = InferenceOptions {
            quality_init: crate::framework::QualityInit::Qualification(q.accuracy),
            ..InferenceOptions::seeded(5)
        };
        let r = Ds.infer(&d, &opts).unwrap();
        let acc = accuracy(&d, &r);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn handles_task_with_no_answers() {
        use crowd_data::{DatasetBuilder, TaskType};
        let mut b = DatasetBuilder::new("gap", TaskType::DecisionMaking, 3, 2);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(0, 1, 0).unwrap();
        b.add_label(2, 0, 1).unwrap();
        // task 1 receives no answers
        let d = b.build();
        let r = Ds.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        assert_eq!(r.truths.len(), 3);
        assert!(matches!(r.truths[1], Answer::Label(_)));
    }
}
