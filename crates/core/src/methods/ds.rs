//! D&S — Dawid & Skene (Applied Statistics, 1979).
//!
//! The classical confusion-matrix EM (Section 5.3(2)): each worker is an
//! `ℓ × ℓ` row-stochastic matrix `q^w` with `q^w[j][k] = Pr(answer k |
//! truth j)`, plus a class prior. The paper's headline recommendation:
//! "we recommend the classical method D&S, which is robust in practice"
//! (Section 7).
//!
//! The implementation is shared with [`super::Lfc`], which is D&S plus
//! Dirichlet (Beta) priors on the confusion rows; D&S itself uses a tiny
//! symmetric smoothing count purely for numerical safety.

use crowd_data::{Dataset, TaskType};
use crowd_stats::{fused_posterior_row, safe_ln_map_into, ConvergenceTracker, DMat};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exec;
use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, QualityInit,
    TruthInference, WorkerQuality,
};
use crate::views::{initial_accuracy, Cat, ShardedView};

/// M-step work (≈ `|V|·ℓ + m·ℓ²` flops) below which the worker fan-out
/// stays on the calling thread. The serial path performs **zero heap
/// allocation per outer iteration**; above the threshold the shared
/// executor spreads the per-worker confusion updates across cores (each
/// worker's `ℓ×ℓ` block is a disjoint chunk of the flat buffer, so the
/// result is bit-identical either way).
///
/// Re-measured for the persistent worker pool (see
/// `examples/measure_fanout_overhead.rs`): dispatching a pool batch
/// costs ~0.2µs against ~46µs for the `thread::scope` spawn the executor
/// used before, and one work unit sweeps in ~0.8ns, so the crossover
/// dropped from 2¹⁸ to 2¹⁴ units (~13µs of serial work, comfortably
/// above multi-core worker wake-up latency). Below it the serial path
/// also keeps the loop allocation-free.
pub(crate) const PARALLEL_MSTEP_MIN_WORK: usize = 1 << 14;

/// E-step work below which the task fan-out stays on the calling thread.
/// Each task's posterior row is computed independently (reads the shared
/// log tables, writes its own row), so fanning tasks out over the
/// executor is bit-identical to the serial sweep. With pool dispatch at
/// ~0.2µs (measured; was ~100µs with scope spawns) the fan-out pays off
/// once a sweep costs a handful of microseconds: 2¹³ work units ≈ 6.5µs,
/// an order of magnitude below the old 2¹⁷ threshold, which brings
/// incremental/streaming batch sizes into the parallel regime. The
/// stealing design caps the downside: the dispatching thread starts on
/// the chunks immediately, so a fan-out nobody helps with costs only the
/// notify (~0.2µs) over the serial sweep.
pub(crate) const PARALLEL_ESTEP_MIN_WORK: usize = 1 << 13;

/// Shared EM engine for D&S-family methods, on the flat-memory substrate:
/// posteriors are an `n × ℓ` [`DMat`], all worker confusion matrices live
/// in one `(m·ℓ) × ℓ` [`DMat`] (worker `w`, truth row `j` at row
/// `w·ℓ + j`), and the E/M loop updates both in place with pre-allocated
/// scratch.
///
/// `diag_prior`/`off_prior` are Dirichlet pseudo-counts added to the
/// diagonal/off-diagonal confusion cells in the M-step.
pub(crate) struct DsEngine {
    pub method: &'static str,
    pub diag_prior: f64,
    pub off_prior: f64,
}

impl DsEngine {
    pub fn run(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        let cat = Cat::build(self.method, dataset, options, true)?;
        self.run_view(&cat, options)
    }

    /// Run the EM loop directly on a prebuilt categorical view — the
    /// entry point for callers that maintain the view themselves (the
    /// `crowd-stream` delta views). Identical to [`Self::run`] after
    /// `Cat::build`.
    pub fn run_view(
        &self,
        cat: &Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        if cat.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(cat.m, options)?;
        let l = cat.l;

        // Initial posteriors: majority vote; with qualification scores we
        // instead seed per-worker confusion matrices and run an E-step
        // first (the worker knowledge arrives through the matrices). A
        // warm start overrides both: the previous run's posteriors and
        // confusion matrices are loaded and the loop resumes with an
        // E-step under the previous model, so only the new answers'
        // evidence has to be absorbed.
        let mut post = cat.majority_posteriors();
        let mut confusion = DMat::zeros(cat.m * l, l);
        let mut class_prior = vec![1.0 / l as f64; l];
        let mut need_estep_first = false;
        if let Some(warm) = &options.warm_start {
            // Previous posteriors for tasks both runs know about (rows
            // with a foreign width are ignored — a different ℓ means the
            // state is from another problem).
            if let Some(prev_post) = &warm.posteriors {
                for (task, row) in prev_post.iter().enumerate().take(cat.n) {
                    if row.len() == l && cat.golden[task].is_none() && cat.task_len(task) > 0 {
                        post.row_mut(task).copy_from_slice(row);
                    }
                }
            }
            // Previous confusion matrices where available; workers the
            // previous run did not know get the cold default.
            let default_acc = 0.7;
            let off_default = (1.0 - default_acc) / (l - 1).max(1) as f64;
            for w in 0..cat.m {
                let prev = warm.worker_quality.get(w).and_then(|q| match q {
                    WorkerQuality::Confusion(m)
                        if m.len() == l && m.iter().all(|row| row.len() == l) =>
                    {
                        Some(m)
                    }
                    _ => None,
                });
                for j in 0..l {
                    let row = confusion.row_mut(w * l + j);
                    match prev {
                        Some(m) => row.copy_from_slice(&m[j]),
                        None => {
                            row.fill(off_default);
                            row[j] = default_acc;
                        }
                    }
                }
            }
            // Class prior from the warmed posteriors (what the M-step
            // would derive), so the resuming E-step sees the previous
            // model end to end.
            class_prior.fill(0.0);
            for row in post.data().chunks_exact(l) {
                for (prior, &p) in class_prior.iter_mut().zip(row) {
                    *prior += p;
                }
            }
            let total: f64 = class_prior.iter().sum();
            if total > 0.0 {
                class_prior.iter_mut().for_each(|prior| *prior /= total);
            } else {
                class_prior.fill(1.0 / l as f64);
            }
            need_estep_first = true;
        } else if let QualityInit::Qualification(_) = &options.quality_init {
            let acc = initial_accuracy(options, cat.m, 0.7);
            for (w, &a) in acc.iter().enumerate() {
                let off = (1.0 - a) / (l - 1).max(1) as f64;
                for j in 0..l {
                    let row = confusion.row_mut(w * l + j);
                    row.fill(off);
                    row[j] = a;
                }
            }
            need_estep_first = true;
        }
        // Log-domain tables recomputed once per iteration (m·ℓ² + ℓ `ln`
        // calls) so the E-step — which visits every answer — only adds
        // table entries. The tabulated values are exactly the
        // `x.max(1e-12).ln()` terms the naive E-step would compute per
        // answer, so the log-posterior sums are bit-identical.
        let mut log_conf = DMat::zeros(cat.m * l, l);
        let mut log_prior = vec![0.0f64; l];

        // The fan-out budget: the caller's cap when given (harness-level
        // fan-outs pass 1 to avoid oversubscription), else the machine.
        let thread_budget = options.threads.unwrap_or_else(exec::default_threads).max(1);
        let mstep_work = cat.num_answers() * l + cat.m * l * l;
        let mstep_threads = if mstep_work >= PARALLEL_MSTEP_MIN_WORK {
            thread_budget
        } else {
            1
        };
        // E-step cost model: ℓ adds per answer plus ~3ℓ transcendental-
        // equivalent flops per task for the log-normalisation.
        let estep_work = cat.num_answers() * l + 3 * cat.n * l;
        let estep_threads = if estep_work >= PARALLEL_ESTEP_MIN_WORK {
            thread_budget
        } else {
            1
        };

        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);
        let mut iterations = 0usize;
        let converged;

        loop {
            if need_estep_first {
                refresh_log_tables(&confusion, &class_prior, &mut log_conf, &mut log_prior);
                e_step(cat, &log_conf, &log_prior, &mut post, estep_threads);
                need_estep_first = false;
            }

            // M-step: confusion matrices from expected counts, fanned out
            // worker-by-worker (each worker owns one ℓ×ℓ chunk of the
            // flat buffer; chunks are disjoint, so no synchronisation).
            {
                let diag = self.diag_prior;
                let off = self.off_prior;
                let cat_ref = cat;
                let post_ref = &post;
                exec::parallel_chunks(mstep_threads, confusion.data_mut(), l * l, |w, chunk| {
                    chunk.fill(off);
                    for j in 0..l {
                        chunk[j * l + j] = diag;
                    }
                    for &(task, label) in cat_ref.worker_row(w) {
                        let post_row = post_ref.row(task as usize);
                        for j in 0..l {
                            chunk[j * l + label as usize] += post_row[j];
                        }
                    }
                    for row in chunk.chunks_mut(l) {
                        let total: f64 = row.iter().sum();
                        row.iter_mut().for_each(|c| *c /= total);
                    }
                });
            }

            // Class prior from the posterior column sums (one pass over
            // the flat buffer; per-column addition order is still task
            // order, so the sums match the per-column form bit for bit).
            class_prior.fill(0.0);
            for row in post.data().chunks_exact(l) {
                for (prior, &p) in class_prior.iter_mut().zip(row) {
                    *prior += p;
                }
            }
            class_prior
                .iter_mut()
                .for_each(|prior| *prior /= cat.n.max(1) as f64);
            // Guard against a degenerate all-zero prior.
            let prior_sum: f64 = class_prior.iter().sum();
            if prior_sum <= 0.0 {
                class_prior.fill(1.0 / l as f64);
            }

            // E-step.
            refresh_log_tables(&confusion, &class_prior, &mut log_conf, &mut log_prior);
            e_step(cat, &log_conf, &log_prior, &mut post, estep_threads);

            // Track convergence on the flat confusion buffer — already in
            // the (worker, truth row, answer) order the nested
            // implementation flattened to, with no copy.
            iterations += 1;
            if tracker.step(confusion.data()) {
                converged = tracker.converged();
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        let worker_quality = (0..cat.m)
            .map(|w| {
                WorkerQuality::Confusion(
                    (0..l).map(|j| confusion.row(w * l + j).to_vec()).collect(),
                )
            })
            .collect();
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations,
            converged,
            posteriors: Some(post.into_nested()),
        })
    }

    /// Run the EM loop on a task-range sharded view — the million-task
    /// substrate. Same model, same arithmetic, restructured around the
    /// shard directory:
    ///
    /// - **E-step** fans out *per shard* through the worker pool: each
    ///   shard owns a contiguous, disjoint block of posterior rows
    ///   (`split_at_mut` chain over the flat buffer), and every task row
    ///   is computed by exactly the [`e_step`] arithmetic — so the
    ///   result is bit-identical to the unsharded sweep at any shard
    ///   count, and the working set per job is one shard, not the
    ///   dataset.
    /// - **M-step** accumulates each worker's confusion counts by
    ///   folding that worker's per-shard adjacency rows in **ascending
    ///   shard order** (a continuation fold, not a pairwise tree): the
    ///   canonical task-ascending order of
    ///   [`ShardedView::shard_worker_row`] makes the visit sequence — and
    ///   hence the non-associative f64 sum — independent of the shard
    ///   count, and equal to the flat `worker_row` walk whenever the flat
    ///   rows are task-ascending (every dataset built task-by-task).
    ///   Parallelism comes from the per-worker chunk fan-out, exactly as
    ///   in [`Self::run_view`]. Exact cross-shard reductions (counts,
    ///   maxima) go through [`exec::tree_reduce`]; the f64 partials
    ///   deliberately do not — see its docs.
    pub fn run_sharded(
        &self,
        view: &ShardedView,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        if view.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(view.m, options)?;
        let l = view.l;

        let mut post = view.majority_posteriors();
        let mut confusion = DMat::zeros(view.m * l, l);
        let mut class_prior = vec![1.0 / l as f64; l];
        let mut need_estep_first = false;
        if let Some(warm) = &options.warm_start {
            if let Some(prev_post) = &warm.posteriors {
                for (task, row) in prev_post.iter().enumerate().take(view.n) {
                    if row.len() == l && view.golden()[task].is_none() && view.task_len(task) > 0 {
                        post.row_mut(task).copy_from_slice(row);
                    }
                }
            }
            let default_acc = 0.7;
            let off_default = (1.0 - default_acc) / (l - 1).max(1) as f64;
            for w in 0..view.m {
                let prev = warm.worker_quality.get(w).and_then(|q| match q {
                    WorkerQuality::Confusion(m)
                        if m.len() == l && m.iter().all(|row| row.len() == l) =>
                    {
                        Some(m)
                    }
                    _ => None,
                });
                for j in 0..l {
                    let row = confusion.row_mut(w * l + j);
                    match prev {
                        Some(m) => row.copy_from_slice(&m[j]),
                        None => {
                            row.fill(off_default);
                            row[j] = default_acc;
                        }
                    }
                }
            }
            class_prior.fill(0.0);
            for row in post.data().chunks_exact(l) {
                for (prior, &p) in class_prior.iter_mut().zip(row) {
                    *prior += p;
                }
            }
            let total: f64 = class_prior.iter().sum();
            if total > 0.0 {
                class_prior.iter_mut().for_each(|prior| *prior /= total);
            } else {
                class_prior.fill(1.0 / l as f64);
            }
            need_estep_first = true;
        } else if let QualityInit::Qualification(_) = &options.quality_init {
            let acc = initial_accuracy(options, view.m, 0.7);
            for (w, &a) in acc.iter().enumerate() {
                let off = (1.0 - a) / (l - 1).max(1) as f64;
                for j in 0..l {
                    let row = confusion.row_mut(w * l + j);
                    row.fill(off);
                    row[j] = a;
                }
            }
            need_estep_first = true;
        }

        let mut log_conf = DMat::zeros(view.m * l, l);
        let mut log_prior = vec![0.0f64; l];

        let thread_budget = options.threads.unwrap_or_else(exec::default_threads).max(1);
        let mstep_work = view.num_answers() * l + view.m * l * l;
        let mstep_threads = if mstep_work >= PARALLEL_MSTEP_MIN_WORK {
            thread_budget
        } else {
            1
        };
        let estep_work = view.num_answers() * l + 3 * view.n * l;
        let estep_threads = if estep_work >= PARALLEL_ESTEP_MIN_WORK {
            thread_budget
        } else {
            1
        };

        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);
        let mut iterations = 0usize;
        let converged;

        loop {
            if need_estep_first {
                refresh_log_tables(&confusion, &class_prior, &mut log_conf, &mut log_prior);
                e_step_sharded(view, &log_conf, &log_prior, &mut post, estep_threads);
                need_estep_first = false;
            }

            // M-step: the per-worker continuation fold across shards.
            {
                let _reduce_timer = crate::views::obs_reduce_seconds().start_timer();
                let diag = self.diag_prior;
                let off = self.off_prior;
                let post_ref = &post;
                exec::parallel_chunks(mstep_threads, confusion.data_mut(), l * l, |w, chunk| {
                    chunk.fill(off);
                    for j in 0..l {
                        chunk[j * l + j] = diag;
                    }
                    for s in 0..view.num_shards() {
                        for &(task, label) in view.shard_worker_row(s, w) {
                            let post_row = post_ref.row(task as usize);
                            for j in 0..l {
                                chunk[j * l + label as usize] += post_row[j];
                            }
                        }
                    }
                    for row in chunk.chunks_mut(l) {
                        let total: f64 = row.iter().sum();
                        row.iter_mut().for_each(|c| *c /= total);
                    }
                });
            }

            class_prior.fill(0.0);
            for row in post.data().chunks_exact(l) {
                for (prior, &p) in class_prior.iter_mut().zip(row) {
                    *prior += p;
                }
            }
            class_prior
                .iter_mut()
                .for_each(|prior| *prior /= view.n.max(1) as f64);
            let prior_sum: f64 = class_prior.iter().sum();
            if prior_sum <= 0.0 {
                class_prior.fill(1.0 / l as f64);
            }

            refresh_log_tables(&confusion, &class_prior, &mut log_conf, &mut log_prior);
            e_step_sharded(view, &log_conf, &log_prior, &mut post, estep_threads);

            iterations += 1;
            if tracker.step(confusion.data()) {
                converged = tracker.converged();
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = view.decode(&post, &mut rng);
        let worker_quality = (0..view.m)
            .map(|w| {
                WorkerQuality::Confusion(
                    (0..l).map(|j| confusion.row(w * l + j).to_vec()).collect(),
                )
            })
            .collect();
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations,
            converged,
            posteriors: Some(post.into_nested()),
        })
    }
}

/// Refresh the log-domain lookup tables from the current confusion
/// matrices and class prior (once per iteration; the E-step then runs
/// `ln`-free). The fused `safe_ln` map fills and logs each flat buffer
/// in one cache-resident sweep — elementwise identical to the old
/// per-cell `c.max(1e-12).ln()`.
fn refresh_log_tables(
    confusion: &DMat,
    class_prior: &[f64],
    log_conf: &mut DMat,
    log_prior: &mut [f64],
) {
    let conf = confusion.data();
    safe_ln_map_into(log_conf.data_mut(), |i| conf[i]);
    safe_ln_map_into(log_prior, |i| class_prior[i]);
}

/// One E-step over the flat substrate: `post[t][j] ∝ prior[j] ·
/// Π_w q^w[j][v_t^w]`, accumulated in log space from the precomputed
/// tables and written back in place.
///
/// Each task row is one [`fused_posterior_row`] call — prior init,
/// strided table gather, log-sum-exp and normalize in a single pass,
/// written directly into the posterior row (no scratch copy, zero heap
/// allocation, zero transcendental calls in the answer loop). Above the
/// size threshold the tasks fan out over the executor in disjoint row
/// blocks; every task's row is computed by the same arithmetic, so the
/// result is bit-identical either way.
fn e_step(cat: &Cat, log_conf: &DMat, log_prior: &[f64], post: &mut DMat, threads: usize) {
    let l = cat.l;
    let stride = l * l;
    let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
    if threads <= 1 {
        let lc = log_conf.data();
        let mut fused_rows = 0u64;
        for task in 0..cat.n {
            if cat.golden[task].is_some() || cat.task_len(task) == 0 {
                continue;
            }
            fused_posterior_row(
                post.row_mut(task),
                log_prior,
                lc,
                // Walk the worker's ℓ×ℓ block column `label` by stride.
                cat.task_row(task)
                    .iter()
                    .map(|&(worker, label)| worker as usize * stride + label as usize),
            );
            fused_rows += 1;
        }
        crate::methods::obs_fused_rows().add(fused_rows);
    } else {
        let lc = log_conf.data();
        // ~4 chunks per thread balances uneven task degrees without a
        // shared cursor.
        let tasks_per_chunk = cat.n.div_ceil(threads * 4).max(1);
        exec::parallel_chunks(
            threads,
            post.data_mut(),
            tasks_per_chunk * l,
            |chunk_idx, rows| {
                let first_task = chunk_idx * tasks_per_chunk;
                let mut fused_rows = 0u64;
                for (offset, row) in rows.chunks_mut(l).enumerate() {
                    let task = first_task + offset;
                    if cat.golden[task].is_some() || cat.task_len(task) == 0 {
                        continue;
                    }
                    fused_posterior_row(
                        row,
                        log_prior,
                        lc,
                        cat.task_row(task)
                            .iter()
                            .map(|&(worker, label)| worker as usize * stride + label as usize),
                    );
                    fused_rows += 1;
                }
                crate::methods::obs_fused_rows().add(fused_rows);
            },
        );
    }
    cat.clamp_golden(post);
}

/// One E-step over the sharded substrate: shard `s` owns posterior rows
/// `starts[s]..starts[s+1]` — a contiguous, disjoint block of the flat
/// buffer carved off a `split_at_mut` chain — and runs the exact
/// [`e_step`] per-task arithmetic over its own task rows. Shards fan out
/// through [`exec::parallel_map`]; with `threads == 1` the jobs run
/// in shard order on the calling thread. Either way every task row is
/// produced by the same adds in the same order, so the posteriors are
/// bit-identical to the unsharded sweep at any shard count.
fn e_step_sharded(
    view: &ShardedView,
    log_conf: &DMat,
    log_prior: &[f64],
    post: &mut DMat,
    threads: usize,
) {
    let l = view.l;
    let stride = l * l;
    let lc = log_conf.data();
    let golden = view.golden();
    let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
    {
        // Carve per-shard row blocks off the flat posterior buffer.
        let mut blocks: Vec<(usize, &mut [f64])> = Vec::with_capacity(view.num_shards());
        let mut rest: &mut [f64] = post.data_mut();
        for s in 0..view.num_shards() {
            let range = view.shard_tasks(s);
            let (head, tail) = rest.split_at_mut((range.end - range.start) * l);
            blocks.push((s, head));
            rest = tail;
        }
        let jobs: Vec<_> = blocks
            .into_iter()
            .map(|(s, block)| {
                move || {
                    let timer = crate::views::obs_estep_seconds().start_timer();
                    let start = view.shard_tasks(s).start;
                    let mut fused_rows = 0u64;
                    for (local, row) in block.chunks_mut(l).enumerate() {
                        let task = start + local;
                        let answers = view.shard_task_row(s, local);
                        if golden[task].is_some() || answers.is_empty() {
                            continue;
                        }
                        fused_posterior_row(
                            row,
                            log_prior,
                            lc,
                            answers
                                .iter()
                                .map(|&(worker, label)| worker as usize * stride + label as usize),
                        );
                        fused_rows += 1;
                    }
                    crate::methods::obs_fused_rows().add(fused_rows);
                    drop(timer);
                }
            })
            .collect();
        exec::parallel_map(threads, jobs);
    }
    view.clamp_golden(post);
}

/// Dawid–Skene EM.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ds;

impl Ds {
    /// Run D&S directly on a prebuilt categorical view — the streaming
    /// entry point: `crowd-stream` maintains the CSR views incrementally
    /// and skips the per-call `Cat::build`. Golden clamps come from the
    /// view (not `options.golden`); `options.warm_start` resumes from a
    /// previous run's state. Output is identical to `infer` on a dataset
    /// whose records round-trip the view.
    pub fn infer_view(
        &self,
        view: &Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        DsEngine {
            method: self.name(),
            diag_prior: 0.01,
            off_prior: 0.01,
        }
        .run_view(view, options)
    }

    /// Run D&S on a task-range sharded view (per-shard E-steps, shard-
    /// ascending M-step fold) — bit-identical to [`Self::infer_view`] on
    /// the equivalent flat view at any shard count; see
    /// [`DsEngine::run_sharded`].
    pub fn infer_sharded(
        &self,
        view: &ShardedView,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        DsEngine {
            method: self.name(),
            diag_prior: 0.01,
            off_prior: 0.01,
        }
        .run_sharded(view, options)
    }
}

impl TruthInference for Ds {
    fn name(&self) -> &'static str {
        "D&S"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        // Near-zero symmetric smoothing: plain maximum likelihood.
        DsEngine {
            method: self.name(),
            diag_prior: 0.01,
            off_prior: 0.01,
        }
        .run(dataset, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{Answer, GoldenSplit};

    #[test]
    fn reasonable_on_toy_example() {
        // The toy admits a competing EM optimum; D&S must at least match
        // majority-vote quality (4/6).
        let d = toy();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn confusion_matrices_are_row_stochastic() {
        let d = small_decision();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Confusion(m) = q else {
                panic!("expected confusion")
            };
            assert_eq!(m.len(), 2);
            for row in m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn strong_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Ds, &d, 0.85);
    }

    #[test]
    fn captures_asymmetric_error_structure() {
        // On D_Product-like data the simulator makes class 1 ('F') easier
        // than class 0 ('T'); D&S should recover diag[1] > diag[0] on
        // average — the very capability the paper credits for its win.
        let d = small_decision();
        let r = Ds.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        let mut diag0 = 0.0;
        let mut diag1 = 0.0;
        let mut count = 0.0;
        for q in &r.worker_quality {
            if let WorkerQuality::Confusion(m) = q {
                diag0 += m[0][0];
                diag1 += m[1][1];
                count += 1.0;
            }
        }
        assert!(
            diag1 / count > diag0 / count,
            "expected q_FF > q_TT on average: {} vs {}",
            diag1 / count,
            diag0 / count
        );
    }

    #[test]
    fn single_choice_beats_mv() {
        use crate::methods::Mv;
        let d = small_single();
        let ds = Ds.infer(&d, &InferenceOptions::seeded(2)).unwrap();
        let mv = Mv.infer(&d, &InferenceOptions::seeded(2)).unwrap();
        let (a_ds, a_mv) = (accuracy(&d, &ds), accuracy(&d, &mv));
        assert!(
            a_ds + 0.02 >= a_mv,
            "D&S {a_ds} should not lose clearly to MV {a_mv} on S_Rel-like data"
        );
    }

    #[test]
    fn golden_tasks_clamped() {
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 4);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(4)
        };
        let r = Ds.infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn qualification_init_runs() {
        let d = small_decision();
        let q = crowd_data::bootstrap_qualification(&d, 20, 5);
        let opts = InferenceOptions {
            quality_init: crate::framework::QualityInit::Qualification(q.accuracy),
            ..InferenceOptions::seeded(5)
        };
        let r = Ds.infer(&d, &opts).unwrap();
        let acc = accuracy(&d, &r);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn warm_start_reaches_cold_fixed_point_faster() {
        use crate::framework::WarmStart;
        let d = small_decision();
        // Warm-starting from the cold run's converged state and re-running
        // on the same answers must (a) converge in strictly fewer
        // iterations, (b) keep every decisively-labelled task (the loose
        // stopping tolerance means truly borderline posteriors may still
        // legitimately move between the two stopping points), and
        // (c) keep posteriors within a small drift bound.
        let cold = Ds.infer(&d, &InferenceOptions::seeded(3)).unwrap();
        let opts = InferenceOptions {
            warm_start: Some(WarmStart::from_result(&cold)),
            ..InferenceOptions::seeded(3)
        };
        let warm = Ds.infer(&d, &opts).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        let (wp, cp) = (warm.posteriors.unwrap(), cold.posteriors.unwrap());
        for (task, (w, c)) in wp.iter().zip(&cp).enumerate() {
            let margin = (c[0] - c[1]).abs();
            if margin > 0.05 {
                assert_eq!(
                    warm.truths[task], cold.truths[task],
                    "decisive task {task} (margin {margin}) flipped"
                );
            }
            for (a, b) in w.iter().zip(c) {
                assert!((a - b).abs() < 0.05, "posterior drift {a} vs {b}");
            }
        }
    }

    #[test]
    fn warm_start_tolerates_foreign_and_short_state() {
        use crate::framework::WarmStart;
        let d = small_decision();
        // A warm state from a differently-shaped problem (wrong ℓ, too
        // few workers) must fall back to cold defaults, not panic.
        let warm = WarmStart {
            posteriors: Some(vec![vec![0.2, 0.3, 0.5]; 3]),
            worker_quality: vec![WorkerQuality::Probability(0.9); 2],
        };
        let opts = InferenceOptions {
            warm_start: Some(warm),
            ..InferenceOptions::seeded(3)
        };
        let r = Ds.infer(&d, &opts).unwrap();
        let acc = accuracy(&d, &r);
        assert!(acc > 0.8, "accuracy {acc} with degenerate warm state");
    }

    #[test]
    fn handles_task_with_no_answers() {
        use crowd_data::{DatasetBuilder, TaskType};
        let mut b = DatasetBuilder::new("gap", TaskType::DecisionMaking, 3, 2);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(0, 1, 0).unwrap();
        b.add_label(2, 0, 1).unwrap();
        // task 1 receives no answers
        let d = b.build();
        let r = Ds.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        assert_eq!(r.truths.len(), 3);
        assert!(matches!(r.truths[1], Answer::Label(_)));
    }
}
