//! ZC — ZenCrowd (Demartini, Difallah, Cudré-Mauroux, WWW 2012).
//!
//! The basic worker-probability PGM (Section 5.3(1)): each worker is a
//! single reliability `q^w ∈ [0, 1]`; a correct answer is emitted with
//! probability `q^w` and errors spread uniformly over the other `ℓ − 1`
//! choices. Truths are latent; the likelihood `Pr(V | {q^w})` (Equation 1)
//! is maximised with EM.
//!
//! Supports qualification-test initialisation (`q^w` ← test accuracy) and
//! hidden-test golden tasks (posterior clamped at the revealed truth),
//! matching the paper's §6.3.2–6.3.3 method lists.

use crowd_data::{Dataset, TaskType};
use crowd_stats::{fused_two_term_row, safe_ln_map_into, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::{initial_accuracy, Cat};

/// ZenCrowd: EM over one-probability workers.
#[derive(Debug, Clone, Copy)]
pub struct Zc {
    /// Pseudo-count smoothing of the M-step (Beta(α, α) prior on `q^w`);
    /// keeps qualities off the 0/1 boundary.
    pub smoothing: f64,
}

impl Default for Zc {
    fn default() -> Self {
        Self { smoothing: 1.0 }
    }
}

impl TruthInference for Zc {
    fn name(&self) -> &'static str {
        "ZC"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        self.infer_view(&cat, options)
    }
}

impl Zc {
    /// Run ZC directly on a prebuilt categorical view — the streaming
    /// entry point (see `Ds::infer_view`). `options.warm_start` resumes
    /// the per-worker reliabilities from the previous run (any
    /// [`WorkerQuality`] that collapses to a probability-like scalar);
    /// the posterior side of a warm start is implicit, since the first
    /// E-step recomputes every posterior from the warmed reliabilities.
    pub fn infer_view(
        &self,
        cat: &Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        if cat.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(cat.m, options)?;
        let lm1 = (cat.l - 1).max(1) as f64;

        let mut quality = initial_accuracy(options, cat.m, 0.7);
        if let Some(warm) = &options.warm_start {
            for (w, q) in quality.iter_mut().enumerate() {
                if let Some(prev) = warm.worker_quality.get(w).and_then(WorkerQuality::scalar) {
                    // Converged ZC reliabilities already sit strictly
                    // inside (0, 1); the clamp only guards foreign warm
                    // states (e.g. unbounded weights).
                    *q = prev.clamp(1e-6, 1.0 - 1e-6);
                }
            }
        }
        let mut post = cat.majority_posteriors();
        // Per-worker log tables refreshed once per iteration (2m `ln`
        // calls instead of |V|·ℓ): exactly the `p.max(1e-12).ln()` terms
        // the per-answer form computes, so the posterior sums are
        // bit-identical. The loop below allocates nothing per iteration.
        let mut ln_correct = vec![0.0f64; cat.m];
        let mut ln_wrong = vec![0.0f64; cat.m];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // E-step: posterior over each task's truth under current q.
            // The per-worker log tables refresh as two fused
            // fill-and-safe_ln maps (elementwise identical to the scalar
            // clamp idiom); each task row is one fused two-term
            // accumulate + normalize written straight into the posterior.
            safe_ln_map_into(&mut ln_correct, |w| quality[w]);
            safe_ln_map_into(&mut ln_wrong, |w| (1.0 - quality[w]) / lm1);
            {
                let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
                let mut fused_rows = 0u64;
                for task in 0..cat.n {
                    if cat.golden[task].is_some() {
                        continue; // stays clamped
                    }
                    if cat.task_len(task) == 0 {
                        continue; // stays uniform
                    }
                    let row = post.row_mut(task);
                    row.fill(0.0);
                    fused_two_term_row(
                        row,
                        cat.task(task).map(|(worker, label)| {
                            (label as usize, ln_correct[worker], ln_wrong[worker])
                        }),
                    );
                    fused_rows += 1;
                }
                crate::methods::obs_fused_rows().add(fused_rows);
            }
            cat.clamp_golden(&mut post);

            // M-step: expected fraction of correct answers per worker,
            // smoothed by a symmetric Beta prior.
            for w in 0..cat.m {
                let mut expected_correct = 0.0;
                for (task, label) in cat.worker(w) {
                    expected_correct += post.row(task)[label as usize];
                }
                let denom = cat.worker_len(w) as f64 + 2.0 * self.smoothing;
                quality[w] = (expected_correct + self.smoothing) / denom;
            }

            if tracker.step(&quality) {
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: quality
                .into_iter()
                .map(WorkerQuality::Probability)
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }

    /// Run ZC on a task-range sharded view — the million-task substrate.
    /// The E-step fans out per shard (each shard owns a disjoint block of
    /// posterior rows; every task row is the exact [`Self::infer_view`]
    /// arithmetic, so posteriors are bit-identical at any shard count).
    /// The M-step folds each worker's per-shard adjacency rows in
    /// ascending shard order: the canonical task-ascending row order
    /// makes the expected-correct sum shard-count-invariant, and equal to
    /// the flat `cat.worker(w)` walk on task-grouped logs.
    pub fn infer_sharded(
        &self,
        view: &crate::views::ShardedView,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        use crate::exec;
        use crate::views::ShardedView;

        if view.num_answers() == 0 {
            return Err(InferenceError::EmptyDataset);
        }
        crate::framework::validate_view_options(view.m, options)?;
        let l = view.l;
        let lm1 = (l - 1).max(1) as f64;

        let mut quality = initial_accuracy(options, view.m, 0.7);
        if let Some(warm) = &options.warm_start {
            for (w, q) in quality.iter_mut().enumerate() {
                if let Some(prev) = warm.worker_quality.get(w).and_then(WorkerQuality::scalar) {
                    *q = prev.clamp(1e-6, 1.0 - 1e-6);
                }
            }
        }
        let mut post = view.majority_posteriors();
        let mut ln_correct = vec![0.0f64; view.m];
        let mut ln_wrong = vec![0.0f64; view.m];
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        let thread_budget = options.threads.unwrap_or_else(exec::default_threads).max(1);
        let estep_work = view.num_answers() * l + 3 * view.n * l;
        let estep_threads = if estep_work >= super::ds::PARALLEL_ESTEP_MIN_WORK {
            thread_budget
        } else {
            1
        };

        fn e_step_sharded(
            view: &ShardedView,
            ln_correct: &[f64],
            ln_wrong: &[f64],
            post: &mut crowd_stats::DMat,
            threads: usize,
        ) {
            let l = view.l;
            let golden = view.golden();
            {
                let mut blocks: Vec<(usize, &mut [f64])> = Vec::with_capacity(view.num_shards());
                let mut rest: &mut [f64] = post.data_mut();
                for s in 0..view.num_shards() {
                    let range = view.shard_tasks(s);
                    let (head, tail) = rest.split_at_mut((range.end - range.start) * l);
                    blocks.push((s, head));
                    rest = tail;
                }
                let jobs: Vec<_> = blocks
                    .into_iter()
                    .map(|(s, block)| {
                        move || {
                            let _timer = crate::views::obs_estep_seconds().start_timer();
                            let start = view.shard_tasks(s).start;
                            let mut fused_rows = 0u64;
                            for (local, row) in block.chunks_mut(l).enumerate() {
                                let task = start + local;
                                let answers = view.shard_task_row(s, local);
                                if golden[task].is_some() || answers.is_empty() {
                                    continue;
                                }
                                row.fill(0.0);
                                fused_two_term_row(
                                    row,
                                    answers.iter().map(|&(worker, label)| {
                                        (
                                            label as usize,
                                            ln_correct[worker as usize],
                                            ln_wrong[worker as usize],
                                        )
                                    }),
                                );
                                fused_rows += 1;
                            }
                            crate::methods::obs_fused_rows().add(fused_rows);
                        }
                    })
                    .collect();
                exec::parallel_map(threads, jobs);
            }
            view.clamp_golden(post);
        }

        loop {
            safe_ln_map_into(&mut ln_correct, |w| quality[w]);
            safe_ln_map_into(&mut ln_wrong, |w| (1.0 - quality[w]) / lm1);
            {
                let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
                e_step_sharded(view, &ln_correct, &ln_wrong, &mut post, estep_threads);
            }

            // M-step: per-worker continuation fold, shards ascending.
            {
                let _timer = crate::views::obs_reduce_seconds().start_timer();
                for (w, q) in quality.iter_mut().enumerate() {
                    let mut expected_correct = 0.0;
                    for s in 0..view.num_shards() {
                        for &(task, label) in view.shard_worker_row(s, w) {
                            expected_correct += post.row(task as usize)[label as usize];
                        }
                    }
                    let denom = view.worker_len(w) as f64 + 2.0 * self.smoothing;
                    *q = (expected_correct + self.smoothing) / denom;
                }
            }

            if tracker.step(&quality) {
                break;
            }
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = view.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: quality
                .into_iter()
                .map(WorkerQuality::Probability)
                .collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::QualityInit;
    use crate::methods::test_support::*;
    use crowd_data::{Answer, GoldenSplit};

    #[test]
    fn reasonable_on_toy_example() {
        // The 6-task example admits a second EM optimum (treating w2 as
        // the oracle); the paper only demonstrates exact recovery for PM.
        // ZC must at least match majority-vote quality and recover t1 as
        // 'T' (it breaks the tie through worker weighting).
        let d = toy();
        let r = Zc::default()
            .infer(&d, &InferenceOptions::seeded(5))
            .unwrap();
        assert_result_sane(&d, &r);
        assert_eq!(r.truths[0], Answer::Label(0), "t1 should resolve to T");
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn quality_estimates_track_empirical_accuracy() {
        let d = small_decision();
        let r = Zc::default()
            .infer(&d, &InferenceOptions::seeded(5))
            .unwrap();
        // Workers with high empirical accuracy should get high estimated
        // quality (compare top and bottom halves).
        let mut pairs = Vec::new();
        for w in 0..d.num_workers() {
            let (mut total, mut correct) = (0usize, 0usize);
            for rec in d.answers_by_worker(w) {
                if let Some(t) = d.truth(rec.task) {
                    total += 1;
                    if rec.answer == t {
                        correct += 1;
                    }
                }
            }
            if total >= 10 {
                pairs.push((
                    r.worker_quality[w].scalar().unwrap(),
                    correct as f64 / total as f64,
                ));
            }
        }
        pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let half = pairs.len() / 2;
        let lo: f64 = pairs[..half].iter().map(|p| p.0).sum::<f64>() / half as f64;
        let hi: f64 = pairs[half..].iter().map(|p| p.0).sum::<f64>() / (pairs.len() - half) as f64;
        assert!(hi > lo, "estimated quality not ordered: hi {hi} lo {lo}");
    }

    #[test]
    fn beats_mv_on_small_decision_sim() {
        let d = small_decision();
        let zc = assert_accuracy_at_least(&Zc::default(), &d, 0.80);
        assert!(zc.converged, "ZC did not converge in 100 iterations");
    }

    #[test]
    fn qualification_initialisation_is_accepted_and_sane() {
        let d = small_decision();
        let q = crowd_data::bootstrap_qualification(&d, 20, 3);
        let opts = InferenceOptions {
            quality_init: QualityInit::Qualification(q.accuracy),
            ..InferenceOptions::seeded(3)
        };
        let r = Zc::default().infer(&d, &opts).unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.8, "accuracy with qualification {acc}");
    }

    #[test]
    fn golden_tasks_are_clamped_and_help() {
        let d = small_single();
        let split = GoldenSplit::sample(&d, 0.3, 9);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(9)
        };
        let r = Zc::default().infer(&d, &opts).unwrap();
        // Golden truths must come back verbatim.
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t), "golden task {t} not clamped");
        }
    }

    #[test]
    fn warm_start_reaches_cold_fixed_point_faster() {
        use crate::framework::WarmStart;
        let d = small_decision();
        // Warm state from a default-tolerance run; the fixed-point
        // comparison is made at a tight tolerance where the trajectory
        // has settled (see the D&S warm-start test).
        let seed_state = Zc::default()
            .infer(&d, &InferenceOptions::seeded(5))
            .unwrap();
        let tight = InferenceOptions {
            tolerance: 1e-9,
            max_iterations: 500,
            ..InferenceOptions::seeded(5)
        };
        let cold = Zc::default().infer(&d, &tight).unwrap();
        let opts = InferenceOptions {
            warm_start: Some(WarmStart::from_result(&seed_state)),
            ..tight.clone()
        };
        let warm = Zc::default().infer(&d, &opts).unwrap();
        assert!(warm.converged);
        assert_eq!(warm.truths, cold.truths, "warm fixed point moved labels");
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn rejects_bad_qualification_length() {
        let d = toy();
        let opts = InferenceOptions {
            quality_init: QualityInit::Qualification(vec![Some(0.9)]),
            ..Default::default()
        };
        assert!(matches!(
            Zc::default().infer(&d, &opts),
            Err(InferenceError::BadOptions { .. })
        ));
    }

    #[test]
    fn rejects_numeric() {
        let d = small_numeric();
        assert!(Zc::default()
            .infer(&d, &InferenceOptions::default())
            .is_err());
    }
}
