//! Majority Voting (MV) — the baseline direct method.
//!
//! "Regards the choice answered by majority workers as the truth"
//! (Section 5.1). Ties break uniformly at random, which is why MV has a
//! 50% chance of getting `t1` of the running example wrong.

use crowd_data::{Dataset, TaskType};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Majority Voting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mv;

impl Mv {
    /// Run MV directly on a prebuilt categorical view — the streaming
    /// entry point (see `Ds::infer_view`). MV is its own fixed point, so
    /// there is no warm state to resume.
    pub fn infer_view(
        &self,
        view: &Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        crate::framework::validate_view_options(view.m, options)?;
        let post = view.majority_posteriors();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = view.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: vec![WorkerQuality::Unmodeled; view.m],
            iterations: 1,
            converged: true,
            posteriors: Some(post.into_nested()),
        })
    }
}

impl TruthInference for Mv {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        self.infer_view(&cat, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::Answer;

    #[test]
    fn toy_example_majority_behaviour() {
        // MV gets t6 wrong (majority said F, truth is T) and flips a coin
        // on the t1 tie — exactly the failure mode motivating the paper.
        let d = toy();
        let r = Mv.infer(&d, &InferenceOptions::seeded(3)).unwrap();
        assert_result_sane(&d, &r);
        assert_eq!(
            r.truths[5],
            Answer::Label(1),
            "t6 must follow the majority (F)"
        );
        for task in 1..5 {
            assert_eq!(r.truths[task], Answer::Label(1));
        }
    }

    #[test]
    fn tie_breaking_is_seeded() {
        let d = toy();
        let a = Mv.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        let b = Mv.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        assert_eq!(a.truths, b.truths);
        // Across many seeds, t1 should come out both ways.
        let mut saw = [false; 2];
        for seed in 0..64 {
            let r = Mv.infer(&d, &InferenceOptions::seeded(seed)).unwrap();
            saw[r.truths[0].label().unwrap() as usize] = true;
        }
        assert!(saw[0] && saw[1], "tie on t1 never broke both ways");
    }

    #[test]
    fn decent_on_small_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Mv, &d, 0.80);
    }

    #[test]
    fn works_on_single_choice() {
        let d = small_single();
        let r = Mv.infer(&d, &InferenceOptions::seeded(1)).unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.35, "MV accuracy {acc} on 4-choice data");
    }

    #[test]
    fn rejects_numeric() {
        let d = small_numeric();
        assert!(matches!(
            Mv.infer(&d, &InferenceOptions::default()),
            Err(InferenceError::UnsupportedTaskType { .. })
        ));
    }
}
