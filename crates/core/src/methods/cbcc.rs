//! CBCC — Community BCC (Venanzi et al., WWW 2014).
//!
//! Extends [`super::Bcc`] with worker *communities*: "each worker belongs
//! to one community, where each community has a representative confusion
//! matrix, and workers in the same community share very similar confusion
//! matrices" (Section 5.3(2)). The community structure pools statistical
//! strength across sparse workers.
//!
//! Gibbs sweeps sample: community assignments `c_w`, community confusion
//! matrices `π^c` (from the pooled counts of member workers), the class
//! prior, and truths `z_i`. Worker matrices are tied to their community
//! matrix (the hard-sharing variant of the model; Venanzi et al. also
//! explore soft per-worker perturbations, which the pooled Dirichlet
//! posterior subsumes for benchmark purposes).

use crowd_data::{Dataset, TaskType};
use crowd_stats::dist::{sample_categorical, sample_dirichlet};
use crowd_stats::kernels::{exp_slice, safe_ln_slice};
use crowd_stats::DMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Community-based Bayesian classifier combination.
#[derive(Debug, Clone, Copy)]
pub struct Cbcc {
    /// Number of communities `M` (Venanzi et al. use small values).
    pub communities: usize,
    /// Discarded warm-up sweeps.
    pub burn_in: usize,
    /// Retained sweeps.
    pub samples: usize,
    /// Dirichlet prior pseudo-count on diagonal confusion cells.
    pub diag_prior: f64,
    /// Dirichlet prior pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for Cbcc {
    fn default() -> Self {
        Self {
            communities: 4,
            burn_in: 20,
            samples: 60,
            diag_prior: 2.0,
            off_prior: 1.0,
        }
    }
}

impl TruthInference for Cbcc {
    fn name(&self) -> &'static str {
        "CBCC"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        let l = cat.l;
        let mc = self.communities.max(1);
        let mut rng = StdRng::seed_from_u64(options.seed);

        let post0 = cat.majority_posteriors();
        let mut z: Vec<u8> = cat.decode(&post0, &mut rng);
        let mut community: Vec<usize> = (0..cat.m).map(|_| rng.gen_range(0..mc)).collect();

        let mut tally = vec![vec![0u32; l]; cat.n];
        let mut comm_tally = vec![vec![0u32; mc]; cat.m];
        let mut confusion_acc = vec![vec![vec![0.0f64; l]; l]; mc];
        // Log-domain community confusion tables, refreshed once per sweep
        // with one batched safe_ln sweep (community `c`, truth row `j` at
        // DMat row `c·ℓ + j`): the worker-assignment loop then adds table
        // entries instead of paying a clamped `ln` per (answer, community).
        let mut log_pi = DMat::zeros(mc * l, l);
        let mut log_rho = vec![0.0f64; mc];
        let mut logw = vec![0.0f64; mc];
        let mut comm_weights = vec![0.0f64; mc];
        let mut weights = vec![0.0f64; l];

        for sweep in 0..self.burn_in + self.samples {
            // 1. Sample community confusion matrices from pooled counts.
            let mut pooled = vec![vec![vec![0.0f64; l]; l]; mc];
            for w in 0..cat.m {
                let c = community[w];
                for (task, label) in cat.worker(w) {
                    pooled[c][z[task] as usize][label as usize] += 1.0;
                }
            }
            let mut pi = vec![vec![vec![0.0f64; l]; l]; mc];
            for (c, pool) in pooled.iter().enumerate() {
                for j in 0..l {
                    let alpha: Vec<f64> = (0..l)
                        .map(|k| {
                            pool[j][k]
                                + if j == k {
                                    self.diag_prior
                                } else {
                                    self.off_prior
                                }
                        })
                        .collect();
                    pi[c][j] = sample_dirichlet(&mut rng, &alpha);
                }
            }

            // 2. Sample community sizes prior and worker assignments.
            // The log tables refresh once per sweep: `ln ρ_c` and every
            // `ln π^c[j][k]` (clamped at 1e-12, batched) — elementwise
            // identical to the per-answer clamp-and-ln the loop below
            // used to pay.
            let mut comm_counts = vec![1.0f64; mc];
            for &c in &community {
                comm_counts[c] += 1.0;
            }
            let rho = sample_dirichlet(&mut rng, &comm_counts);
            log_rho.copy_from_slice(&rho);
            safe_ln_slice(&mut log_rho);
            for (c, pc) in pi.iter().enumerate() {
                for (j, row) in pc.iter().enumerate() {
                    log_pi.row_mut(c * l + j).copy_from_slice(row);
                }
            }
            safe_ln_slice(log_pi.data_mut());
            let lp = log_pi.data();
            let stride = l * l;
            for w in 0..cat.m {
                // log-likelihood of w's answers under each community:
                // walk the flat table at fixed (truth, label) offset,
                // community-major.
                logw.copy_from_slice(&log_rho);
                for (task, label) in cat.worker(w) {
                    let mut idx = z[task] as usize * l + label as usize;
                    for lw in logw.iter_mut() {
                        *lw += lp[idx];
                        idx += stride;
                    }
                }
                let max = logw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                for (wt, &x) in comm_weights.iter_mut().zip(&logw) {
                    *wt = x - max;
                }
                exp_slice(&mut comm_weights);
                community[w] = sample_categorical(&mut rng, &comm_weights);
            }

            // 3. Sample the class prior and truths.
            let mut class_counts = vec![1.0f64; l];
            for &zi in &z {
                class_counts[zi as usize] += 1.0;
            }
            let prior = sample_dirichlet(&mut rng, &class_counts);
            for task in 0..cat.n {
                weights.copy_from_slice(&prior);
                for (worker, label) in cat.task(task) {
                    let c = community[worker];
                    for (j, wgt) in weights.iter_mut().enumerate() {
                        *wgt *= pi[c][j][label as usize].max(1e-12);
                    }
                }
                let max = weights.iter().copied().fold(0.0f64, f64::max);
                if max > 0.0 {
                    weights.iter_mut().for_each(|w| *w /= max);
                }
                z[task] = sample_categorical(&mut rng, &weights) as u8;
            }

            if sweep >= self.burn_in {
                for (task, &zi) in z.iter().enumerate() {
                    tally[task][zi as usize] += 1;
                }
                for (w, &c) in community.iter().enumerate() {
                    comm_tally[w][c] += 1;
                }
                for c in 0..mc {
                    for j in 0..l {
                        for k in 0..l {
                            confusion_acc[c][j][k] += pi[c][j][k];
                        }
                    }
                }
            }
        }

        let posteriors: Vec<Vec<f64>> = tally
            .iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .iter()
                    .map(|&c| c as f64 / total.max(1) as f64)
                    .collect()
            })
            .collect();

        // Report each worker's modal community matrix (posterior mean).
        let worker_quality: Vec<WorkerQuality> = (0..cat.m)
            .map(|w| {
                let c = comm_tally[w]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| n)
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                let m: Vec<Vec<f64>> = confusion_acc[c]
                    .iter()
                    .map(|row| row.iter().map(|&x| x / self.samples as f64).collect())
                    .collect();
                WorkerQuality::Confusion(m)
            })
            .collect();

        let labels = cat.decode_nested(&posteriors, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations: self.burn_in + self.samples,
            converged: true,
            posteriors: Some(posteriors),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn solves_toy_example() {
        let d = toy();
        let r = Cbcc::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Cbcc::default(), &d, 0.82);
    }

    #[test]
    fn community_count_one_still_works() {
        let d = small_decision();
        let m = Cbcc {
            communities: 1,
            ..Default::default()
        };
        let r = m.infer(&d, &InferenceOptions::seeded(4)).unwrap();
        let acc = accuracy(&d, &r);
        assert!(acc > 0.8, "single-community CBCC accuracy {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = small_decision();
        let a = Cbcc::default()
            .infer(&d, &InferenceOptions::seeded(8))
            .unwrap();
        let b = Cbcc::default()
            .infer(&d, &InferenceOptions::seeded(8))
            .unwrap();
        assert_eq!(a.truths, b.truths);
    }

    #[test]
    fn works_on_single_choice() {
        let d = small_single();
        let r = Cbcc::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        assert_result_sane(&d, &r);
    }
}
