//! BCC — Bayesian Classifier Combination (Kim & Ghahramani, AISTATS 2012).
//!
//! Confusion-matrix worker model with full Bayesian treatment: the target
//! is the posterior joint probability (Section 5.3(2)), sampled with
//! collapsed Gibbs sampling:
//!
//! - `z_i | rest ∝ p(z_i) Π_{w∈W_i} π^w[z_i][v_i^w]`
//! - `π^w[j] | rest ~ Dirichlet(α_j + counts of w's answers on tasks with
//!   z = j)`
//! - `p ~ Dirichlet(β + class counts)`
//!
//! The chain runs `burn_in + samples` sweeps; per-task posteriors are the
//! empirical label frequencies over the retained sweeps. This is also why
//! BCC costs ~10× D&S in Table 6 — many sweeps versus a few EM steps.

use crowd_data::{Dataset, TaskType};
use crowd_stats::dist::{sample_categorical, sample_dirichlet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Gibbs-sampled Bayesian classifier combination.
#[derive(Debug, Clone, Copy)]
pub struct Bcc {
    /// Discarded warm-up sweeps.
    pub burn_in: usize,
    /// Retained sweeps for the posterior estimate.
    pub samples: usize,
    /// Dirichlet prior pseudo-count on diagonal confusion cells.
    pub diag_prior: f64,
    /// Dirichlet prior pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for Bcc {
    fn default() -> Self {
        Self {
            burn_in: 20,
            samples: 60,
            diag_prior: 2.0,
            off_prior: 1.0,
        }
    }
}

impl TruthInference for Bcc {
    fn name(&self) -> &'static str {
        "BCC"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        let l = cat.l;
        let mut rng = StdRng::seed_from_u64(options.seed);

        // Initialise z from majority vote.
        let post0 = cat.majority_posteriors();
        let mut z: Vec<u8> = cat.decode(&post0, &mut rng);

        let mut tally = vec![vec![0u32; l]; cat.n];
        let mut confusion_acc = vec![vec![vec![0.0f64; l]; l]; cat.m];
        // Truth-sampling weight row, reused across tasks and sweeps.
        let mut weights = vec![0.0f64; l];

        for sweep in 0..self.burn_in + self.samples {
            // Sample confusion matrices given z.
            let mut confusion = vec![vec![vec![0.0f64; l]; l]; cat.m];
            for w in 0..cat.m {
                let mut counts = vec![vec![0.0f64; l]; l];
                for (task, label) in cat.worker(w) {
                    counts[z[task] as usize][label as usize] += 1.0;
                }
                for j in 0..l {
                    let alpha: Vec<f64> = (0..l)
                        .map(|k| {
                            counts[j][k]
                                + if j == k {
                                    self.diag_prior
                                } else {
                                    self.off_prior
                                }
                        })
                        .collect();
                    confusion[w][j] = sample_dirichlet(&mut rng, &alpha);
                }
            }

            // Sample the class prior given z.
            let mut class_counts = vec![1.0f64; l]; // Dirichlet(1) prior
            for &zi in &z {
                class_counts[zi as usize] += 1.0;
            }
            let prior = sample_dirichlet(&mut rng, &class_counts);

            // Sample z given confusion matrices and prior.
            for task in 0..cat.n {
                weights.copy_from_slice(&prior);
                for (worker, label) in cat.task(task) {
                    for (j, wgt) in weights.iter_mut().enumerate() {
                        *wgt *= confusion[worker][j][label as usize].max(1e-12);
                    }
                }
                // Rescale to avoid underflow on high-degree tasks.
                let max = weights.iter().copied().fold(0.0f64, f64::max);
                if max > 0.0 {
                    weights.iter_mut().for_each(|w| *w /= max);
                }
                z[task] = sample_categorical(&mut rng, &weights) as u8;
            }

            if sweep >= self.burn_in {
                for (task, &zi) in z.iter().enumerate() {
                    tally[task][zi as usize] += 1;
                }
                for w in 0..cat.m {
                    for j in 0..l {
                        for k in 0..l {
                            confusion_acc[w][j][k] += confusion[w][j][k];
                        }
                    }
                }
            }
        }

        // Posterior estimates.
        let posteriors: Vec<Vec<f64>> = tally
            .iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .iter()
                    .map(|&c| c as f64 / total.max(1) as f64)
                    .collect()
            })
            .collect();
        let mean_confusion: Vec<Vec<Vec<f64>>> = confusion_acc
            .into_iter()
            .map(|rows| {
                rows.into_iter()
                    .map(|row| row.into_iter().map(|c| c / self.samples as f64).collect())
                    .collect()
            })
            .collect();

        let labels = cat.decode_nested(&posteriors, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality: mean_confusion
                .into_iter()
                .map(WorkerQuality::Confusion)
                .collect(),
            iterations: self.burn_in + self.samples,
            converged: true,
            posteriors: Some(posteriors),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy_example() {
        let d = toy();
        let r = Bcc::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Bcc::default(), &d, 0.85);
    }

    #[test]
    fn works_on_single_choice() {
        let d = small_single();
        let r = Bcc::default()
            .infer(&d, &InferenceOptions::seeded(2))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.35, "BCC single-choice accuracy {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = small_decision();
        let a = Bcc::default()
            .infer(&d, &InferenceOptions::seeded(8))
            .unwrap();
        let b = Bcc::default()
            .infer(&d, &InferenceOptions::seeded(8))
            .unwrap();
        assert_eq!(a.truths, b.truths);
    }

    #[test]
    fn confusion_rows_are_stochastic() {
        let d = toy();
        let r = Bcc::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Confusion(m) = q else {
                panic!()
            };
            for row in m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "row sums to {s}");
            }
        }
    }
}
