//! LFC_N — the numeric variant of Learning From Crowds (Raykar et al.,
//! JMLR 2010, §Section "regression").
//!
//! Worker model: answers are Gaussian around the truth with per-worker
//! variance, `v_i^w ~ N(v*_i, σ_w²)` (Section 4.2.3 with zero bias; the
//! bias-aware variant lives in the crowd simulator). EM alternates:
//!
//! - truth: precision-weighted mean `v*_i = Σ_w v_i^w/σ_w² / Σ_w 1/σ_w²`;
//! - variance: `σ_w² = mean_i (v_i^w − v*_i)²`, smoothed by an
//!   inverse-gamma prior so single-answer workers stay finite.

use crowd_data::{Dataset, TaskType};
use crowd_stats::ConvergenceTracker;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, QualityInit,
    TruthInference, WorkerQuality,
};
use crate::views::Num;

/// Gaussian worker-variance EM for numeric tasks.
#[derive(Debug, Clone, Copy)]
pub struct LfcN {
    /// Inverse-gamma prior shape (pseudo observation count).
    pub prior_count: f64,
    /// Inverse-gamma prior scale (pseudo sum of squares).
    pub prior_ss: f64,
}

impl Default for LfcN {
    fn default() -> Self {
        Self {
            prior_count: 2.0,
            prior_ss: 2.0,
        }
    }
}

impl TruthInference for LfcN {
    fn name(&self) -> &'static str {
        "LFC_N"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::Numeric
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let num = Num::build(self.name(), dataset, options, true)?;

        // Initial variances: uniform, or derived from qualification RMSE
        // (the accuracy proxy a = 1/(1 + rmse/10) inverts to rmse).
        let mut var: Vec<f64> = match &options.quality_init {
            QualityInit::Uniform => vec![1.0; num.m],
            QualityInit::Qualification(q) => q
                .iter()
                .map(|s| match s {
                    Some(a) if *a > 0.0 => {
                        let rmse = 10.0 * (1.0 / a - 1.0);
                        (rmse * rmse).max(1e-3)
                    }
                    _ => 1.0,
                })
                .collect(),
        };

        let mut truths = num.mean_estimates();
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        loop {
            // Truth step: precision-weighted means. Everything updates in
            // place over the CSR view — no allocation per iteration.
            for task in 0..num.n {
                if let Some(g) = num.golden[task] {
                    truths[task] = g;
                    continue;
                }
                if num.task_len(task) == 0 {
                    continue;
                }
                let mut wsum = 0.0;
                let mut vsum = 0.0;
                for (worker, v) in num.task(task) {
                    let prec = 1.0 / var[worker].max(1e-9);
                    wsum += prec;
                    vsum += prec * v;
                }
                truths[task] = vsum / wsum;
            }

            // Variance step with inverse-gamma smoothing.
            for wkr in 0..num.m {
                let ss: f64 = num.worker(wkr).map(|(t, v)| (v - truths[t]).powi(2)).sum();
                var[wkr] = (ss + self.prior_ss) / (num.worker_len(wkr) as f64 + self.prior_count);
            }

            if tracker.step(&truths) {
                break;
            }
        }

        Ok(InferenceResult {
            truths: Num::answers(&truths),
            worker_quality: var.into_iter().map(WorkerQuality::Variance).collect(),
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn downweights_noisy_worker() {
        // Worker 2 is wildly noisy; LFC_N should learn a large variance
        // for them and land nearer the two consistent workers.
        let mut b = DatasetBuilder::new("n", TaskType::Numeric, 8, 3);
        let truths = [10.0, -5.0, 3.0, 7.0, 0.0, 12.0, -2.0, 4.0];
        for (t, &tr) in truths.iter().enumerate() {
            b.add_numeric(t, 0, tr + 0.5).unwrap();
            b.add_numeric(t, 1, tr - 0.4).unwrap();
            b.add_numeric(t, 2, tr + if t % 2 == 0 { 25.0 } else { -25.0 })
                .unwrap();
            b.set_truth_numeric(t, tr).unwrap();
        }
        let d = b.build();
        let r = LfcN::default()
            .infer(&d, &InferenceOptions::seeded(0))
            .unwrap();
        let vars: Vec<f64> = r
            .worker_quality
            .iter()
            .map(|q| match q {
                WorkerQuality::Variance(v) => *v,
                _ => panic!("expected variance"),
            })
            .collect();
        assert!(vars[2] > 10.0 * vars[0], "noisy worker variance {vars:?}");
        let e = rmse(&d, &r);
        assert!(
            e < 2.0,
            "LFC_N RMSE {e} should be far below the noisy worker's 25"
        );
    }

    #[test]
    fn reasonable_on_emotion_sim() {
        let d = small_numeric();
        let r = LfcN::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let e = rmse(&d, &r);
        assert!(e < 18.0, "LFC_N RMSE {e}");
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_numeric();
        let split = GoldenSplit::sample(&d, 0.3, 4);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(4)
        };
        let r = LfcN::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn qualification_init_shapes_variances() {
        let d = small_numeric();
        let q = crowd_data::bootstrap_qualification(&d, 20, 2);
        let opts = InferenceOptions {
            quality_init: QualityInit::Qualification(q.accuracy),
            ..InferenceOptions::seeded(2)
        };
        let r = LfcN::default().infer(&d, &opts).unwrap();
        assert_result_sane(&d, &r);
    }

    #[test]
    fn rejects_categorical() {
        let d = toy();
        assert!(LfcN::default()
            .infer(&d, &InferenceOptions::default())
            .is_err());
    }
}
