//! Multi — The Multidimensional Wisdom of Crowds (Welinder, Branson,
//! Perona & Belongie, NIPS 2010).
//!
//! Decision-making tasks (Table 4). The richest worker model in the
//! benchmark: each task is a latent vector `x_i ∈ ℝ^K` (latent topics /
//! image-formation factors), each worker a weight vector `w_w ∈ ℝ^K`
//! (diverse skills / attention to each factor) plus a decision threshold
//! `τ_w` (worker bias); the answer is a noisy linear classification:
//!
//! ```text
//! Pr(v_i^w = 'T') = σ( ⟨w_w, x_i⟩ − τ_w )
//! ```
//!
//! MAP inference by alternating gradient ascent on `x`, `w`, `τ` under
//! Gaussian priors. The estimated truth is the sign of the task's
//! projection onto the crowd's consensus direction (the mean worker
//! vector), offset by the mean threshold.
//!
//! The paper's finding — the extra machinery does *not* beat confusion
//! matrices on these datasets and costs more time (§6.3.4) — is
//! reproduced in the experiment harness.

use crowd_data::{Dataset, TaskType};
use crowd_stats::dist::sample_gaussian;
use crowd_stats::kernels::sigmoid_slice;
use crowd_stats::{ConvergenceTracker, DMat};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Welinder et al.'s multidimensional worker/task model.
#[derive(Debug, Clone, Copy)]
pub struct Multi {
    /// Latent dimensionality `K`.
    pub dims: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Gradient steps per outer iteration.
    pub gradient_steps: usize,
    /// Precision of the Gaussian priors on `x`, `w`, `τ`.
    pub prior_precision: f64,
}

impl Default for Multi {
    fn default() -> Self {
        Self {
            dims: 3,
            learning_rate: 0.3,
            gradient_steps: 10,
            prior_precision: 0.05,
        }
    }
}

impl TruthInference for Multi {
    fn name(&self) -> &'static str {
        "Multi"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::DecisionMaking
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        let k = self.dims.max(1);
        let mut rng = StdRng::seed_from_u64(options.seed);

        // Task embeddings: axis 0 initialised from the majority-vote
        // signal (+1 for 'T'-leaning, −1 for 'F'-leaning), other axes
        // small noise. Worker vectors start at e_0 + noise, thresholds 0.
        // Both live in flat row-major matrices (`n × K`, `m × K`) so the
        // gradient sweeps read contiguous memory; the RNG draw order
        // matches the old nested-`Vec` initialisation exactly.
        let post0 = cat.majority_posteriors();
        let mut x = DMat::zeros(cat.n, k);
        for i in 0..cat.n {
            let row = x.row_mut(i);
            row[0] = 2.0 * post0.row(i)[0] - 1.0;
            for d in row.iter_mut().skip(1) {
                *d = sample_gaussian(&mut rng, 0.0, 0.1);
            }
        }
        let mut w = DMat::zeros(cat.m, k);
        for i in 0..cat.m {
            let row = w.row_mut(i);
            for d in row.iter_mut() {
                *d = sample_gaussian(&mut rng, 0.0, 0.1);
            }
            row[0] += 1.0;
        }
        let mut tau = vec![0.0f64; cat.m];

        // Per-iteration scratch, allocated once: gradient matrices, the
        // convergence parameter vector, and the batched per-answer score
        // buffer (sized by the largest task degree).
        let mut gx = DMat::zeros(cat.n, k);
        let mut gw = DMat::zeros(cat.m, k);
        let mut gt = vec![0.0f64; cat.m];
        let mut params: Vec<f64> = Vec::with_capacity((cat.n + cat.m) * k + cat.m);
        let max_deg = (0..cat.n).map(|t| cat.task_len(t)).max().unwrap_or(0);
        let mut sig = vec![0.0f64; max_deg];

        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // Degree normalisers keep per-step movement independent of how
        // many answers an entity has — heavy workers would otherwise take
        // steps of magnitude lr·|T^w| and oscillate into clamp corners.
        let task_deg: Vec<f64> = (0..cat.n).map(|t| cat.task_len(t).max(1) as f64).collect();
        let worker_deg: Vec<f64> = (0..cat.m)
            .map(|w| cat.worker_len(w).max(1) as f64)
            .collect();

        loop {
            for _ in 0..self.gradient_steps {
                gx.fill(0.0);
                gw.fill(0.0);
                gt.fill(0.0);

                // Two passes per task row: the dot-product scores go
                // through one batched sigmoid sweep, then the error
                // terms accumulate in the original answer order.
                for task in 0..cat.n {
                    let row = cat.task_row(task);
                    let deg = row.len();
                    let x_row = x.row(task);
                    for (s, &(worker, _)) in sig.iter_mut().zip(row) {
                        *s = x_row
                            .iter()
                            .zip(w.row(worker as usize))
                            .map(|(a, b)| a * b)
                            .sum::<f64>()
                            - tau[worker as usize];
                    }
                    sigmoid_slice(&mut sig[..deg]);
                    let x_row = x.row(task);
                    let gx_row = gx.row_mut(task);
                    for (&(worker, label), &s) in row.iter().zip(&sig[..deg]) {
                        let worker = worker as usize;
                        let target = if label == 0 { 1.0 } else { 0.0 };
                        let err = target - s;
                        let w_row = w.row(worker);
                        for (gx_d, &w_d) in gx_row.iter_mut().zip(w_row) {
                            *gx_d += err * w_d;
                        }
                        let gw_row = gw.row_mut(worker);
                        for (gw_d, &x_d) in gw_row.iter_mut().zip(x_row) {
                            *gw_d += err * x_d;
                        }
                        gt[worker] -= err;
                    }
                }

                let lr = self.learning_rate;
                let lam = self.prior_precision;
                for t in 0..cat.n {
                    let gi = gx.row(t);
                    let deg = task_deg[t];
                    let xi = x.row_mut(t);
                    for d in 0..k {
                        xi[d] += lr * (gi[d] / deg - lam * xi[d]);
                        xi[d] = xi[d].clamp(-6.0, 6.0);
                    }
                }
                // The worker prior is centred at e_0 (a competent,
                // unbiased worker); it also anchors the global sign
                // symmetry (x, w) → (−x, −w) to the MV-aligned branch.
                for wk in 0..cat.m {
                    let gi = gw.row(wk);
                    let deg = worker_deg[wk];
                    let wi = w.row_mut(wk);
                    for d in 0..k {
                        let prior_mean = if d == 0 { 1.0 } else { 0.0 };
                        wi[d] += lr * (gi[d] / deg - lam * (wi[d] - prior_mean));
                        wi[d] = wi[d].clamp(-6.0, 6.0);
                    }
                }
                for (wk, (ti, gi)) in tau.iter_mut().zip(&gt).enumerate() {
                    *ti += lr * (-gi / worker_deg[wk] - lam * *ti);
                    *ti = ti.clamp(-4.0, 4.0);
                }
            }

            params.clear();
            params.extend_from_slice(x.data());
            params.extend_from_slice(w.data());
            params.extend_from_slice(&tau);
            if tracker.step(&params) {
                break;
            }
        }

        // Consensus direction: mean worker vector and threshold.
        let mut u = vec![0.0f64; k];
        for wk in 0..cat.m {
            for (ud, &wd) in u.iter_mut().zip(w.row(wk)) {
                *ud += wd;
            }
        }
        u.iter_mut().for_each(|d| *d /= cat.m.max(1) as f64);
        let tau_bar: f64 = tau.iter().sum::<f64>() / cat.m.max(1) as f64;

        // Final decode: one batched sigmoid over all task scores.
        let mut truths = vec![0u8; cat.n];
        let mut scores = vec![0.0f64; cat.n];
        for (task, s) in scores.iter_mut().enumerate() {
            *s = x.row(task).iter().zip(&u).map(|(a, b)| a * b).sum::<f64>() - tau_bar;
        }
        sigmoid_slice(&mut scores);
        let mut posteriors = Vec::with_capacity(cat.n);
        for (task, &p) in scores.iter().enumerate() {
            truths[task] = if p >= 0.5 { 0 } else { 1 };
            posteriors.push(vec![p, 1.0 - p]);
        }

        let worker_quality: Vec<WorkerQuality> = (0..cat.m)
            .map(|wk| {
                // Report the skill vector; the threshold is the bias entry
                // appended so diagnostics can reconstruct the model.
                let mut s = w.row(wk).to_vec();
                s.push(tau[wk]);
                WorkerQuality::Skills(s)
            })
            .collect();

        Ok(InferenceResult {
            truths: Cat::answers(&truths),
            worker_quality,
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(posteriors),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy() {
        let d = toy();
        let r = Multi::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn good_on_balanced_decision_data() {
        let d = crowd_data::datasets::PaperDataset::DPosSent.generate(0.2, 19);
        assert_accuracy_at_least(&Multi::default(), &d, 0.85);
    }

    #[test]
    fn acceptable_on_imbalanced_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Multi::default(), &d, 0.75);
    }

    #[test]
    fn skill_vectors_have_dims_plus_bias() {
        let d = toy();
        let m = Multi {
            dims: 4,
            ..Default::default()
        };
        let r = m.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Skills(s) = q else {
                panic!()
            };
            assert_eq!(s.len(), 5);
        }
    }

    #[test]
    fn rejects_single_choice_and_numeric() {
        assert!(Multi::default()
            .infer(&small_single(), &InferenceOptions::default())
            .is_err());
        assert!(Multi::default()
            .infer(&small_numeric(), &InferenceOptions::default())
            .is_err());
    }
}
