//! LFC — Learning From Crowds (Raykar et al., JMLR 2010).
//!
//! Extends D&S by placing priors on the worker model: each confusion-
//! matrix row is drawn from a Dirichlet whose pseudo-counts favour the
//! diagonal (the Beta-prior sensitivity/specificity model of the original
//! two-class formulation, generalised to `ℓ` classes). The paper groups
//! LFC with D&S/BCC as the consistently strong trio (§6.3.1, Table 6).

use crowd_data::{Dataset, TaskType};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
};
use crate::methods::ds::DsEngine;

/// LFC: MAP Dawid–Skene with diagonal-favouring Dirichlet priors.
#[derive(Debug, Clone, Copy)]
pub struct Lfc {
    /// Pseudo-count on diagonal confusion cells (`Pr(correct)` prior mass).
    pub diag_prior: f64,
    /// Pseudo-count on off-diagonal cells.
    pub off_prior: f64,
}

impl Default for Lfc {
    fn default() -> Self {
        // Matches a Beta(4, 2)-per-row belief that workers are better
        // than chance — the shape Raykar et al. recommend.
        Self {
            diag_prior: 4.0,
            off_prior: 1.0,
        }
    }
}

impl Lfc {
    /// Run LFC directly on a prebuilt categorical view — the streaming
    /// entry point (see `Ds::infer_view`); `options.warm_start` resumes
    /// from a previous run's state.
    pub fn infer_view(
        &self,
        view: &crate::views::Cat,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        DsEngine {
            method: self.name(),
            diag_prior: self.diag_prior,
            off_prior: self.off_prior,
        }
        .run_view(view, options)
    }

    /// Run LFC on a task-range sharded view — bit-identical to
    /// [`Self::infer_view`] on the equivalent flat view at any shard
    /// count; see `DsEngine::run_sharded`.
    pub fn infer_sharded(
        &self,
        view: &crate::views::ShardedView,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        DsEngine {
            method: self.name(),
            diag_prior: self.diag_prior,
            off_prior: self.off_prior,
        }
        .run_sharded(view, options)
    }
}

impl TruthInference for Lfc {
    fn name(&self) -> &'static str {
        "LFC"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_qualification(&self) -> bool {
        true
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        DsEngine {
            method: self.name(),
            diag_prior: self.diag_prior,
            off_prior: self.off_prior,
        }
        .run(dataset, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crate::methods::Ds;
    use crate::WorkerQuality;

    #[test]
    fn reasonable_on_toy_example() {
        let d = toy();
        let r = Lfc::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn strong_on_decision_data() {
        let d = small_decision();
        assert_accuracy_at_least(&Lfc::default(), &d, 0.85);
    }

    #[test]
    fn priors_pull_sparse_workers_toward_competence() {
        // A worker with a single answer: D&S's near-ML estimate is extreme,
        // LFC's prior keeps the diagonal near the prior mean.
        use crowd_data::{DatasetBuilder, TaskType};
        let mut b = DatasetBuilder::new("sparse", TaskType::DecisionMaking, 4, 4);
        // Three dense workers answering everything correctly-ish.
        for t in 0..4 {
            for w in 0..3 {
                b.add_label(t, w, (t % 2) as u8).unwrap();
            }
        }
        // Worker 3 answers one task, wrongly.
        b.add_label(0, 3, 1).unwrap();
        let d = b.build();
        let lfc = Lfc::default()
            .infer(&d, &InferenceOptions::seeded(0))
            .unwrap();
        let ds = Ds.infer(&d, &InferenceOptions::seeded(0)).unwrap();
        let diag = |q: &WorkerQuality| match q {
            WorkerQuality::Confusion(m) => (m[0][0] + m[1][1]) / 2.0,
            _ => panic!("expected confusion"),
        };
        let lfc_d = diag(&lfc.worker_quality[3]);
        let ds_d = diag(&ds.worker_quality[3]);
        assert!(
            lfc_d > ds_d + 0.05,
            "prior should lift the sparse worker: LFC {lfc_d} vs D&S {ds_d}"
        );
    }

    #[test]
    fn close_to_ds_on_dense_data() {
        let d = small_decision();
        let a = accuracy(
            &d,
            &Lfc::default()
                .infer(&d, &InferenceOptions::seeded(3))
                .unwrap(),
        );
        let b = accuracy(&d, &Ds.infer(&d, &InferenceOptions::seeded(3)).unwrap());
        assert!(
            (a - b).abs() < 0.05,
            "LFC {a} vs D&S {b} diverged on dense data"
        );
    }

    #[test]
    fn rejects_numeric() {
        let d = small_numeric();
        assert!(Lfc::default()
            .infer(&d, &InferenceOptions::default())
            .is_err());
    }
}
