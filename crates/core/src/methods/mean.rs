//! Mean — the direct baseline for numeric tasks (Section 5.1).
//!
//! Notably, the paper finds Mean *wins* on N_Emotion (Table 6): the
//! sophisticated numeric methods fail to estimate worker qualities well
//! enough to beat the flat average.

use crowd_data::{Dataset, TaskType};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Num;

/// Per-task arithmetic mean of workers' answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAgg;

impl TruthInference for MeanAgg {
    fn name(&self) -> &'static str {
        "Mean"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::Numeric
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let num = Num::build(self.name(), dataset, options, false)?;
        let estimates = num.mean_estimates();
        Ok(InferenceResult {
            truths: Num::answers(&estimates),
            worker_quality: vec![WorkerQuality::Unmodeled; num.m],
            iterations: 1,
            converged: true,
            posteriors: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn averages_exactly() {
        let mut b = DatasetBuilder::new("m", TaskType::Numeric, 2, 3);
        b.add_numeric(0, 0, 1.0).unwrap();
        b.add_numeric(0, 1, 2.0).unwrap();
        b.add_numeric(0, 2, 6.0).unwrap();
        b.add_numeric(1, 0, -4.0).unwrap();
        let d = b.build();
        let r = MeanAgg.infer(&d, &InferenceOptions::default()).unwrap();
        assert!((r.truths[0].numeric().unwrap() - 3.0).abs() < 1e-12);
        assert!((r.truths[1].numeric().unwrap() + 4.0).abs() < 1e-12);
    }

    #[test]
    fn tracks_truth_on_emotion_sim() {
        let d = small_numeric();
        let r = MeanAgg.infer(&d, &InferenceOptions::default()).unwrap();
        assert_result_sane(&d, &r);
        let e = rmse(&d, &r);
        // Workers have RMSE ≳ 20; averaging 10 of them should land
        // well under that.
        assert!(e < 20.0, "Mean RMSE {e}");
    }

    #[test]
    fn rejects_categorical() {
        let d = toy();
        assert!(matches!(
            MeanAgg.infer(&d, &InferenceOptions::default()),
            Err(InferenceError::UnsupportedTaskType { .. })
        ));
    }
}
