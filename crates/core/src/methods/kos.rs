//! KOS — Karger, Oh & Shah (NIPS 2011): iterative learning on the
//! task–worker bipartite graph.
//!
//! Decision-making tasks only (Table 4). Answers are encoded as
//! `A_{iw} ∈ {+1, −1}`; task→worker and worker→task messages are iterated:
//!
//! ```text
//! x_{i→w} = Σ_{w'∈W_i \ w} A_{iw'} · y_{w'→i}
//! y_{w→i} = Σ_{i'∈T^w \ i} A_{i'w} · x_{i'→w}
//! ```
//!
//! with `y` initialised from `N(1, 1)` as in the original paper, and the
//! final estimate `v*_i = sign( Σ_{w∈W_i} A_{iw} y_{w→i} )`. The messages
//! are normalised each round to prevent magnitude blow-up (the algorithm
//! is scale-invariant).

use crowd_data::{Dataset, TaskType};
use crowd_stats::dist::sample_gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// KOS belief-propagation-style message passing.
#[derive(Debug, Clone, Copy)]
pub struct Kos {
    /// Message-passing rounds (the original paper uses a small constant;
    /// 10 suffices on all benchmark datasets).
    pub rounds: usize,
}

impl Default for Kos {
    fn default() -> Self {
        Self { rounds: 10 }
    }
}

impl TruthInference for Kos {
    fn name(&self) -> &'static str {
        "KOS"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type == TaskType::DecisionMaking
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, false)?;
        let mut rng = StdRng::seed_from_u64(options.seed);

        // Edge list with per-edge messages. sign = +1 for label 0 ('T').
        struct Edge {
            sign: f64,
            x: f64, // task → worker
            y: f64, // worker → task
        }
        let mut edges: Vec<Edge> = Vec::new();
        let mut task_edges: Vec<Vec<usize>> = vec![Vec::new(); cat.n];
        let mut worker_edges: Vec<Vec<usize>> = vec![Vec::new(); cat.m];
        for task in 0..cat.n {
            for (worker, label) in cat.task(task) {
                let sign = if label == 0 { 1.0 } else { -1.0 };
                let idx = edges.len();
                edges.push(Edge {
                    sign,
                    x: 0.0,
                    y: sample_gaussian(&mut rng, 1.0, 1.0),
                });
                task_edges[task].push(idx);
                worker_edges[worker].push(idx);
            }
        }

        for _ in 0..self.rounds {
            // Task → worker.
            for task in 0..cat.n {
                let total: f64 = task_edges[task]
                    .iter()
                    .map(|&e| edges[e].sign * edges[e].y)
                    .sum();
                for &e in &task_edges[task] {
                    edges[e].x = total - edges[e].sign * edges[e].y;
                }
            }
            // Worker → task.
            for worker in 0..cat.m {
                let total: f64 = worker_edges[worker]
                    .iter()
                    .map(|&e| edges[e].sign * edges[e].x)
                    .sum();
                for &e in &worker_edges[worker] {
                    edges[e].y = total - edges[e].sign * edges[e].x;
                }
            }
            // Normalise y-messages (scale invariance).
            let norm =
                (edges.iter().map(|e| e.y * e.y).sum::<f64>() / edges.len().max(1) as f64).sqrt();
            if norm > 1e-12 {
                for e in &mut edges {
                    e.y /= norm;
                }
            }
        }

        // Decision: sign of the aggregated worker messages. The message
        // dynamics have a global sign symmetry (y → −y flips every
        // estimate); orient the solution with the model's own
        // assumption that the average worker is better than chance, by
        // aligning the margins with the raw answer sums.
        let mut margins = vec![0.0f64; cat.n];
        let mut orientation = 0.0f64;
        for task in 0..cat.n {
            let score: f64 = task_edges[task]
                .iter()
                .map(|&e| edges[e].sign * edges[e].y)
                .sum();
            margins[task] = score;
            let raw: f64 = task_edges[task].iter().map(|&e| edges[e].sign).sum();
            orientation += score * raw;
        }
        if orientation < 0.0 {
            margins.iter_mut().for_each(|m| *m = -*m);
        }
        let mut truths = vec![0u8; cat.n];
        for (task, &score) in margins.iter().enumerate() {
            truths[task] = if score > 0.0 {
                0
            } else if score < 0.0 {
                1
            } else {
                rng.gen_range(0..2) as u8
            };
        }

        // Worker quality proxy: mean y-message (the KOS reliability score).
        let mut quality = vec![0.0f64; cat.m];
        for worker in 0..cat.m {
            let es = &worker_edges[worker];
            if !es.is_empty() {
                quality[worker] = es.iter().map(|&e| edges[e].y).sum::<f64>() / es.len() as f64;
            }
        }

        // Posteriors from margins via a logistic squash (diagnostic only).
        let posteriors: Vec<Vec<f64>> = margins
            .iter()
            .map(|&s| {
                let p = 1.0 / (1.0 + crowd_stats::kernels::exp(-s));
                vec![p, 1.0 - p]
            })
            .collect();

        Ok(InferenceResult {
            truths: Cat::answers(&truths),
            worker_quality: quality.into_iter().map(WorkerQuality::Weight).collect(),
            iterations: self.rounds,
            converged: true,
            posteriors: Some(posteriors),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn runs_on_toy() {
        // Message passing on a 3-worker, 6-task graph with N(1,1) message
        // initialisation is dominated by the random init — any accuracy
        // bar small enough to be stable here is also passed by a coin
        // flip, so this test checks structural invariants only. The
        // accuracy regression power lives in
        // `good_on_balanced_decision_data` (0.85 on a ~200-task
        // instance), where the signal dwarfs the init noise.
        let d = toy();
        for seed in 1..=4 {
            let r = Kos::default()
                .infer(&d, &InferenceOptions::seeded(seed))
                .unwrap();
            assert_result_sane(&d, &r);
        }
    }

    #[test]
    fn good_on_balanced_decision_data() {
        // KOS theory assumes balanced classes; use D_PosSent-like data.
        let d = crowd_data::datasets::PaperDataset::DPosSent.generate(0.2, 77);
        assert_accuracy_at_least(&Kos::default(), &d, 0.85);
    }

    #[test]
    fn f1_trails_ds_on_imbalanced_data() {
        // The paper's Table 6: KOS *accuracy* on D_Product matches MV
        // (89.6%) but its F1 (50.3%) trails D&S (71.6%) badly — the
        // balanced-class assumption hurts the minority class. Pin the F1
        // direction.
        use crate::methods::Ds;
        let d = small_decision();
        let kos = Kos::default()
            .infer(&d, &InferenceOptions::seeded(5))
            .unwrap();
        let ds = Ds.infer(&d, &InferenceOptions::seeded(5)).unwrap();
        assert!(
            f1(&d, &kos) <= f1(&d, &ds) + 0.02,
            "KOS F1 {} should not beat D&S F1 {}",
            f1(&d, &kos),
            f1(&d, &ds)
        );
    }

    #[test]
    fn rejects_single_choice_and_numeric() {
        assert!(Kos::default()
            .infer(&small_single(), &InferenceOptions::default())
            .is_err());
        assert!(Kos::default()
            .infer(&small_numeric(), &InferenceOptions::default())
            .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = small_decision();
        let a = Kos::default()
            .infer(&d, &InferenceOptions::seeded(9))
            .unwrap();
        let b = Kos::default()
            .infer(&d, &InferenceOptions::seeded(9))
            .unwrap();
        assert_eq!(a.truths, b.truths);
    }
}
