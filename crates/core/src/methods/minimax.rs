//! Minimax — minimax entropy (Zhou, Basu, Mao & Platt, NIPS 2012).
//!
//! The optimization method with *diverse skills* (Table 4): the answers
//! worker `w` gives on task `i` are modelled by a per-(task, worker)
//! distribution from an exponential family with task multipliers `τ_i[k]`
//! and worker multipliers `σ_w[j][k]` (given truth `j`):
//!
//! ```text
//! π_iw^j(k) ∝ exp( τ_i[k] + σ_w[j][k] )
//! ```
//!
//! Minimax entropy chooses the truth distribution minimising the maximum
//! entropy of the answer model subject to moment constraints — per task,
//! the expected counts of each choice match the observed counts, and per
//! worker, the expected (truth, answer) counts match (Section 5.2(3)).
//! We implement the regularised dual: alternating between
//!
//! 1. updating the truth posterior `q_i(j) ∝ exp( Σ_{w∈W_i}
//!    ln π_iw^j(v_i^w) )`, and
//! 2. dual gradient ascent on `τ` and `σ` matching observed to expected
//!    counts (with L2 regularisation, as in the authors' "regularised
//!    minimax conditional entropy" follow-up).

use crowd_data::{Dataset, TaskType};
use crowd_stats::kernels::{self, log_normalize, log_sum_exp};
use crowd_stats::{ConvergenceTracker, DMat};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Minimax entropy truth inference.
#[derive(Debug, Clone, Copy)]
pub struct Minimax {
    /// Dual gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Gradient steps per outer iteration.
    pub gradient_steps: usize,
    /// L2 regularisation on the per-task multipliers `τ`. Must be strong:
    /// a task sees only `r` answers, so an unregularised `τ_i` can absorb
    /// the observed counts entirely and wipe out the worker signal (the
    /// slack the regularised minimax-entropy formulation introduces on
    /// the task constraints).
    pub l2_tau: f64,
    /// L2 regularisation on the per-worker multipliers `σ`.
    pub l2_sigma: f64,
}

impl Default for Minimax {
    fn default() -> Self {
        Self {
            learning_rate: 0.3,
            gradient_steps: 10,
            l2_tau: 2.0,
            l2_sigma: 0.05,
        }
    }
}

impl TruthInference for Minimax {
    fn name(&self) -> &'static str {
        "Minimax"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        let l = cat.l;

        // Flat-memory multipliers: τ is `n × ℓ`, σ packs every worker's
        // `ℓ × ℓ` block as rows `w·ℓ + j` of one `(m·ℓ) × ℓ` matrix —
        // the same layout the D&S confusion tables use. The gradient
        // matrices are allocated once and refilled per step; the old
        // nested-`Vec` form allocated `n + m·(ℓ+1)` vectors per gradient
        // step and one ℓ-vector per (answer, j) model evaluation, which
        // dominated Minimax's wall time.
        let mut tau = DMat::zeros(cat.n, l);
        let mut sigma = DMat::zeros(cat.m * l, l);
        // Break the label-permutation symmetry: seed σ diagonals positive.
        for w in 0..cat.m {
            for j in 0..l {
                sigma[(w * l + j, j)] = 1.0;
            }
        }
        let mut grad_tau = DMat::zeros(cat.n, l);
        let mut grad_sigma = DMat::zeros(cat.m * l, l);
        // Scratch for one model row π_iw^j(·) and one posterior row.
        let mut lp_buf = vec![0.0f64; l];
        let mut logp = vec![0.0f64; l];
        // Per-task list of the truth hypotheses with non-negligible
        // posterior mass, as `(j, q_i(j))` in ascending-`j` order. The
        // posterior is fixed for the whole dual-ascent pass, so the
        // `q_i(j) < 1e-9` skip the old code evaluated per (answer, j)
        // is hoisted here and rebuilt once per outer iteration — the
        // surviving (answer, j) pairs and their visit order are
        // unchanged.
        let mut active: Vec<(u8, f64)> = Vec::with_capacity(cat.n * l);
        let mut active_off: Vec<usize> = vec![0; cat.n + 1];

        let mut post = cat.majority_posteriors();
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // Degree normalisers: keep step sizes independent of how many
        // answers a task/worker has.
        let task_deg: Vec<f64> = (0..cat.n).map(|t| cat.task_len(t).max(1) as f64).collect();
        let worker_deg: Vec<f64> = (0..cat.m)
            .map(|w| cat.worker_len(w).max(1) as f64)
            .collect();

        let mut st = State {
            tau: &mut tau,
            sigma: &mut sigma,
            grad_tau: &mut grad_tau,
            grad_sigma: &mut grad_sigma,
            post: &mut post,
            active: &mut active,
            active_off: &mut active_off,
            task_deg: &task_deg,
            worker_deg: &worker_deg,
        };
        loop {
            // Rebuild the active-hypothesis lists under the current
            // posterior (see `active` above).
            st.active.clear();
            for task in 0..cat.n {
                for (j, &qj) in st.post.row(task).iter().enumerate() {
                    if qj >= 1e-9 {
                        st.active.push((j as u8, qj));
                    }
                }
                st.active_off[task + 1] = st.active.len();
            }

            // The two hot passes are specialised by ℓ so the model rows
            // live in fixed-size stack arrays (no bounds checks, unrolled
            // lanes); every dataset in the benchmark has ℓ ∈ {2, 3, 4}.
            // The dynamic fallback performs the identical operations in
            // the identical order on slices for any other ℓ (exercised by
            // the `six_choice_fallback_runs` test).
            match l {
                2 => {
                    dual_ascent::<2>(self, &cat, &mut st);
                    truth_update::<2>(&cat, &mut st);
                }
                3 => {
                    dual_ascent::<3>(self, &cat, &mut st);
                    truth_update::<3>(&cat, &mut st);
                }
                4 => {
                    dual_ascent::<4>(self, &cat, &mut st);
                    truth_update::<4>(&cat, &mut st);
                }
                _ => {
                    dual_ascent_dyn(self, &cat, &mut st, &mut lp_buf);
                    truth_update_dyn(&cat, &mut st, &mut lp_buf, &mut logp);
                }
            }
            cat.clamp_golden(st.post);

            if tracker.step(st.post.data()) {
                break;
            }
        }

        // Worker quality: the diagonal pull of σ (diverse-skill summary).
        let worker_quality: Vec<WorkerQuality> = (0..cat.m)
            .map(|w| {
                let skills: Vec<f64> = (0..l).map(|j| sigma.row(w * l + j)[j]).collect();
                WorkerQuality::Skills(skills)
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

/// The mutable EM state threaded through the hot passes. Keeping the
/// matrices behind one struct lets the specialised and dynamic passes
/// share a signature while the borrow checker still sees disjoint
/// fields.
struct State<'a> {
    tau: &'a mut DMat,
    sigma: &'a mut DMat,
    grad_tau: &'a mut DMat,
    grad_sigma: &'a mut DMat,
    post: &'a mut DMat,
    active: &'a mut Vec<(u8, f64)>,
    active_off: &'a mut [usize],
    task_deg: &'a [f64],
    worker_deg: &'a [f64],
}

/// Softmax over a fixed-width row, in exactly the operation order of
/// [`kernels::log_normalize`] (the [`lse_fixed`] reduction, then a
/// per-element `exp`, with degenerate rows spread uniformly) —
/// bit-identical output, no slice bounds checks.
#[inline(always)]
fn softmax_fixed<const L: usize>(xs: &mut [f64; L]) {
    let lse = lse_fixed(xs);
    if !lse.is_finite() {
        xs.fill(1.0 / L as f64);
        return;
    }
    for x in xs.iter_mut() {
        *x = kernels::exp(*x - lse);
    }
}

/// Fixed-width [`kernels::log_sum_exp`], same operation order.
#[inline(always)]
fn lse_fixed<const L: usize>(xs: &[f64; L]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &x in xs.iter() {
        max = max.max(x);
    }
    if !max.is_finite() {
        return max;
    }
    let mut sum = 0.0;
    for &x in xs.iter() {
        sum += if x == max { 1.0 } else { kernels::exp(x - max) };
    }
    max + kernels::ln(sum)
}

/// The regularised multiplier updates after one gradient accumulation
/// (cold relative to the accumulation itself, so kept dynamic and
/// shared by both paths).
fn update_multipliers(mm: &Minimax, cat: &Cat, st: &mut State) {
    let l = st.tau.cols();
    for t in 0..cat.n {
        let g = st.grad_tau.row(t);
        let deg = st.task_deg[t];
        let tau_row = st.tau.row_mut(t);
        for k in 0..l {
            tau_row[k] += mm.learning_rate * (g[k] / deg - mm.l2_tau * tau_row[k]);
            tau_row[k] = tau_row[k].clamp(-6.0, 6.0);
        }
    }
    for w in 0..cat.m {
        let deg = st.worker_deg[w];
        for j in 0..l {
            let g = st.grad_sigma.row(w * l + j);
            let sig_row = st.sigma.row_mut(w * l + j);
            for k in 0..l {
                sig_row[k] += mm.learning_rate * (g[k] / deg - mm.l2_sigma * sig_row[k]);
                sig_row[k] = sig_row[k].clamp(-6.0, 6.0);
            }
        }
    }
}

/// One dual-ascent pass (`gradient_steps` accumulate/update rounds),
/// specialised by ℓ: model rows are `[f64; L]` stack arrays and every
/// row borrow is a checked-once fixed-width conversion. Arithmetic and
/// evaluation order match [`dual_ascent_dyn`] exactly.
fn dual_ascent<const L: usize>(mm: &Minimax, cat: &Cat, st: &mut State) {
    for _ in 0..mm.gradient_steps {
        st.grad_tau.fill(0.0);
        st.grad_sigma.fill(0.0);

        for task in 0..cat.n {
            let acts = &st.active[st.active_off[task]..st.active_off[task + 1]];
            let tau_row: &[f64; L] = st.tau.row(task).try_into().expect("row width ℓ");
            let gt_row: &mut [f64; L] = st.grad_tau.row_mut(task).try_into().expect("row width ℓ");
            for &(worker, label) in cat.task_row(task) {
                let base = worker as usize * L;
                for &(j, qj) in acts.iter() {
                    // Model distribution for this (i, w, j).
                    let sig_row: &[f64; L] = st
                        .sigma
                        .row(base + j as usize)
                        .try_into()
                        .expect("row width ℓ");
                    let mut lp = [0.0f64; L];
                    for k in 0..L {
                        lp[k] = tau_row[k] + sig_row[k];
                    }
                    softmax_fixed(&mut lp);
                    let gs_row: &mut [f64; L] = st
                        .grad_sigma
                        .row_mut(base + j as usize)
                        .try_into()
                        .expect("row width ℓ");
                    for k in 0..L {
                        let obs = if k == label as usize { 1.0 } else { 0.0 };
                        let diff = qj * (obs - lp[k]);
                        gt_row[k] += diff;
                        gs_row[k] += diff;
                    }
                }
            }
        }

        update_multipliers(mm, cat, st);
    }
}

/// Dynamic-width fallback for [`dual_ascent`] (ℓ outside the
/// specialised range): same operations, same order, slice-based.
fn dual_ascent_dyn(mm: &Minimax, cat: &Cat, st: &mut State, lp_buf: &mut [f64]) {
    let l = st.tau.cols();
    for _ in 0..mm.gradient_steps {
        st.grad_tau.fill(0.0);
        st.grad_sigma.fill(0.0);

        for task in 0..cat.n {
            let acts = &st.active[st.active_off[task]..st.active_off[task + 1]];
            let tau_row = st.tau.row(task);
            let gt_row = st.grad_tau.row_mut(task);
            for &(worker, label) in cat.task_row(task) {
                let base = worker as usize * l;
                for &(j, qj) in acts.iter() {
                    let sig_row = st.sigma.row(base + j as usize);
                    for (lp, (&t, &s)) in lp_buf.iter_mut().zip(tau_row.iter().zip(sig_row)) {
                        *lp = t + s;
                    }
                    log_normalize(lp_buf); // now probabilities
                    let gs_row = st.grad_sigma.row_mut(base + j as usize);
                    for (k, ((&p, gt), gs)) in lp_buf
                        .iter()
                        .zip(gt_row.iter_mut())
                        .zip(gs_row.iter_mut())
                        .enumerate()
                    {
                        let obs = if k == label as usize { 1.0 } else { 0.0 };
                        let diff = qj * (obs - p);
                        *gt += diff;
                        *gs += diff;
                    }
                }
            }
        }

        update_multipliers(mm, cat, st);
    }
}

/// Truth update, specialised by ℓ. Only the answered label's model
/// probability is needed, so per (answer, j) the pass evaluates the
/// log-sum-exp of the model row once and exponentiates a single
/// element — the same values the full row-normalise produced, minus
/// ℓ−1 unused `exp`s and `ln`s per row.
fn truth_update<const L: usize>(cat: &Cat, st: &mut State) {
    for task in 0..cat.n {
        if cat.golden[task].is_some() || cat.task_len(task) == 0 {
            continue;
        }
        let mut logp = [0.0f64; L];
        let tau_row: &[f64; L] = st.tau.row(task).try_into().expect("row width ℓ");
        for &(worker, label) in cat.task_row(task) {
            let base = worker as usize * L;
            for (j, lp) in logp.iter_mut().enumerate() {
                let sig_row: &[f64; L] = st.sigma.row(base + j).try_into().expect("row width ℓ");
                let mut buf = [0.0f64; L];
                for k in 0..L {
                    buf[k] = tau_row[k] + sig_row[k];
                }
                let lse = lse_fixed(&buf);
                // Mirror log_normalize's degenerate-input branch
                // (all -inf → uniform mass).
                let p = if lse.is_finite() {
                    kernels::exp(buf[label as usize] - lse)
                } else {
                    1.0 / L as f64
                };
                *lp += kernels::safe_ln(p);
            }
        }
        log_normalize(&mut logp);
        st.post.row_mut(task).copy_from_slice(&logp);
    }
}

/// Dynamic-width fallback for [`truth_update`].
fn truth_update_dyn(cat: &Cat, st: &mut State, lp_buf: &mut [f64], logp: &mut [f64]) {
    let l = st.tau.cols();
    for task in 0..cat.n {
        if cat.golden[task].is_some() || cat.task_len(task) == 0 {
            continue;
        }
        logp.fill(0.0);
        let tau_row = st.tau.row(task);
        for &(worker, label) in cat.task_row(task) {
            let worker = worker as usize;
            for (j, lp) in logp.iter_mut().enumerate() {
                let sig_row = st.sigma.row(worker * l + j);
                for (b, (&t, &s)) in lp_buf.iter_mut().zip(tau_row.iter().zip(sig_row)) {
                    *b = t + s;
                }
                let lse = log_sum_exp(lp_buf);
                let p = if lse.is_finite() {
                    kernels::exp(lp_buf[label as usize] - lse)
                } else {
                    1.0 / l as f64
                };
                *lp += kernels::safe_ln(p);
            }
        }
        log_normalize(logp);
        st.post.row_mut(task).copy_from_slice(logp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy() {
        let d = toy();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn decent_on_decision_data() {
        // Table 6 shape: Minimax is the weakest non-VI method on the
        // imbalanced D_Product (84.1% vs MV's 89.7%); the simulated
        // dataset reproduces a Minimax < MV gap.
        let d = small_decision();
        assert_accuracy_at_least(&Minimax::default(), &d, 0.62);
    }

    #[test]
    fn handles_single_choice() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.30, "Minimax single-choice accuracy {acc}");
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 5);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(5)
        };
        let r = Minimax::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn six_choice_fallback_runs() {
        // ℓ = 6 is outside the specialised dispatch range, so this
        // exercises the dynamic-width passes end to end.
        use crowd_data::{DatasetBuilder, TaskType};
        let mut b = DatasetBuilder::new("six", TaskType::SingleChoice { choices: 6 }, 12, 5);
        for t in 0..12usize {
            let truth = (t % 6) as u8;
            b.set_truth_label(t, truth).unwrap();
            for w in 0..5usize {
                let noisy = if (t + w) % 4 == 0 {
                    (truth + 1) % 6
                } else {
                    truth
                };
                b.add_label(t, w, noisy).unwrap();
            }
        }
        let d = b.build();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(9))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.5, "6-choice fallback accuracy {acc}");
    }

    #[test]
    fn skills_reported_per_class() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Skills(s) = q else {
                panic!("expected skills")
            };
            assert_eq!(s.len(), 4);
        }
    }
}
