//! Minimax — minimax entropy (Zhou, Basu, Mao & Platt, NIPS 2012).
//!
//! The optimization method with *diverse skills* (Table 4): the answers
//! worker `w` gives on task `i` are modelled by a per-(task, worker)
//! distribution from an exponential family with task multipliers `τ_i[k]`
//! and worker multipliers `σ_w[j][k]` (given truth `j`):
//!
//! ```text
//! π_iw^j(k) ∝ exp( τ_i[k] + σ_w[j][k] )
//! ```
//!
//! Minimax entropy chooses the truth distribution minimising the maximum
//! entropy of the answer model subject to moment constraints — per task,
//! the expected counts of each choice match the observed counts, and per
//! worker, the expected (truth, answer) counts match (Section 5.2(3)).
//! We implement the regularised dual: alternating between
//!
//! 1. updating the truth posterior `q_i(j) ∝ exp( Σ_{w∈W_i}
//!    ln π_iw^j(v_i^w) )`, and
//! 2. dual gradient ascent on `τ` and `σ` matching observed to expected
//!    counts (with L2 regularisation, as in the authors' "regularised
//!    minimax conditional entropy" follow-up).

use crowd_data::{Dataset, TaskType};
use crowd_stats::kernels::{self, log_normalize, log_normalize_rows_flat, log_sum_exp_rows_flat};
use crowd_stats::{ConvergenceTracker, DMat};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Minimax entropy truth inference.
#[derive(Debug, Clone, Copy)]
pub struct Minimax {
    /// Dual gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Gradient steps per outer iteration.
    pub gradient_steps: usize,
    /// L2 regularisation on the per-task multipliers `τ`. Must be strong:
    /// a task sees only `r` answers, so an unregularised `τ_i` can absorb
    /// the observed counts entirely and wipe out the worker signal (the
    /// slack the regularised minimax-entropy formulation introduces on
    /// the task constraints).
    pub l2_tau: f64,
    /// L2 regularisation on the per-worker multipliers `σ`.
    pub l2_sigma: f64,
}

impl Default for Minimax {
    fn default() -> Self {
        Self {
            learning_rate: 0.3,
            gradient_steps: 10,
            l2_tau: 2.0,
            l2_sigma: 0.05,
        }
    }
}

impl TruthInference for Minimax {
    fn name(&self) -> &'static str {
        "Minimax"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        let l = cat.l;

        // Flat-memory multipliers: τ is `n × ℓ`, σ packs every worker's
        // `ℓ × ℓ` block as rows `w·ℓ + j` of one `(m·ℓ) × ℓ` matrix —
        // the same layout the D&S confusion tables use. The gradient
        // matrices are allocated once and refilled per step; the old
        // nested-`Vec` form allocated `n + m·(ℓ+1)` vectors per gradient
        // step and one ℓ-vector per (answer, j) model evaluation, which
        // dominated Minimax's wall time.
        let mut tau = DMat::zeros(cat.n, l);
        let mut sigma = DMat::zeros(cat.m * l, l);
        // Break the label-permutation symmetry: seed σ diagonals positive.
        for w in 0..cat.m {
            for j in 0..l {
                sigma[(w * l + j, j)] = 1.0;
            }
        }
        let mut grad_tau = DMat::zeros(cat.n, l);
        let mut grad_sigma = DMat::zeros(cat.m * l, l);
        // Scratch for one posterior row (dynamic-width fallback).
        let mut logp = vec![0.0f64; l];
        // Per-task list of the truth hypotheses with non-negligible
        // posterior mass, as `(j, q_i(j))` in ascending-`j` order. The
        // posterior is fixed for the whole dual-ascent pass, so the
        // `q_i(j) < 1e-9` skip the old code evaluated per (answer, j)
        // is hoisted here and rebuilt once per outer iteration — the
        // surviving (answer, j) pairs and their visit order are
        // unchanged.
        let mut active: Vec<(u8, f64)> = Vec::with_capacity(cat.n * l);
        let mut active_off: Vec<usize> = vec![0; cat.n + 1];
        // Flat batch of ℓ-wide model rows (one per (answer, hypothesis)
        // pair) and their log-sum-exps: the hot passes gather many rows
        // into this scratch and softmax/lse them with one batched
        // kernel call instead of one dispatch per row. Sized once for
        // the largest flush ([`ROW_BLOCK`] rows, or one task's worth if
        // a task alone exceeds the block).
        let max_task_len = (0..cat.n).map(|t| cat.task_len(t)).max().unwrap_or(0);
        let mut row_buf: Vec<f64> = vec![0.0; ROW_BLOCK.max(l * max_task_len) * l];
        let mut lse_buf: Vec<f64> = vec![0.0; l * max_task_len];

        let mut post = cat.majority_posteriors();
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // Degree normalisers: keep step sizes independent of how many
        // answers a task/worker has.
        let task_deg: Vec<f64> = (0..cat.n).map(|t| cat.task_len(t).max(1) as f64).collect();
        let worker_deg: Vec<f64> = (0..cat.m)
            .map(|w| cat.worker_len(w).max(1) as f64)
            .collect();

        let mut st = State {
            tau: &mut tau,
            sigma: &mut sigma,
            grad_tau: &mut grad_tau,
            grad_sigma: &mut grad_sigma,
            post: &mut post,
            active: &mut active,
            active_off: &mut active_off,
            task_deg: &task_deg,
            worker_deg: &worker_deg,
            row_buf: &mut row_buf,
            lse_buf: &mut lse_buf,
        };
        loop {
            // Rebuild the active-hypothesis lists under the current
            // posterior (see `active` above).
            st.active.clear();
            for task in 0..cat.n {
                for (j, &qj) in st.post.row(task).iter().enumerate() {
                    if qj >= 1e-9 {
                        st.active.push((j as u8, qj));
                    }
                }
                st.active_off[task + 1] = st.active.len();
            }

            // The two hot passes are specialised by ℓ so the model rows
            // live in fixed-size stack arrays (no bounds checks, unrolled
            // lanes); every dataset in the benchmark has ℓ ∈ {2, 3, 4}.
            // The dynamic fallback performs the identical operations in
            // the identical order on slices for any other ℓ (exercised by
            // the `six_choice_fallback_runs` test).
            match l {
                2 => {
                    dual_ascent::<2>(self, &cat, &mut st);
                    truth_update::<2>(&cat, &mut st);
                }
                3 => {
                    dual_ascent::<3>(self, &cat, &mut st);
                    truth_update::<3>(&cat, &mut st);
                }
                4 => {
                    dual_ascent::<4>(self, &cat, &mut st);
                    truth_update::<4>(&cat, &mut st);
                }
                _ => {
                    dual_ascent_dyn(self, &cat, &mut st);
                    truth_update_dyn(&cat, &mut st, &mut logp);
                }
            }
            cat.clamp_golden(st.post);

            if tracker.step(st.post.data()) {
                break;
            }
        }

        // Worker quality: the diagonal pull of σ (diverse-skill summary).
        let worker_quality: Vec<WorkerQuality> = (0..cat.m)
            .map(|w| {
                let skills: Vec<f64> = (0..l).map(|j| sigma.row(w * l + j)[j]).collect();
                WorkerQuality::Skills(skills)
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

/// The mutable EM state threaded through the hot passes. Keeping the
/// matrices behind one struct lets the specialised and dynamic passes
/// share a signature while the borrow checker still sees disjoint
/// fields.
struct State<'a> {
    tau: &'a mut DMat,
    sigma: &'a mut DMat,
    grad_tau: &'a mut DMat,
    grad_sigma: &'a mut DMat,
    post: &'a mut DMat,
    active: &'a mut Vec<(u8, f64)>,
    active_off: &'a mut [usize],
    task_deg: &'a [f64],
    worker_deg: &'a [f64],
    row_buf: &'a mut Vec<f64>,
    lse_buf: &'a mut Vec<f64>,
}

/// Rows gathered per batched-softmax flush in the specialised hot
/// passes. Large enough to amortise the kernel dispatch and make the
/// sub-vector remainder negligible, small enough to stay L1-resident
/// (512 rows × 4 lanes × 8 B = 16 KB).
const ROW_BLOCK: usize = 512;

/// The regularised multiplier updates after one gradient accumulation
/// (cold relative to the accumulation itself, so kept dynamic and
/// shared by both paths).
fn update_multipliers(mm: &Minimax, cat: &Cat, st: &mut State) {
    let l = st.tau.cols();
    for t in 0..cat.n {
        let g = st.grad_tau.row(t);
        let deg = st.task_deg[t];
        let tau_row = st.tau.row_mut(t);
        for k in 0..l {
            tau_row[k] += mm.learning_rate * (g[k] / deg - mm.l2_tau * tau_row[k]);
            tau_row[k] = tau_row[k].clamp(-6.0, 6.0);
        }
    }
    for w in 0..cat.m {
        let deg = st.worker_deg[w];
        for j in 0..l {
            let g = st.grad_sigma.row(w * l + j);
            let sig_row = st.sigma.row_mut(w * l + j);
            for k in 0..l {
                sig_row[k] += mm.learning_rate * (g[k] / deg - mm.l2_sigma * sig_row[k]);
                sig_row[k] = sig_row[k].clamp(-6.0, 6.0);
            }
        }
    }
}

/// One dual-ascent pass (`gradient_steps` accumulate/update rounds),
/// specialised by ℓ: model rows are `[f64; L]` stack arrays and every
/// row borrow is a checked-once fixed-width conversion. Arithmetic and
/// evaluation order match [`dual_ascent_dyn`] exactly.
///
/// Per task, the (answer, hypothesis) model rows are gathered into one
/// flat batch and softmaxed with a single
/// [`log_normalize_rows_flat`] call — the values and the gradient
/// accumulation order are exactly those of the old softmax-per-pair
/// loop, but the kernel dispatch (and under `fast-math-avx2` the
/// whole `#[target_feature]` region, with the per-row `ln` vectorised
/// across rows) is paid once per task instead of once per pair.
fn dual_ascent<const L: usize>(mm: &Minimax, cat: &Cat, st: &mut State) {
    for _ in 0..mm.gradient_steps {
        st.grad_tau.fill(0.0);
        st.grad_sigma.fill(0.0);

        // Tasks are processed in blocks whose model rows fill
        // [`ROW_BLOCK`] (the scratch was sized in `infer`): one batched
        // softmax per block amortises the kernel dispatch over ~hundreds
        // of rows and leaves at most 3 sub-vector remainder rows per
        // flush instead of per task.
        let mut start = 0;
        while start < cat.n {
            let mut rows = 0usize;
            let mut end = start;
            while end < cat.n {
                let need = (st.active_off[end + 1] - st.active_off[end]) * cat.task_len(end);
                if rows > 0 && rows + need > ROW_BLOCK {
                    break;
                }
                rows += need;
                end += 1;
            }

            let mut out = st.row_buf[..rows * L].chunks_exact_mut(L);
            for task in start..end {
                let acts = &st.active[st.active_off[task]..st.active_off[task + 1]];
                let tau_row: &[f64; L] = st.tau.row(task).try_into().expect("row width ℓ");
                for &(worker, _) in cat.task_row(task) {
                    let base = worker as usize * L;
                    for &(j, _) in acts.iter() {
                        // Model distribution for this (i, w, j).
                        let sig_row: &[f64; L] = st
                            .sigma
                            .row(base + j as usize)
                            .try_into()
                            .expect("row width ℓ");
                        let row: &mut [f64; L] = out
                            .next()
                            .expect("scratch row")
                            .try_into()
                            .expect("width ℓ");
                        for k in 0..L {
                            row[k] = tau_row[k] + sig_row[k];
                        }
                    }
                }
            }
            log_normalize_rows_flat(L, &mut st.row_buf[..rows * L]); // now probabilities

            let mut lps = st.row_buf[..rows * L].chunks_exact(L);
            for task in start..end {
                let acts = &st.active[st.active_off[task]..st.active_off[task + 1]];
                let gt_row: &mut [f64; L] =
                    st.grad_tau.row_mut(task).try_into().expect("row width ℓ");
                for &(worker, label) in cat.task_row(task) {
                    let base = worker as usize * L;
                    for &(j, qj) in acts.iter() {
                        let lp: &[f64; L] = lps
                            .next()
                            .expect("one row per (answer, hypothesis) pair")
                            .try_into()
                            .expect("row width ℓ");
                        let gs_row: &mut [f64; L] = st
                            .grad_sigma
                            .row_mut(base + j as usize)
                            .try_into()
                            .expect("row width ℓ");
                        for k in 0..L {
                            let obs = if k == label as usize { 1.0 } else { 0.0 };
                            let diff = qj * (obs - lp[k]);
                            gt_row[k] += diff;
                            gs_row[k] += diff;
                        }
                    }
                }
            }

            start = end;
        }

        update_multipliers(mm, cat, st);
    }
}

/// Dynamic-width fallback for [`dual_ascent`] (ℓ outside the
/// specialised range): same operations, same order, slice-based.
fn dual_ascent_dyn(mm: &Minimax, cat: &Cat, st: &mut State) {
    let l = st.tau.cols();
    for _ in 0..mm.gradient_steps {
        st.grad_tau.fill(0.0);
        st.grad_sigma.fill(0.0);

        for task in 0..cat.n {
            let acts = &st.active[st.active_off[task]..st.active_off[task + 1]];
            let answers = cat.task_row(task);
            if acts.is_empty() || answers.is_empty() {
                continue;
            }
            let tau_row = st.tau.row(task);
            st.row_buf.clear();
            st.row_buf.reserve(answers.len() * acts.len() * l);
            for &(worker, _) in answers {
                let base = worker as usize * l;
                for &(j, _) in acts.iter() {
                    let sig_row = st.sigma.row(base + j as usize);
                    for (&t, &s) in tau_row.iter().zip(sig_row) {
                        st.row_buf.push(t + s);
                    }
                }
            }
            log_normalize_rows_flat(l, st.row_buf); // now probabilities

            let gt_row = st.grad_tau.row_mut(task);
            let mut rows = st.row_buf.chunks_exact(l);
            for &(worker, label) in answers {
                let base = worker as usize * l;
                for &(j, qj) in acts.iter() {
                    let lp = rows.next().expect("one row per (answer, hypothesis) pair");
                    let gs_row = st.grad_sigma.row_mut(base + j as usize);
                    for (k, ((&p, gt), gs)) in lp
                        .iter()
                        .zip(gt_row.iter_mut())
                        .zip(gs_row.iter_mut())
                        .enumerate()
                    {
                        let obs = if k == label as usize { 1.0 } else { 0.0 };
                        let diff = qj * (obs - p);
                        *gt += diff;
                        *gs += diff;
                    }
                }
            }
        }

        update_multipliers(mm, cat, st);
    }
}

/// Truth update, specialised by ℓ. Only the answered label's model
/// probability is needed, so per (answer, j) the pass evaluates the
/// log-sum-exp of the model row once and exponentiates a single
/// element — the same values the full row-normalise produced, minus
/// ℓ−1 unused `exp`s and `ln`s per row.
fn truth_update<const L: usize>(cat: &Cat, st: &mut State) {
    let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
    let mut fused_rows = 0u64;
    for task in 0..cat.n {
        if cat.golden[task].is_some() || cat.task_len(task) == 0 {
            continue;
        }
        fused_rows += 1;
        let answers = cat.task_row(task);
        let tau_row: &[f64; L] = st.tau.row(task).try_into().expect("row width ℓ");
        // Gather the ℓ model rows of every answer into one flat batch
        // and log-sum-exp them in a single kernel call; only the
        // answered label's probability is read out afterwards. The
        // scratch was sized in `infer` for the largest task.
        let rows = answers.len() * L;
        let mut out = st.row_buf[..rows * L].chunks_exact_mut(L);
        for &(worker, _) in answers {
            let base = worker as usize * L;
            for j in 0..L {
                let sig_row: &[f64; L] = st.sigma.row(base + j).try_into().expect("row width ℓ");
                let row: &mut [f64; L] = out
                    .next()
                    .expect("scratch row")
                    .try_into()
                    .expect("width ℓ");
                for k in 0..L {
                    row[k] = tau_row[k] + sig_row[k];
                }
            }
        }
        log_sum_exp_rows_flat(L, &st.row_buf[..rows * L], &mut st.lse_buf[..rows]);

        let mut logp = [0.0f64; L];
        for (r, &(_, label)) in answers.iter().enumerate() {
            for (j, lp) in logp.iter_mut().enumerate() {
                let lse = st.lse_buf[r * L + j];
                // Mirror log_normalize's degenerate-input branch
                // (all -inf → uniform mass).
                let p = if lse.is_finite() {
                    kernels::exp(st.row_buf[(r * L + j) * L + label as usize] - lse)
                } else {
                    1.0 / L as f64
                };
                *lp += kernels::safe_ln(p);
            }
        }
        log_normalize(&mut logp);
        st.post.row_mut(task).copy_from_slice(&logp);
    }
    crate::methods::obs_fused_rows().add(fused_rows);
}

/// Dynamic-width fallback for [`truth_update`].
fn truth_update_dyn(cat: &Cat, st: &mut State, logp: &mut [f64]) {
    let _timer = crate::methods::obs_kernel_estep_seconds().start_timer();
    let mut fused_rows = 0u64;
    let l = st.tau.cols();
    for task in 0..cat.n {
        if cat.golden[task].is_some() || cat.task_len(task) == 0 {
            continue;
        }
        fused_rows += 1;
        let answers = cat.task_row(task);
        let tau_row = st.tau.row(task);
        st.row_buf.clear();
        st.row_buf.reserve(answers.len() * l * l);
        for &(worker, _) in answers {
            let base = worker as usize * l;
            for j in 0..l {
                let sig_row = st.sigma.row(base + j);
                for (&t, &s) in tau_row.iter().zip(sig_row) {
                    st.row_buf.push(t + s);
                }
            }
        }
        st.lse_buf.clear();
        st.lse_buf.resize(answers.len() * l, 0.0);
        log_sum_exp_rows_flat(l, st.row_buf, st.lse_buf);

        logp.fill(0.0);
        for (r, &(_, label)) in answers.iter().enumerate() {
            for (j, lp) in logp.iter_mut().enumerate() {
                let lse = st.lse_buf[r * l + j];
                let p = if lse.is_finite() {
                    kernels::exp(st.row_buf[(r * l + j) * l + label as usize] - lse)
                } else {
                    1.0 / l as f64
                };
                *lp += kernels::safe_ln(p);
            }
        }
        log_normalize(logp);
        st.post.row_mut(task).copy_from_slice(logp);
    }
    crate::methods::obs_fused_rows().add(fused_rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy() {
        let d = toy();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn decent_on_decision_data() {
        // Table 6 shape: Minimax is the weakest non-VI method on the
        // imbalanced D_Product (84.1% vs MV's 89.7%); the simulated
        // dataset reproduces a Minimax < MV gap.
        let d = small_decision();
        assert_accuracy_at_least(&Minimax::default(), &d, 0.62);
    }

    #[test]
    fn handles_single_choice() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.30, "Minimax single-choice accuracy {acc}");
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 5);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(5)
        };
        let r = Minimax::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn six_choice_fallback_runs() {
        // ℓ = 6 is outside the specialised dispatch range, so this
        // exercises the dynamic-width passes end to end.
        use crowd_data::{DatasetBuilder, TaskType};
        let mut b = DatasetBuilder::new("six", TaskType::SingleChoice { choices: 6 }, 12, 5);
        for t in 0..12usize {
            let truth = (t % 6) as u8;
            b.set_truth_label(t, truth).unwrap();
            for w in 0..5usize {
                let noisy = if (t + w) % 4 == 0 {
                    (truth + 1) % 6
                } else {
                    truth
                };
                b.add_label(t, w, noisy).unwrap();
            }
        }
        let d = b.build();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(9))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.5, "6-choice fallback accuracy {acc}");
    }

    #[test]
    fn skills_reported_per_class() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Skills(s) = q else {
                panic!("expected skills")
            };
            assert_eq!(s.len(), 4);
        }
    }
}
