//! Minimax — minimax entropy (Zhou, Basu, Mao & Platt, NIPS 2012).
//!
//! The optimization method with *diverse skills* (Table 4): the answers
//! worker `w` gives on task `i` are modelled by a per-(task, worker)
//! distribution from an exponential family with task multipliers `τ_i[k]`
//! and worker multipliers `σ_w[j][k]` (given truth `j`):
//!
//! ```text
//! π_iw^j(k) ∝ exp( τ_i[k] + σ_w[j][k] )
//! ```
//!
//! Minimax entropy chooses the truth distribution minimising the maximum
//! entropy of the answer model subject to moment constraints — per task,
//! the expected counts of each choice match the observed counts, and per
//! worker, the expected (truth, answer) counts match (Section 5.2(3)).
//! We implement the regularised dual: alternating between
//!
//! 1. updating the truth posterior `q_i(j) ∝ exp( Σ_{w∈W_i}
//!    ln π_iw^j(v_i^w) )`, and
//! 2. dual gradient ascent on `τ` and `σ` matching observed to expected
//!    counts (with L2 regularisation, as in the authors' "regularised
//!    minimax conditional entropy" follow-up).

use crowd_data::{Dataset, TaskType};
use crowd_stats::{dist::log_normalize, ConvergenceTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framework::{
    validate_common, InferenceError, InferenceOptions, InferenceResult, TruthInference,
    WorkerQuality,
};
use crate::views::Cat;

/// Minimax entropy truth inference.
#[derive(Debug, Clone, Copy)]
pub struct Minimax {
    /// Dual gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Gradient steps per outer iteration.
    pub gradient_steps: usize,
    /// L2 regularisation on the per-task multipliers `τ`. Must be strong:
    /// a task sees only `r` answers, so an unregularised `τ_i` can absorb
    /// the observed counts entirely and wipe out the worker signal (the
    /// slack the regularised minimax-entropy formulation introduces on
    /// the task constraints).
    pub l2_tau: f64,
    /// L2 regularisation on the per-worker multipliers `σ`.
    pub l2_sigma: f64,
}

impl Default for Minimax {
    fn default() -> Self {
        Self {
            learning_rate: 0.3,
            gradient_steps: 10,
            l2_tau: 2.0,
            l2_sigma: 0.05,
        }
    }
}

impl TruthInference for Minimax {
    fn name(&self) -> &'static str {
        "Minimax"
    }

    fn supports(&self, task_type: TaskType) -> bool {
        task_type.is_categorical()
    }

    fn supports_golden(&self) -> bool {
        true
    }

    fn infer(
        &self,
        dataset: &Dataset,
        options: &InferenceOptions,
    ) -> Result<InferenceResult, InferenceError> {
        validate_common(
            self.name(),
            dataset,
            options,
            self.supports(dataset.task_type()),
        )?;
        let cat = Cat::build(self.name(), dataset, options, true)?;
        let l = cat.l;

        let mut tau = vec![vec![0.0f64; l]; cat.n];
        let mut sigma = vec![vec![vec![0.0f64; l]; l]; cat.m];
        // Break the label-permutation symmetry: seed σ diagonals positive.
        for s in &mut sigma {
            for (j, row) in s.iter_mut().enumerate() {
                row[j] = 1.0;
            }
        }

        let mut post = cat.majority_posteriors();
        let mut tracker = ConvergenceTracker::new(options.tolerance, options.max_iterations);

        // π_iw^j(k) over k, as log-probabilities.
        let model_logprob = |tau_i: &[f64], sigma_w: &[Vec<f64>], j: usize| -> Vec<f64> {
            let mut lp: Vec<f64> = (0..l).map(|k| tau_i[k] + sigma_w[j][k]).collect();
            let mut probs = lp.clone();
            log_normalize(&mut probs);
            // Return normalized log-probs.
            for (x, p) in lp.iter_mut().zip(&probs) {
                *x = p.max(1e-12).ln();
            }
            lp
        };

        // Degree normalisers: keep step sizes independent of how many
        // answers a task/worker has.
        let task_deg: Vec<f64> = (0..cat.n).map(|t| cat.task_len(t).max(1) as f64).collect();
        let worker_deg: Vec<f64> = (0..cat.m)
            .map(|w| cat.worker_len(w).max(1) as f64)
            .collect();

        loop {
            // Dual ascent on τ, σ under the current truth posterior.
            for _ in 0..self.gradient_steps {
                let mut grad_tau = vec![vec![0.0f64; l]; cat.n];
                let mut grad_sigma = vec![vec![vec![0.0f64; l]; l]; cat.m];

                for task in 0..cat.n {
                    for (worker, label) in cat.task(task) {
                        for j in 0..l {
                            let qj = post.row(task)[j];
                            if qj < 1e-9 {
                                continue;
                            }
                            // Model distribution for this (i, w, j).
                            let mut lp: Vec<f64> =
                                (0..l).map(|k| tau[task][k] + sigma[worker][j][k]).collect();
                            log_normalize(&mut lp); // now probabilities
                            for k in 0..l {
                                let obs = if k == label as usize { 1.0 } else { 0.0 };
                                let diff = qj * (obs - lp[k]);
                                grad_tau[task][k] += diff;
                                grad_sigma[worker][j][k] += diff;
                            }
                        }
                    }
                }

                for (t, g) in grad_tau.iter().enumerate() {
                    for k in 0..l {
                        tau[t][k] +=
                            self.learning_rate * (g[k] / task_deg[t] - self.l2_tau * tau[t][k]);
                        tau[t][k] = tau[t][k].clamp(-6.0, 6.0);
                    }
                }
                for (w, g) in grad_sigma.iter().enumerate() {
                    for j in 0..l {
                        for k in 0..l {
                            sigma[w][j][k] += self.learning_rate
                                * (g[j][k] / worker_deg[w] - self.l2_sigma * sigma[w][j][k]);
                            sigma[w][j][k] = sigma[w][j][k].clamp(-6.0, 6.0);
                        }
                    }
                }
            }

            // Truth update.
            for task in 0..cat.n {
                if cat.golden[task].is_some() || cat.task_len(task) == 0 {
                    continue;
                }
                let mut logp = vec![0.0f64; l];
                for (worker, label) in cat.task(task) {
                    for (j, lp) in logp.iter_mut().enumerate() {
                        let model = model_logprob(&tau[task], &sigma[worker], j);
                        *lp += model[label as usize];
                    }
                }
                log_normalize(&mut logp);
                post.row_mut(task).copy_from_slice(&logp);
            }
            cat.clamp_golden(&mut post);

            if tracker.step(post.data()) {
                break;
            }
        }

        // Worker quality: the diagonal pull of σ (diverse-skill summary).
        let worker_quality: Vec<WorkerQuality> = sigma
            .iter()
            .map(|s| {
                let skills: Vec<f64> = (0..l).map(|j| s[j][j]).collect();
                WorkerQuality::Skills(skills)
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let labels = cat.decode(&post, &mut rng);
        Ok(InferenceResult {
            truths: Cat::answers(&labels),
            worker_quality,
            iterations: tracker.iterations(),
            converged: tracker.converged(),
            posteriors: Some(post.into_nested()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::*;

    #[test]
    fn reasonable_on_toy() {
        let d = toy();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc >= 4.0 / 6.0, "toy accuracy {acc}");
    }

    #[test]
    fn decent_on_decision_data() {
        // Table 6 shape: Minimax is the weakest non-VI method on the
        // imbalanced D_Product (84.1% vs MV's 89.7%); the simulated
        // dataset reproduces a Minimax < MV gap.
        let d = small_decision();
        assert_accuracy_at_least(&Minimax::default(), &d, 0.62);
    }

    #[test]
    fn handles_single_choice() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        assert_result_sane(&d, &r);
        let acc = accuracy(&d, &r);
        assert!(acc > 0.30, "Minimax single-choice accuracy {acc}");
    }

    #[test]
    fn golden_clamped() {
        use crowd_data::GoldenSplit;
        let d = small_decision();
        let split = GoldenSplit::sample(&d, 0.2, 5);
        let opts = InferenceOptions {
            golden: Some(split.revealed.clone()),
            ..InferenceOptions::seeded(5)
        };
        let r = Minimax::default().infer(&d, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(Some(r.truths[t]), d.truth(t));
        }
    }

    #[test]
    fn skills_reported_per_class() {
        let d = small_single();
        let r = Minimax::default()
            .infer(&d, &InferenceOptions::seeded(3))
            .unwrap();
        for q in &r.worker_quality {
            let WorkerQuality::Skills(s) = q else {
                panic!("expected skills")
            };
            assert_eq!(s.len(), 4);
        }
    }
}
