//! The seventeen truth-inference methods of Table 4.
//!
//! Each submodule implements one method with its paper-faithful task
//! model, worker model, and inference technique, plus unit tests against
//! the paper's running example and simulated data.

use std::sync::OnceLock;

/// Posterior rows produced by the fused row kernels
/// ([`crowd_stats::fused_posterior_row`] / `fused_two_term_row`) — one
/// count per task row per E-step sweep, added in bulk per sweep/chunk.
pub(crate) fn obs_fused_rows() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("core.kernel.fused_rows_total"))
}

/// Wall time of one fused E-step sweep (flat or sharded), timer-sampled
/// around the whole pass — the kernel-level complement of the per-shard
/// `core.shard.estep_seconds`.
pub(crate) fn obs_kernel_estep_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("core.kernel.estep_seconds"))
}

mod bcc;
mod catd;
mod cbcc;
mod ds;
mod glad;
mod kos;
mod lfc;
mod lfc_n;
mod mean;
mod median;
mod minimax;
mod multi;
mod mv;
mod pm;
mod vi_bp;
mod vi_mf;
mod zc;

pub use bcc::Bcc;
pub use catd::Catd;
pub use cbcc::Cbcc;
pub use ds::Ds;
pub use glad::Glad;
pub use kos::Kos;
pub use lfc::Lfc;
pub use lfc_n::LfcN;
pub use mean::MeanAgg;
pub use median::MedianAgg;
pub use minimax::Minimax;
pub use multi::Multi;
pub use mv::Mv;
pub use pm::Pm;
pub use vi_bp::ViBp;
pub use vi_mf::ViMf;
pub use zc::Zc;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for method unit tests.

    use crowd_data::datasets::PaperDataset;
    use crowd_data::toy::paper_example;
    use crowd_data::{Answer, Dataset};

    use crate::framework::{InferenceOptions, InferenceResult, TruthInference};

    /// The paper's Table 2 example.
    pub fn toy() -> Dataset {
        paper_example()
    }

    /// A small but informative decision-making dataset (simulated
    /// D_Product at 10% scale — large enough for confusion-matrix
    /// estimation to be stable).
    pub fn small_decision() -> Dataset {
        PaperDataset::DProduct.generate(0.1, 42)
    }

    /// A small single-choice dataset with 4 labels (5% of S_Rel — big
    /// enough that multi-class EM methods are stable).
    pub fn small_single() -> Dataset {
        PaperDataset::SRel.generate(0.05, 1234)
    }

    /// A small numeric dataset.
    pub fn small_numeric() -> Dataset {
        PaperDataset::NEmotion.generate(0.2, 1234)
    }

    /// Accuracy of inferred truths against known ground truth.
    pub fn accuracy(dataset: &Dataset, result: &InferenceResult) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (task, truth) in dataset.truths().iter().enumerate() {
            if let Some(t) = truth {
                total += 1;
                if &result.truths[task] == t {
                    correct += 1;
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }

    /// F1-score on the positive class (label 0) against ground truth.
    pub fn f1(dataset: &Dataset, result: &InferenceResult) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for (task, truth) in dataset.truths().iter().enumerate() {
            if let Some(Answer::Label(g)) = truth {
                let p = result.truths[task].label().expect("categorical estimate");
                match (p, g) {
                    (0, 0) => tp += 1,
                    (0, _) => fp += 1,
                    (_, 0) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        }
    }

    /// RMSE of inferred numeric truths against ground truth.
    pub fn rmse(dataset: &Dataset, result: &InferenceResult) -> f64 {
        let mut total = 0usize;
        let mut sq = 0.0;
        for (task, truth) in dataset.truths().iter().enumerate() {
            if let Some(Answer::Numeric(t)) = truth {
                total += 1;
                let est = result.truths[task].numeric().expect("numeric estimate");
                sq += (est - t).powi(2);
            }
        }
        (sq / total.max(1) as f64).sqrt()
    }

    /// Run a method with default options and assert it beats the given
    /// accuracy bar on the dataset.
    pub fn assert_accuracy_at_least(
        method: &dyn TruthInference,
        dataset: &Dataset,
        bar: f64,
    ) -> InferenceResult {
        let result = method
            .infer(dataset, &InferenceOptions::seeded(7))
            .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()));
        let acc = accuracy(dataset, &result);
        assert!(
            acc >= bar,
            "{} accuracy {acc} below bar {bar}",
            method.name()
        );
        result
    }

    /// Check structural invariants every result must satisfy.
    pub fn assert_result_sane(dataset: &Dataset, result: &InferenceResult) {
        assert_eq!(result.truths.len(), dataset.num_tasks());
        assert_eq!(result.worker_quality.len(), dataset.num_workers());
        assert!(result.iterations >= 1);
        if let Some(post) = &result.posteriors {
            assert_eq!(post.len(), dataset.num_tasks());
            for p in post {
                let sum: f64 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "posterior sums to {sum}");
                assert!(p.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
            }
        }
    }
}
