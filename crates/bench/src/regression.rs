//! Bench-regression comparator: decides whether a freshly measured
//! `BENCH_*.json` is acceptable against a committed baseline.
//!
//! Policy (the `bench-regression` CI gate):
//!
//! - **Wall time** may regress by at most a relative threshold (default
//!   25%) on each row's primary time metric; rows additionally get an
//!   absolute floor (default 0.5 ms) so microsecond-scale rows cannot
//!   fail on timer quantisation noise.
//! - **Accuracy** (any per-row field starting with `accuracy`) may not
//!   regress *at all* (beyond float-formatting epsilon). Quality is a
//!   correctness property here, not a performance trade-off.
//! - A baseline row **missing** from the candidate is a regression
//!   (silent coverage loss must fail loudly); candidate-only rows are
//!   fine (new coverage).
//! - A boolean that was `true` in the baseline and is `false` in the
//!   candidate is a regression — top-level (e.g.
//!   `warm_fewer_iterations_everywhere`) and per-row (e.g. `converged`:
//!   a previously-converged (dataset, method) cell newly hitting its
//!   iteration cap must fail loudly, not slip through as a wall-time
//!   win).
//! - Comparing artifacts with different `schema`s or `scale`s is a usage
//!   **error**, not a pass: cross-scale wall times and accuracies are not
//!   comparable.

use crate::json::Json;
use std::fmt;

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Maximum tolerated relative wall-time regression (0.25 = +25%).
    pub max_time_regression: f64,
    /// Absolute wall-time floor: a row only fails the relative check if
    /// it also slowed by at least this many seconds. Microsecond-scale
    /// rows sit at the timer's quantisation limit, where +1µs reads as
    /// +25% — a relative-only gate would flake on pure noise.
    pub min_time_delta: f64,
    /// Slack for accuracy comparisons (absorbs decimal formatting only).
    pub accuracy_epsilon: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_time_regression: 0.25,
            min_time_delta: 5e-4,
            accuracy_epsilon: 1e-9,
        }
    }
}

/// The fields that identify a row within a results array, in display
/// order. Measurement fields are everything else. `mode` distinguishes
/// the serve bench's durability variants (`mem` / `wal` / `recovery`) —
/// rows missing the field (older artifacts, other schemas) simply skip
/// it, so pre-`mode` baselines keep comparing.
const KEY_FIELDS: [&str; 7] = [
    "dataset",
    "method",
    "mode",
    "sessions",
    "batches",
    "batch_size",
    "readers",
];

/// Row-identity fields per schema (everything else on a row is a
/// measurement). Scoped per schema — like [`time_field`] — so one
/// schema's key names (the kernels bench's generic `op`/`n`) cannot
/// silently become part of another schema's row identity.
fn key_fields(schema: &str) -> &'static [&'static str] {
    match schema {
        "crowd-bench/kernels/v1" => &["op", "n"],
        // v2 measures a backend matrix (std / fast-math-scalar /
        // fast-math-avx2) in one artifact; the backend is row identity
        // so each leg gates against its own baseline.
        "crowd-bench/kernels/v2" => &["op", "n", "backend"],
        "crowd-bench/shard/v1" => &["tasks", "shards"],
        _ => &KEY_FIELDS,
    }
}

/// Additional per-row wall-time metrics gated with the same bounded
/// relative check as the primary. Only rows that carry the field in the
/// baseline are checked — the serve bench's `mixed` rows report read
/// latencies that its `mem`/`wal`/`recovery` rows do not have.
fn extra_time_fields(schema: &str) -> &'static [&'static str] {
    match schema {
        "crowd-bench/serve/v1" => &["read_p99_seconds"],
        // The SIMD rows finish a whole sweep in ~0.4 ms — under the
        // absolute seconds floor, where the `seconds_min` gate can never
        // fire. `ns_per_elem` carries the same measurement in units
        // where the floor is inert (a fraction of a nanosecond), so the
        // bounded relative check gates the fast rows too.
        "crowd-bench/kernels/v2" => &["ns_per_elem"],
        _ => &[],
    }
}

/// Primary per-row wall-time metric per schema.
fn time_field(schema: &str) -> Option<&'static str> {
    match schema {
        "crowd-bench/table6/v1" => Some("seconds_min"),
        "crowd-bench/stream/v1" => Some("seconds_warm_total"),
        "crowd-bench/serve/v1" => Some("seconds_total"),
        // The kernels microbench reports ns_per_elem for humans, but the
        // gate compares the repeat-minimum loop seconds so the absolute
        // noise floor (`min_time_delta`) keeps its units.
        "crowd-bench/kernels/v1" => Some("seconds_min"),
        "crowd-bench/kernels/v2" => Some("seconds_min"),
        "crowd-bench/shard/v1" => Some("seconds_total"),
        _ => None,
    }
}

/// One detected regression.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The offending row's identity (or `<top-level>`).
    pub row: String,
    /// The offending field.
    pub field: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :: {} — {}", self.row, self.field, self.detail)
    }
}

/// A completed comparison.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Baseline rows that were matched and compared.
    pub rows_compared: usize,
    /// Everything that regressed; empty means the gate passes.
    pub regressions: Vec<Regression>,
}

impl Comparison {
    /// Whether the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Why a comparison could not be performed at all (distinct from a
/// regression: these indicate the comparator was invoked wrongly).
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// A document was not an object with a `results` array.
    MalformedArtifact {
        /// Which side ("baseline" / "candidate").
        side: &'static str,
        /// What was missing/wrong.
        detail: String,
    },
    /// The two documents have different `schema` fields.
    SchemaMismatch {
        /// Baseline schema.
        baseline: String,
        /// Candidate schema.
        candidate: String,
    },
    /// The schema is not one the comparator knows a time metric for.
    UnknownSchema(String),
    /// The two documents were measured at different scales — wall times
    /// and accuracies are not comparable across scales.
    ScaleMismatch {
        /// Baseline scale.
        baseline: f64,
        /// Candidate scale.
        candidate: f64,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MalformedArtifact { side, detail } => {
                write!(f, "malformed {side} artifact: {detail}")
            }
            Self::SchemaMismatch {
                baseline,
                candidate,
            } => write!(
                f,
                "schema mismatch: baseline {baseline:?} vs candidate {candidate:?}"
            ),
            Self::UnknownSchema(s) => write!(f, "no time metric known for schema {s:?}"),
            Self::ScaleMismatch {
                baseline,
                candidate,
            } => write!(
                f,
                "scale mismatch: baseline {baseline} vs candidate {candidate} — rerun the \
                 candidate at the baseline's scale"
            ),
        }
    }
}

impl std::error::Error for CompareError {}

fn row_key(row: &Json, fields: &[&str]) -> String {
    let mut key = String::new();
    for &field in fields {
        if let Some(v) = row.get(field) {
            use fmt::Write as _;
            let _ = match v {
                Json::Str(s) => write!(key, "{field}={s} "),
                Json::Num(x) => write!(key, "{field}={x} "),
                other => write!(key, "{field}={other:?} "),
            };
        }
    }
    key.trim_end().to_string()
}

fn artifact_parts<'a>(
    side: &'static str,
    doc: &'a Json,
) -> Result<(&'a str, f64, &'a [Json]), CompareError> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or_else(|| {
        CompareError::MalformedArtifact {
            side,
            detail: "missing string field \"schema\"".to_string(),
        }
    })?;
    let scale =
        doc.get("scale")
            .and_then(Json::as_num)
            .ok_or_else(|| CompareError::MalformedArtifact {
                side,
                detail: "missing numeric field \"scale\"".to_string(),
            })?;
    let results = doc.get("results").and_then(Json::as_arr).ok_or_else(|| {
        CompareError::MalformedArtifact {
            side,
            detail: "missing array field \"results\"".to_string(),
        }
    })?;
    Ok((schema, scale, results))
}

/// Compare a candidate artifact against its committed baseline.
pub fn compare(
    baseline: &Json,
    candidate: &Json,
    thresholds: &Thresholds,
) -> Result<Comparison, CompareError> {
    let (base_schema, base_scale, base_rows) = artifact_parts("baseline", baseline)?;
    let (cand_schema, cand_scale, cand_rows) = artifact_parts("candidate", candidate)?;
    if base_schema != cand_schema {
        return Err(CompareError::SchemaMismatch {
            baseline: base_schema.to_string(),
            candidate: cand_schema.to_string(),
        });
    }
    let time_metric =
        time_field(base_schema).ok_or_else(|| CompareError::UnknownSchema(base_schema.into()))?;
    if (base_scale - cand_scale).abs() > 1e-12 {
        return Err(CompareError::ScaleMismatch {
            baseline: base_scale,
            candidate: cand_scale,
        });
    }

    let mut cmp = Comparison::default();

    // Top-level booleans: true → false is a regression.
    if let Some(fields) = baseline.fields() {
        for (name, value) in fields {
            if value.as_bool() == Some(true)
                && candidate.get(name).and_then(Json::as_bool) == Some(false)
            {
                cmp.regressions.push(Regression {
                    row: "<top-level>".to_string(),
                    field: name.clone(),
                    detail: "was true in the baseline, false in the candidate".to_string(),
                });
            }
        }
    }

    let candidate_by_key: Vec<(String, &Json)> = cand_rows
        .iter()
        .map(|r| (row_key(r, key_fields(base_schema)), r))
        .collect();

    for base_row in base_rows {
        let key = row_key(base_row, key_fields(base_schema));
        let Some((_, cand_row)) = candidate_by_key.iter().find(|(k, _)| *k == key) else {
            cmp.regressions.push(Regression {
                row: key,
                field: "<row>".to_string(),
                detail: "present in the baseline but missing from the candidate".to_string(),
            });
            continue;
        };
        cmp.rows_compared += 1;

        // Wall time: bounded relative regression, on the schema's primary
        // metric plus any extra latency metrics the baseline row carries
        // (the serve bench's `mixed` rows gate `read_p99_seconds` here).
        for field in
            std::iter::once(time_metric).chain(extra_time_fields(base_schema).iter().copied())
        {
            let Some(base_t) = base_row.get(field).and_then(Json::as_num) else {
                continue;
            };
            match cand_row.get(field).and_then(Json::as_num) {
                Some(cand_t) => {
                    if base_t > 0.0
                        && cand_t > base_t * (1.0 + thresholds.max_time_regression)
                        && cand_t - base_t >= thresholds.min_time_delta
                    {
                        cmp.regressions.push(Regression {
                            row: key.clone(),
                            field: field.to_string(),
                            detail: format!(
                                "{cand_t:.6}s vs baseline {base_t:.6}s (+{:.1}%, limit +{:.1}%)",
                                (cand_t / base_t - 1.0) * 100.0,
                                thresholds.max_time_regression * 100.0
                            ),
                        });
                    }
                }
                None => cmp.regressions.push(Regression {
                    row: key.clone(),
                    field: field.to_string(),
                    detail: "time metric missing from the candidate row".to_string(),
                }),
            }
        }

        // Row booleans: `true` → `false` is a regression. The load-bearing
        // case is `converged`: a (dataset, method) row that converged in
        // the baseline but hits the iteration cap in the candidate is a
        // quality loss even when its wall time looks fine. A baseline
        // `true` whose field disappears from the candidate fails too —
        // like the time/accuracy checks, silent coverage loss must fail
        // loudly, or dropping the field would disable this rule.
        if let Some(fields) = base_row.fields() {
            for (name, value) in fields {
                if value.as_bool() != Some(true) {
                    continue;
                }
                match cand_row.get(name).and_then(Json::as_bool) {
                    Some(false) => cmp.regressions.push(Regression {
                        row: key.clone(),
                        field: name.clone(),
                        detail: "was true in the baseline row, false in the candidate".to_string(),
                    }),
                    None => cmp.regressions.push(Regression {
                        row: key.clone(),
                        field: name.clone(),
                        detail: "boolean missing from the candidate row".to_string(),
                    }),
                    Some(true) => {}
                }
            }
        }

        // Accuracy: any decrease beyond formatting epsilon fails.
        if let Some(fields) = base_row.fields() {
            for (name, value) in fields {
                if !name.starts_with("accuracy") {
                    continue;
                }
                let Some(base_a) = value.as_num() else {
                    continue;
                };
                match cand_row.get(name).and_then(Json::as_num) {
                    Some(cand_a) => {
                        if cand_a < base_a - thresholds.accuracy_epsilon {
                            cmp.regressions.push(Regression {
                                row: key.clone(),
                                field: name.clone(),
                                detail: format!(
                                    "{cand_a:.6} vs baseline {base_a:.6} — accuracy may not \
                                     regress at all"
                                ),
                            });
                        }
                    }
                    None => cmp.regressions.push(Regression {
                        row: key.clone(),
                        field: name.clone(),
                        detail: "accuracy metric missing from the candidate row".to_string(),
                    }),
                }
            }
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn fixture() -> Json {
        parse(
            r#"{
  "schema": "crowd-bench/stream/v1",
  "scale": 0.1,
  "warm_fewer_iterations_everywhere": true,
  "results": [
    {"dataset": "D_Product", "method": "D&S", "batches": 8, "batch_size": 312,
     "seconds_warm_total": 0.0128, "accuracy_warm": 0.9363, "accuracy_cold": 0.9363},
    {"dataset": "S_Rel", "method": "ZC", "batches": 32, "batch_size": 317,
     "seconds_warm_total": 0.2314, "accuracy_warm": 0.5358, "accuracy_cold": 0.5359}
  ]
}"#,
        )
        .unwrap()
    }

    /// Clone the fixture with one row's field rewritten.
    fn mutate(doc: &Json, row_idx: usize, field: &str, value: Json) -> Json {
        let mut doc = doc.clone();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rows) = v {
                        if let Json::Obj(row) = &mut rows[row_idx] {
                            if let Some((_, slot)) = row.iter_mut().find(|(k, _)| k == field) {
                                *slot = value;
                                return doc;
                            }
                            row.push((field.to_string(), value));
                            return doc;
                        }
                    }
                }
            }
        }
        panic!("fixture shape changed");
    }

    #[test]
    fn identical_artifacts_pass() {
        let base = fixture();
        let cmp = compare(&base, &base.clone(), &Thresholds::default()).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.rows_compared, 2);
    }

    #[test]
    fn injected_2x_slowdown_of_one_row_fails() {
        // The acceptance-criterion case: double one baseline row's wall
        // time in the candidate → the gate must fail on exactly that row.
        let base = fixture();
        let cand = mutate(&base, 0, "seconds_warm_total", Json::Num(0.0128 * 2.0));
        let cmp = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        let r = &cmp.regressions[0];
        assert!(r.row.contains("dataset=D_Product"));
        assert_eq!(r.field, "seconds_warm_total");
        assert!(r.detail.contains("+100.0%"), "{}", r.detail);
    }

    #[test]
    fn slowdown_within_threshold_passes() {
        let base = fixture();
        let cand = mutate(&base, 0, "seconds_warm_total", Json::Num(0.0128 * 1.2));
        assert!(compare(&base, &cand, &Thresholds::default())
            .unwrap()
            .passed());
        // ...and a tighter threshold catches it.
        let tight = Thresholds {
            max_time_regression: 0.1,
            ..Thresholds::default()
        };
        assert!(!compare(&base, &cand, &tight).unwrap().passed());
    }

    #[test]
    fn microsecond_rows_are_not_gated_on_timer_noise() {
        // A 4µs → 5µs "regression" is +25% but within the absolute
        // floor — timer quantisation, not a slowdown.
        let base = mutate(&fixture(), 0, "seconds_warm_total", Json::Num(4e-6));
        let cand = mutate(&base, 0, "seconds_warm_total", Json::Num(5e-6));
        assert!(compare(&base, &cand, &Thresholds::default())
            .unwrap()
            .passed());
        // But a genuine blow-up of a micro-row (past the floor) fails.
        let blown = mutate(&base, 0, "seconds_warm_total", Json::Num(4e-3));
        assert!(!compare(&base, &blown, &Thresholds::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn any_accuracy_drop_fails() {
        let base = fixture();
        let cand = mutate(&base, 1, "accuracy_cold", Json::Num(0.5358));
        let cmp = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].field, "accuracy_cold");
        // Improvements are welcome.
        let better = mutate(&base, 1, "accuracy_cold", Json::Num(0.99));
        assert!(compare(&base, &better, &Thresholds::default())
            .unwrap()
            .passed());
        // Formatting epsilon does not trip the gate.
        let noise = mutate(&base, 1, "accuracy_cold", Json::Num(0.5359 - 1e-12));
        assert!(compare(&base, &noise, &Thresholds::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn missing_baseline_row_fails_but_new_rows_are_fine() {
        let base = fixture();
        // Candidate drops the S_Rel row → fail.
        let mut dropped = base.clone();
        if let Json::Obj(fields) = &mut dropped {
            for (k, v) in fields.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rows) = v {
                        rows.truncate(1);
                    }
                }
            }
        }
        let cmp = compare(&base, &dropped, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].detail.contains("missing"));
        // Baseline ⊂ candidate → pass (reversed direction).
        let cmp = compare(&dropped, &base, &Thresholds::default()).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.rows_compared, 1);
    }

    #[test]
    fn row_converged_flipping_false_fails() {
        // The GLAD case: a row that converged in the baseline may not
        // become unconverged in the candidate, regardless of wall time.
        let base = mutate(&fixture(), 0, "converged", Json::Bool(true));
        let cand = mutate(&base, 0, "converged", Json::Bool(false));
        let cmp = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].field, "converged");
        assert!(cmp.regressions[0].row.contains("dataset=D_Product"));
        // An unconverged baseline row staying unconverged is fine...
        let base_unconv = mutate(&fixture(), 0, "converged", Json::Bool(false));
        let cand_unconv = mutate(&base_unconv, 0, "converged", Json::Bool(false));
        assert!(compare(&base_unconv, &cand_unconv, &Thresholds::default())
            .unwrap()
            .passed());
        // ...and newly converging is an improvement, not a failure.
        let improved = mutate(&base_unconv, 0, "converged", Json::Bool(true));
        assert!(compare(&base_unconv, &improved, &Thresholds::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn row_boolean_disappearing_fails() {
        // Dropping a baseline-true row boolean (e.g. the emitter stops
        // writing `converged`) must fail, not silently disable the rule.
        let base = mutate(&fixture(), 0, "converged", Json::Bool(true));
        let cmp = compare(&base, &fixture(), &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].field, "converged");
        assert!(cmp.regressions[0].detail.contains("missing"));
    }

    #[test]
    fn kernels_schema_keys_rows_by_op_and_n() {
        let doc = |secs: f64| {
            parse(&format!(
                r#"{{"schema": "crowd-bench/kernels/v1", "scale": 1.0, "results": [
                    {{"op": "exp_slice", "n": 1024, "seconds_min": {secs}, "ns_per_elem": 1.0}}
                ]}}"#
            ))
            .unwrap()
        };
        // Same (op, n) identity: compared, and a big slowdown fails.
        let cmp = compare(&doc(0.002), &doc(0.008), &Thresholds::default()).unwrap();
        assert_eq!(cmp.rows_compared, 1);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].row.contains("op=exp_slice n=1024"));
        // `n` is identity for this schema: a changed size is a missing
        // row, not a silently re-keyed comparison.
        let mut resized = doc(0.002);
        if let Json::Obj(fields) = &mut resized {
            for (k, v) in fields.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rows) = v {
                        if let Json::Obj(row) = &mut rows[0] {
                            for (rk, rv) in row.iter_mut() {
                                if rk == "n" {
                                    *rv = Json::Num(2048.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let cmp = compare(&doc(0.002), &resized, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions[0]
            .detail
            .contains("missing from the candidate"));
    }

    #[test]
    fn kernels_v2_keys_by_backend_and_gates_ns_per_elem() {
        let doc = |backend: &str, secs: f64, ns: f64, bound: bool| {
            parse(&format!(
                r#"{{"schema": "crowd-bench/kernels/v2", "scale": 1.0,
                    "simd_transcendental_within_bound": {bound},
                    "results": [
                    {{"op": "exp_slice", "n": 262144, "backend": "{backend}", "lanes": 4,
                      "seconds_min": {secs}, "ns_per_elem": {ns}}}
                ]}}"#
            ))
            .unwrap()
        };
        // Same (op, n, backend): compared as one row.
        let base = doc("fast-math-avx2", 0.0004, 1.5, true);
        let cmp = compare(
            &base,
            &doc("fast-math-avx2", 0.00042, 1.6, true),
            &Thresholds::default(),
        )
        .unwrap();
        assert_eq!(cmp.rows_compared, 1);
        assert!(cmp.passed());
        // A SIMD row's sweep sits under the absolute seconds floor, so a
        // 3× slowdown must still fail — via the ns_per_elem gate.
        let cmp = compare(
            &base,
            &doc("fast-math-avx2", 0.0012, 4.5, true),
            &Thresholds::default(),
        )
        .unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions.iter().any(|r| r.field == "ns_per_elem"));
        // Backend is row identity: the scalar leg cannot mask the AVX2
        // baseline row.
        let cmp = compare(
            &base,
            &doc("fast-math-scalar", 0.0004, 1.5, true),
            &Thresholds::default(),
        )
        .unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].row.contains("backend=fast-math-avx2"));
        assert!(cmp.regressions[0]
            .detail
            .contains("missing from the candidate"));
        // The SIMD-budget headline gates true → false.
        let cmp = compare(
            &base,
            &doc("fast-math-avx2", 0.0004, 1.5, false),
            &Thresholds::default(),
        )
        .unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].row, "<top-level>");
        assert_eq!(cmp.regressions[0].field, "simd_transcendental_within_bound");
    }

    #[test]
    fn shard_schema_keys_rows_by_tasks_and_shards_and_gates_flatness() {
        let doc = |secs: f64, flat: bool| {
            parse(&format!(
                r#"{{"schema": "crowd-bench/shard/v1", "scale": 0.1, "scaling_flat": {flat},
                    "results": [
                    {{"tasks": 100000, "shards": 4, "answers": 300000,
                      "seconds_total": {secs}, "answers_per_sec": 1.0, "accuracy_mean": 0.9}}
                ]}}"#
            ))
            .unwrap()
        };
        // Same (tasks, shards) identity: compared; a big slowdown fails.
        let cmp = compare(&doc(0.1, true), &doc(0.4, true), &Thresholds::default()).unwrap();
        assert_eq!(cmp.rows_compared, 1);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].row.contains("tasks=100000 shards=4"));
        assert_eq!(cmp.regressions[0].field, "seconds_total");
        // The scaling-flatness headline gates like the serve bench's
        // `wal_overhead_within_bound`: true → false fails.
        let cmp = compare(&doc(0.1, true), &doc(0.1, false), &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].row, "<top-level>");
        assert_eq!(cmp.regressions[0].field, "scaling_flat");
    }

    #[test]
    fn serve_mode_is_row_identity() {
        let doc = |mode: &str, secs: f64| {
            parse(&format!(
                r#"{{"schema": "crowd-bench/serve/v1", "scale": 0.1, "results": [
                    {{"mode": "{mode}", "sessions": 8, "batches": 32, "batch_size": 40,
                      "seconds_total": {secs}, "accuracy_mean": 0.93}}
                ]}}"#
            ))
            .unwrap()
        };
        // Same mode: compared as one row.
        let cmp = compare(
            &doc("wal", 0.01),
            &doc("wal", 0.011),
            &Thresholds::default(),
        )
        .unwrap();
        assert_eq!(cmp.rows_compared, 1);
        assert!(cmp.passed());
        // A different mode is a different row — the baseline row goes
        // missing rather than a `wal` candidate masking a `mem` baseline.
        let cmp = compare(&doc("mem", 0.01), &doc("wal", 0.01), &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].row.contains("mode=mem"));
        assert!(cmp.regressions[0]
            .detail
            .contains("missing from the candidate"));
    }

    #[test]
    fn serve_mixed_rows_gate_read_p99() {
        let doc = |p99: f64, wait_free: bool| {
            parse(&format!(
                r#"{{"schema": "crowd-bench/serve/v1", "scale": 0.1, "results": [
                    {{"mode": "mixed", "sessions": 8, "batches": 32, "batch_size": 40,
                      "readers": 4, "seconds_total": 0.01, "read_p99_seconds": {p99},
                      "reads_wait_free_within_bound": {wait_free}}}
                ]}}"#
            ))
            .unwrap()
        };
        // Within bounds: passes.
        let cmp = compare(
            &doc(0.002, true),
            &doc(0.0021, true),
            &Thresholds::default(),
        )
        .unwrap();
        assert_eq!(cmp.rows_compared, 1);
        assert!(cmp.passed());
        // read_p99_seconds blowing past the relative bound (and the
        // absolute floor) fails on that field specifically.
        let cmp = compare(&doc(0.002, true), &doc(0.02, true), &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert!(cmp
            .regressions
            .iter()
            .any(|r| r.field == "read_p99_seconds"));
        // The wait-free boolean flipping false fails like any row boolean.
        let cmp = compare(
            &doc(0.002, true),
            &doc(0.002, false),
            &Thresholds::default(),
        )
        .unwrap();
        assert!(!cmp.passed());
        assert!(cmp
            .regressions
            .iter()
            .any(|r| r.field == "reads_wait_free_within_bound"));
    }

    #[test]
    fn headline_boolean_flipping_false_fails() {
        let base = fixture();
        let mut cand = base.clone();
        if let Json::Obj(fields) = &mut cand {
            for (k, v) in fields.iter_mut() {
                if k == "warm_fewer_iterations_everywhere" {
                    *v = Json::Bool(false);
                }
            }
        }
        let cmp = compare(&base, &cand, &Thresholds::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].row, "<top-level>");
    }

    #[test]
    fn scale_and_schema_mismatches_are_errors_not_passes() {
        let base = fixture();
        let mut cand = base.clone();
        if let Json::Obj(fields) = &mut cand {
            for (k, v) in fields.iter_mut() {
                if k == "scale" {
                    *v = Json::Num(0.02);
                }
            }
        }
        assert!(matches!(
            compare(&base, &cand, &Thresholds::default()),
            Err(CompareError::ScaleMismatch { .. })
        ));
        let mut other_schema = base.clone();
        if let Json::Obj(fields) = &mut other_schema {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::Str("crowd-bench/table6/v1".to_string());
                }
            }
        }
        assert!(matches!(
            compare(&base, &other_schema, &Thresholds::default()),
            Err(CompareError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            compare(&Json::Null, &base, &Thresholds::default()),
            Err(CompareError::MalformedArtifact {
                side: "baseline",
                ..
            })
        ));
    }
}
