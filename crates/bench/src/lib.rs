//! Criterion benches live under benches/; this lib is intentionally empty.
