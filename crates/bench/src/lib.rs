//! Shared knobs for the bench targets, the `BENCH_*.json` reader, and
//! the bench-regression comparator; the criterion benches live under
//! `benches/` and the sweep binaries under `src/bin/`.

#![warn(missing_docs)]

pub mod json;
pub mod regression;

/// Parse a `CROWD_BENCH_SCALE` value: a finite number in `(0, +∞)`,
/// clamped to `0.001..=1.0` (the clamp is a convenience, not an error —
/// asking for scale 7 means "as big as it goes").
pub fn parse_scale(value: &str) -> Result<f64, crowd_core::exec::EnvParseError> {
    let err = |reason| crowd_core::exec::EnvParseError {
        var: "CROWD_BENCH_SCALE",
        value: value.to_string(),
        reason,
    };
    let x: f64 = value.trim().parse().map_err(|_| err("not a number"))?;
    if !x.is_finite() {
        return Err(err("must be finite"));
    }
    if x <= 0.0 {
        return Err(err("scale must be positive"));
    }
    Ok(x.clamp(0.001, 1.0))
}

/// Benchmark dataset scale: `CROWD_BENCH_SCALE` when set (CI smoke
/// passes use `0.02`), otherwise `default`; always clamped to
/// `0.001..=1.0`. One definition so the criterion benches and the JSON
/// sweeps can never disagree about the knob's semantics.
///
/// A malformed value is **not** silently ignored: it prints a loud
/// warning to stderr and falls back to `default` (use [`parse_scale`]
/// for the typed-error path).
pub fn env_scale(default: f64) -> f64 {
    let fallback = default.clamp(0.001, 1.0);
    match std::env::var("CROWD_BENCH_SCALE") {
        Err(_) => fallback,
        // Empty means "unset" (CI matrices export empty strings to mean
        // exactly that), not a parse error.
        Ok(v) if v.trim().is_empty() => fallback,
        Ok(v) => match parse_scale(&v) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("WARNING: {e}; using the default scale of {fallback}");
                fallback
            }
        },
    }
}

#[cfg(test)]
mod tests {
    // `env_scale` reads process-global state, so its test exercises only
    // the unset-variable path (tests in one binary run concurrently;
    // setting the variable here would race other tests). The parse
    // semantics are pinned through `parse_scale`.
    #[test]
    fn default_passes_through_clamped() {
        if std::env::var("CROWD_BENCH_SCALE").is_err() {
            assert_eq!(super::env_scale(0.1), 0.1);
            assert_eq!(super::env_scale(7.0), 1.0);
            assert_eq!(super::env_scale(0.0), 0.001);
        }
    }

    #[test]
    fn parse_scale_semantics() {
        assert_eq!(super::parse_scale("0.1"), Ok(0.1));
        assert_eq!(super::parse_scale(" 0.02 "), Ok(0.02));
        // Clamped, not rejected.
        assert_eq!(super::parse_scale("7"), Ok(1.0));
        assert_eq!(super::parse_scale("1e-9"), Ok(0.001));
        // Malformed values are typed errors, not silent fallbacks.
        for bad in ["", "fast", "0", "-0.5", "nan", "inf"] {
            let e = super::parse_scale(bad).unwrap_err();
            assert_eq!(e.var, "CROWD_BENCH_SCALE", "{bad:?}");
            assert!(e.to_string().contains("CROWD_BENCH_SCALE"));
        }
    }
}
