//! Shared knobs for the bench targets; the benches themselves live under
//! `benches/` and the Table-6 sweep binary under `src/bin/`.

/// Benchmark dataset scale: `CROWD_BENCH_SCALE` when set and parseable
/// (CI smoke passes use `0.02`), otherwise `default`; always clamped to
/// `0.001..=1.0`. One definition so the criterion benches and the
/// `crowd-bench` JSON sweep can never disagree about the knob's
/// semantics.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("CROWD_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default)
        .clamp(0.001, 1.0)
}

#[cfg(test)]
mod tests {
    // `env_scale` reads process-global state, so the test exercises only
    // the unset-variable path (tests in one binary run concurrently;
    // setting the variable here would race other tests).
    #[test]
    fn default_passes_through_clamped() {
        if std::env::var("CROWD_BENCH_SCALE").is_err() {
            assert_eq!(super::env_scale(0.1), 0.1);
            assert_eq!(super::env_scale(7.0), 1.0);
            assert_eq!(super::env_scale(0.0), 0.001);
        }
    }
}
