//! A minimal JSON reader for the `BENCH_*.json` artifacts.
//!
//! The workspace has no serde (offline build environment), and the bench
//! binaries *write* their JSON by hand; this module is the matching read
//! side, sufficient for the regression comparator: full JSON syntax,
//! numbers as `f64`, object keys kept in document order. It is not a
//! general-purpose parser (no `\u` surrogate pairs, numbers via
//! `str::parse::<f64>`), which is exactly as much JSON as the artifacts
//! contain.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if the value is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(JsonError {
                pos: start,
                msg: "malformed number",
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_shape() {
        let doc = r#"{
  "schema": "crowd-bench/stream/v1",
  "scale": 0.1,
  "ok": true,
  "results": [
    {"dataset": "D_Product", "method": "D&S?", "seconds": 1.5e-3},
    {"dataset": "S_Rel", "method": "ZC", "seconds": -2.0}
  ]
}"#
        .replace("\\u0026", "&"); // keep the fixture readable
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("crowd-bench/stream/v1")
        );
        assert_eq!(v.get("scale").unwrap().as_num(), Some(0.1));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let rows = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("seconds").unwrap().as_num(), Some(1.5e-3));
        assert_eq!(rows[1].get("seconds").unwrap().as_num(), Some(-2.0));
        assert_eq!(rows[0].get("method").unwrap().as_str(), Some("D&S?"));
    }

    #[test]
    fn escapes_and_null() {
        let v = parse(r#"{"s": "a\"b\\c\nd", "n": null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "{\"a\": 01x}",
            "\"unterminated",
        ] {
            assert!(parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn real_committed_artifacts_parse() {
        for path in ["../../BENCH_table6.json", "../../BENCH_stream.json"] {
            let text = std::fs::read_to_string(path).expect("committed artifact");
            let v = parse(&text).expect("artifact parses");
            assert!(v.get("results").unwrap().as_arr().unwrap().len() > 4);
        }
    }
}
