//! `crowd-kernels-bench` — microbenchmarks for the batched
//! transcendental kernels (`crowd_stats::kernels`).
//!
//! Times each kernel over a large contiguous buffer (and the scalar-std
//! per-element loops they replaced, for comparison) and writes a
//! `BENCH_kernels.json` artifact gated by `crowd-bench-check` against
//! the committed baseline. Buffers are sized so one sweep costs on the
//! order of a millisecond — above the comparator's absolute noise
//! floor, so a real kernel regression fails while timer jitter cannot.
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_REPEATS` — timed repeats per op (default `5`; the
//!   minimum is the gated number).
//! - `CROWD_KERNELS_OUT`   — output path (default `BENCH_kernels.json`).
//!
//! Usage: `cargo run --release -p crowd-bench --bin crowd-kernels-bench`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use crowd_stats::kernels;
use crowd_stats::DMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Elements per buffer: one exp sweep ≈ 1–2 ms, comfortably above the
/// regression comparator's 0.5 ms absolute floor.
const N: usize = 1 << 18;
/// Posterior-row width for the row-wise ops (the benchmark datasets
/// have ℓ ∈ {2, 3, 4}; 4 is the widest hot case).
const COLS: usize = 4;

struct Row {
    op: &'static str,
    n: usize,
    seconds_min: f64,
    seconds_mean: f64,
}

fn time_op(repeats: usize, mut f: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up settles page faults and the branch caches.
    f();
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

fn main() {
    let repeats: usize = std::env::var("CROWD_BENCH_REPEATS")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5)
        .max(1);
    let out_path =
        std::env::var("CROWD_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let backend = if cfg!(feature = "fast-math") {
        "fast-math"
    } else {
        "std"
    };
    eprintln!("crowd-kernels-bench: backend={backend} repeats={repeats} out={out_path}");

    let mut rng = StdRng::seed_from_u64(7);
    // Log-domain magnitudes typical of the E-steps: posteriors clamp at
    // ln(1e-12) ≈ −27.6, multipliers at ±6.
    let log_inputs: Vec<f64> = (0..N).map(|_| rng.gen_range(-28.0..0.0)).collect();
    let prob_inputs: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..1.0)).collect();
    let weights: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut scratch = vec![0.0f64; N];
    let mut rows = DMat::zeros(N / COLS, COLS);

    let mut results: Vec<Row> = Vec::new();
    let mut bench = |op: &'static str, n: usize, f: &mut dyn FnMut()| {
        let (min, mean) = time_op(repeats, f);
        eprintln!(
            "  {op:<24} {:>9.3} ms  ({:>6.2} ns/elem)",
            min * 1e3,
            min / n as f64 * 1e9
        );
        results.push(Row {
            op,
            n,
            seconds_min: min,
            seconds_mean: mean,
        });
    };

    // Scalar-std reference loops (what the methods paid per element
    // before the kernel layer).
    bench("exp_scalar_std", N, &mut || {
        scratch.copy_from_slice(&log_inputs);
        for x in scratch.iter_mut() {
            *x = x.exp();
        }
        black_box(scratch[N / 2]);
    });
    bench("safe_ln_scalar_std", N, &mut || {
        scratch.copy_from_slice(&prob_inputs);
        for x in scratch.iter_mut() {
            *x = x.max(1e-12).ln();
        }
        black_box(scratch[N / 2]);
    });

    // Batched kernels.
    bench("exp_slice", N, &mut || {
        scratch.copy_from_slice(&log_inputs);
        kernels::exp_slice(&mut scratch);
        black_box(scratch[N / 2]);
    });
    bench("ln_slice", N, &mut || {
        scratch.copy_from_slice(&prob_inputs);
        kernels::ln_slice(&mut scratch);
        black_box(scratch[N / 2]);
    });
    bench("safe_ln_slice", N, &mut || {
        scratch.copy_from_slice(&prob_inputs);
        kernels::safe_ln_slice(&mut scratch);
        black_box(scratch[N / 2]);
    });
    bench("sigmoid_slice", N, &mut || {
        scratch.copy_from_slice(&log_inputs);
        kernels::sigmoid_slice(&mut scratch);
        black_box(scratch[N / 2]);
    });
    bench("log_sum_exp_rows", N, &mut || {
        let mut acc = 0.0;
        for chunk in log_inputs.chunks_exact(COLS) {
            acc += kernels::log_sum_exp(chunk);
        }
        black_box(acc);
    });
    bench("log_normalize_rows", N, &mut || {
        rows.data_mut().copy_from_slice(&log_inputs);
        kernels::log_normalize_rows(&mut rows);
        black_box(rows.row(0)[0]);
    });
    bench("weighted_log_dot", N, &mut || {
        black_box(kernels::weighted_log_dot(&weights, &prob_inputs));
    });

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/kernels/v1\",");
    // Constant: the kernels have no dataset, but the comparator requires
    // matching scales, which pins candidate and baseline to the same
    // artifact shape.
    let _ = writeln!(json, "  \"scale\": 1.0,");
    let _ = writeln!(json, "  \"backend\": \"{backend}\",");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"n\": {}, \"seconds_min\": {:.6}, \"seconds_mean\": {:.6}, \"ns_per_elem\": {:.3}}}{}",
            r.op,
            r.n,
            r.seconds_min,
            r.seconds_mean,
            r.seconds_min / r.n as f64 * 1e9,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write kernels bench output");
    eprintln!(
        "crowd-kernels-bench: wrote {} rows to {out_path}",
        results.len()
    );
}
