//! `crowd-kernels-bench` — microbenchmarks for the batched
//! transcendental kernels (`crowd_stats::kernels`).
//!
//! Times each kernel over a large contiguous buffer (and the scalar-std
//! per-element loops they replaced, for comparison) and writes a
//! `BENCH_kernels.json` artifact gated by `crowd-bench-check` against
//! the committed baseline. Buffers are sized so one sweep costs on the
//! order of a millisecond — above the comparator's absolute noise
//! floor, so a real kernel regression fails while timer jitter cannot.
//!
//! The `crowd-bench/kernels/v2` schema records a *backend matrix*: in a
//! `fast-math` build with AVX2+FMA available, every kernel row is
//! measured twice — once on the `fast-math-avx2` leg and once with the
//! vector unit vetoed (`fast-math-scalar`, via the same runtime switch
//! `CROWD_FORCE_SCALAR` flips) — and each row carries its `backend` and
//! `lanes`. Rows are keyed by `(op, n, backend)`, so the regression
//! gate compares each leg against its own baseline. The top-level
//! `simd_transcendental_within_bound` headline pins the SIMD budget:
//! `exp_slice` and `ln_slice` on the `fast-math-avx2` leg must stay at
//! or under 2.0 ns/elem (vacuously true when that leg is absent, e.g.
//! in a default build — the committed baseline is a fast-math artifact,
//! so CI always measures the leg).
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_REPEATS` — timed repeats per op (default `5`; the
//!   minimum is the gated number).
//! - `CROWD_KERNELS_OUT`   — output path (default `BENCH_kernels.json`).
//!
//! Usage: `cargo run --release -p crowd-bench --features fast-math --bin crowd-kernels-bench`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use crowd_stats::kernels::{self, fused};
use crowd_stats::DMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Elements per buffer: one exp sweep ≈ 1–2 ms, comfortably above the
/// regression comparator's 0.5 ms absolute floor.
const N: usize = 1 << 18;
/// Cache-resident working set for the slice-transcendental rows
/// (128 KB of f64 — fits L2 alongside its input copy). The ns/elem
/// budget pins *kernel* throughput; with a streaming 2 MB buffer the
/// SIMD rows bottom out on host DRAM bandwidth instead (≈3 bytes moved
/// per flop at 2 ns/elem), which on a shared VM host varies by tens of
/// percent run to run. The timed sweep re-runs the kernel over one
/// L2-resident chunk until it has processed `N` elements, so the row
/// keeps the millisecond scale while measuring the vector cores.
const CHUNK: usize = 1 << 14;
/// Posterior-row width for the row-wise ops (the benchmark datasets
/// have ℓ ∈ {2, 3, 4}; 4 is the widest hot case).
const COLS: usize = 4;
/// Answers gathered per synthetic posterior row in the fused E-step op —
/// the Table 6 datasets average 3–10 answers per task.
const ANSWERS_PER_ROW: usize = 8;
/// The pinned SIMD budget: `exp_slice`/`ln_slice` on `fast-math-avx2`
/// must not exceed this many nanoseconds per element.
const SIMD_NS_PER_ELEM_BOUND: f64 = 2.0;

struct Row {
    op: &'static str,
    n: usize,
    backend: &'static str,
    lanes: usize,
    seconds_min: f64,
    seconds_mean: f64,
}

impl Row {
    fn ns_per_elem(&self) -> f64 {
        self.seconds_min / self.n as f64 * 1e9
    }
}

fn time_op(repeats: usize, mut f: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up settles page faults and the branch caches.
    f();
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

fn main() {
    let repeats: usize = std::env::var("CROWD_BENCH_REPEATS")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5)
        .max(1);
    let out_path =
        std::env::var("CROWD_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());

    // Backend legs. `force_scalar(false)` clears any ambient veto so the
    // primary leg is whatever the build + machine can do; when that is
    // the AVX2 leg, a second pass re-measures everything with the vector
    // unit vetoed, so the scalar-polynomial fallback stays pinned too.
    kernels::force_scalar(false);
    let mut legs = vec![false];
    if kernels::backend_name() == "fast-math-avx2" {
        legs.push(true);
    }
    eprintln!(
        "crowd-kernels-bench: backend={} lanes={} legs={} repeats={repeats} out={out_path}",
        kernels::backend_name(),
        kernels::lanes_active(),
        legs.len(),
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Log-domain magnitudes typical of the E-steps: posteriors clamp at
    // ln(1e-12) ≈ −27.6, multipliers at ±6.
    let log_inputs: Vec<f64> = (0..N).map(|_| rng.gen_range(-28.0..0.0)).collect();
    let prob_inputs: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..1.0)).collect();
    let weights: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..1.0)).collect();
    // Synthetic E-step shape for the fused posterior op: a log-confusion
    // table and per-row gather bases with room for the ℓ·ℓ stride walk.
    let table: Vec<f64> = (0..4096).map(|_| rng.gen_range(-28.0..0.0)).collect();
    let bases: Vec<usize> = (0..(N / COLS) * ANSWERS_PER_ROW)
        .map(|_| rng.gen_range(0..table.len() - (COLS - 1) * COLS - 1))
        .collect();
    let log_prior = vec![-1.386_294_361_119_890_6_f64; COLS]; // ln(1/4)
    let mut scratch = vec![0.0f64; N];
    let mut rows = DMat::zeros(N / COLS, COLS);

    let mut results: Vec<Row> = Vec::new();

    // The std-library reference loops (what the methods paid per element
    // before the kernel layer) do not dispatch, so they are measured
    // once, outside the leg loop.
    {
        let mut bench_ref = |op: &'static str, f: &mut dyn FnMut()| {
            let (min, mean) = time_op(repeats, f);
            eprintln!(
                "  {op:<26} [std             ] {:>9.3} ms  ({:>6.2} ns/elem)",
                min * 1e3,
                min / N as f64 * 1e9
            );
            results.push(Row {
                op,
                n: N,
                backend: "std",
                lanes: 1,
                seconds_min: min,
                seconds_mean: mean,
            });
        };
        bench_ref("exp_scalar_std", &mut || {
            scratch.copy_from_slice(&log_inputs);
            for x in scratch.iter_mut() {
                *x = x.exp();
            }
            black_box(scratch[N / 2]);
        });
        bench_ref("safe_ln_scalar_std", &mut || {
            scratch.copy_from_slice(&prob_inputs);
            for x in scratch.iter_mut() {
                *x = x.max(1e-12).ln();
            }
            black_box(scratch[N / 2]);
        });
    }

    for force in legs {
        kernels::force_scalar(force);
        let backend = kernels::backend_name();
        let lanes = kernels::lanes_active();

        let mut bench = |op: &'static str, f: &mut dyn FnMut()| {
            let (min, mean) = time_op(repeats, f);
            eprintln!(
                "  {op:<26} [{backend:<16}] {:>9.3} ms  ({:>6.2} ns/elem)",
                min * 1e3,
                min / N as f64 * 1e9
            );
            results.push(Row {
                op,
                n: N,
                backend,
                lanes,
                seconds_min: min,
                seconds_mean: mean,
            });
        };

        // Batched kernels, cache-resident (see `CHUNK`).
        bench("exp_slice", &mut || {
            for _ in 0..N / CHUNK {
                let s = &mut scratch[..CHUNK];
                s.copy_from_slice(&log_inputs[..CHUNK]);
                kernels::exp_slice(s);
            }
            black_box(scratch[CHUNK / 2]);
        });
        bench("ln_slice", &mut || {
            for _ in 0..N / CHUNK {
                let s = &mut scratch[..CHUNK];
                s.copy_from_slice(&prob_inputs[..CHUNK]);
                kernels::ln_slice(s);
            }
            black_box(scratch[CHUNK / 2]);
        });
        bench("safe_ln_slice", &mut || {
            for _ in 0..N / CHUNK {
                let s = &mut scratch[..CHUNK];
                s.copy_from_slice(&prob_inputs[..CHUNK]);
                kernels::safe_ln_slice(s);
            }
            black_box(scratch[CHUNK / 2]);
        });
        bench("sigmoid_slice", &mut || {
            for _ in 0..N / CHUNK {
                let s = &mut scratch[..CHUNK];
                s.copy_from_slice(&log_inputs[..CHUNK]);
                kernels::sigmoid_slice(s);
            }
            black_box(scratch[CHUNK / 2]);
        });
        bench("log_sum_exp_rows", &mut || {
            let mut acc = 0.0;
            for chunk in log_inputs.chunks_exact(COLS) {
                acc += kernels::log_sum_exp(chunk);
            }
            black_box(acc);
        });
        // The before/after pin for the fused whole-matrix normalize: the
        // unfused row reproduces the per-row `log_normalize` loop the
        // matrix walk used to be (one dispatch and two heap-free but
        // separate exp passes per 4-wide row), the fused row is the
        // shipping `log_normalize_rows` with the per-row temporaries
        // hoisted into stack blocks.
        bench("log_normalize_rows_unfused", &mut || {
            rows.data_mut().copy_from_slice(&log_inputs);
            for r in 0..rows.rows() {
                kernels::log_normalize(rows.row_mut(r));
            }
            black_box(rows.row(0)[0]);
        });
        bench("log_normalize_rows", &mut || {
            rows.data_mut().copy_from_slice(&log_inputs);
            kernels::log_normalize_rows(&mut rows);
            black_box(rows.row(0)[0]);
        });
        // The fused E-step centrepiece: prior init + strided gather +
        // log-sum-exp + normalize in one pass per posterior row.
        bench("fused_posterior_rows", &mut || {
            for (r, row_bases) in bases.chunks_exact(ANSWERS_PER_ROW).enumerate() {
                fused::fused_posterior_row(
                    rows.row_mut(r),
                    &log_prior,
                    &table,
                    row_bases.iter().copied(),
                );
            }
            black_box(rows.row(0)[0]);
        });
        bench("weighted_log_dot", &mut || {
            black_box(kernels::weighted_log_dot(&weights, &prob_inputs));
        });
    }
    kernels::force_scalar(false);

    // The SIMD transcendental budget: `exp_slice` and `ln_slice` on the
    // AVX2 leg at or under the pinned ns/elem bound. Vacuously true when
    // the leg is absent — the committed baseline carries the leg, so the
    // regression gate's missing-row rule catches a candidate that
    // silently stopped measuring it.
    let simd_within_bound = results
        .iter()
        .filter(|r| r.backend == "fast-math-avx2" && (r.op == "exp_slice" || r.op == "ln_slice"))
        .all(|r| r.ns_per_elem() <= SIMD_NS_PER_ELEM_BOUND);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/kernels/v2\",");
    // Constant: the kernels have no dataset, but the comparator requires
    // matching scales, which pins candidate and baseline to the same
    // artifact shape.
    let _ = writeln!(json, "  \"scale\": 1.0,");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(
        json,
        "  \"simd_transcendental_within_bound\": {simd_within_bound},"
    );
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"n\": {}, \"backend\": \"{}\", \"lanes\": {}, \
             \"seconds_min\": {:.6}, \"seconds_mean\": {:.6}, \"ns_per_elem\": {:.3}}}{}",
            r.op,
            r.n,
            r.backend,
            r.lanes,
            r.seconds_min,
            r.seconds_mean,
            r.ns_per_elem(),
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write kernels bench output");
    eprintln!(
        "crowd-kernels-bench: wrote {} rows to {out_path} (simd_transcendental_within_bound={simd_within_bound})",
        results.len()
    );
}
