//! `crowd-stream-bench` — the machine-readable streaming sweep.
//!
//! For every categorical Table-6 dataset, a uniform collection run is
//! replayed as a live answer stream at several batch sizes; after each
//! batch the engine re-converges **cold** (from majority vote — the
//! restart-from-scratch baseline) and **warm** (from the previous
//! converged state — the `crowd-stream` path). The output pins the two
//! headline numbers of the streaming subsystem: iterations-to-reconverge
//! and wall clock per batch, warm vs cold.
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_SCALE` — dataset scale in `(0, 1]` (default `0.1`);
//!   CI smoke passes use `0.02`.
//! - `CROWD_STREAM_OUT` — output path (default `BENCH_stream.json`).
//!
//! Usage: `cargo run --release -p crowd-bench --bin crowd-stream-bench`

use std::fmt::Write as _;
use std::time::Instant;

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{collect, AssignmentStrategy, StreamSession};
use crowd_metrics::accuracy;
use crowd_stream::{StreamConfig, StreamEngine};

/// Batch counts per stream: the per-batch wall clock is reported for
/// each, satisfying the "≥ 3 batch sizes" axis of the sweep.
const BATCH_COUNTS: [usize; 3] = [8, 32, 128];

/// Methods measured per dataset; D&S is the paper's recommended method
/// and the headline row, ZC the cheap single-parameter EM contrast.
const METHODS: [Method; 2] = [Method::Ds, Method::Zc];

struct Row {
    dataset: &'static str,
    method: &'static str,
    batches: usize,
    batch_size: usize,
    answers: usize,
    iterations_warm_total: usize,
    iterations_cold_total: usize,
    seconds_warm_total: f64,
    seconds_cold_total: f64,
    accuracy_warm: f64,
    accuracy_cold: f64,
}

fn main() {
    let scale = crowd_bench::env_scale(0.1);
    let out_path =
        std::env::var("CROWD_STREAM_OUT").unwrap_or_else(|_| "BENCH_stream.json".to_string());
    eprintln!("crowd-stream-bench: scale={scale} out={out_path}");

    let sweep_start = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    let mut warm_wins_everywhere = true;

    for dataset_id in PaperDataset::ALL {
        if !dataset_id.task_type().is_categorical() {
            continue;
        }
        let sim_cfg = dataset_id.config(scale);
        let budget = sim_cfg.num_tasks * sim_cfg.redundancy.max(1);
        let run = collect(&sim_cfg, AssignmentStrategy::Uniform, budget, 7)
            .expect("categorical Table-6 config");
        let dataset = &run.dataset;
        eprintln!(
            "  {} (n={}, |W|={}, |V|={})",
            dataset_id.name(),
            dataset.num_tasks(),
            dataset.num_workers(),
            dataset.num_answers()
        );

        for method in METHODS {
            for batches in BATCH_COUNTS {
                let batch_size = dataset.num_answers().div_ceil(batches).max(1);
                let mut engine = StreamEngine::new(StreamConfig::new(
                    method,
                    dataset.task_type(),
                    dataset.num_tasks(),
                    dataset.num_workers(),
                ))
                .expect("streaming session");
                let mut row = Row {
                    dataset: dataset_id.name(),
                    method: method.name(),
                    batches: 0,
                    batch_size,
                    answers: dataset.num_answers(),
                    iterations_warm_total: 0,
                    iterations_cold_total: 0,
                    seconds_warm_total: 0.0,
                    seconds_cold_total: 0.0,
                    accuracy_warm: 0.0,
                    accuracy_cold: 0.0,
                };
                for batch in StreamSession::replay(&run, batch_size) {
                    engine.push_batch(&batch.records).expect("valid replay");
                    // Compact outside the timed sections so both paths
                    // measure pure re-convergence, and alternate the
                    // measurement order per round so neither path
                    // systematically inherits the other's warmed caches.
                    engine.compact();
                    let (cold, warm) = if batch.round % 2 == 0 {
                        let start = Instant::now();
                        let cold = engine.converge_cold().expect("cold converge");
                        row.seconds_cold_total += start.elapsed().as_secs_f64();
                        let start = Instant::now();
                        let warm = engine.converge().expect("warm converge");
                        row.seconds_warm_total += start.elapsed().as_secs_f64();
                        (cold, warm)
                    } else {
                        let start = Instant::now();
                        let warm = engine.converge().expect("warm converge");
                        row.seconds_warm_total += start.elapsed().as_secs_f64();
                        let start = Instant::now();
                        let cold = engine.converge_cold().expect("cold converge");
                        row.seconds_cold_total += start.elapsed().as_secs_f64();
                        (cold, warm)
                    };
                    row.iterations_warm_total += warm.result.iterations;
                    row.iterations_cold_total += cold.result.iterations;
                    row.accuracy_warm = accuracy(dataset, &warm.result.truths);
                    row.accuracy_cold = accuracy(dataset, &cold.result.truths);
                    row.batches += 1;
                }
                eprintln!(
                    "    {:<4} batches={:>3}: iters warm {:>4} vs cold {:>4}; per-batch {:>8.3} ms vs {:>8.3} ms",
                    row.method,
                    row.batches,
                    row.iterations_warm_total,
                    row.iterations_cold_total,
                    row.seconds_warm_total / row.batches as f64 * 1e3,
                    row.seconds_cold_total / row.batches as f64 * 1e3,
                );
                if row.iterations_warm_total >= row.iterations_cold_total {
                    warm_wins_everywhere = false;
                    eprintln!(
                        "    WARNING: warm did not beat cold on {} / {} at {} batches",
                        row.dataset, row.method, row.batches
                    );
                }
                rows.push(row);
            }
        }
    }

    let total_seconds = sweep_start.elapsed().as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/stream/v1\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"total_seconds\": {total_seconds:.6},");
    let _ = writeln!(
        json,
        "  \"warm_fewer_iterations_everywhere\": {warm_wins_everywhere},"
    );
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"method\": \"{}\", \"batches\": {}, \"batch_size\": {}, \"answers\": {}, \"iterations_warm_total\": {}, \"iterations_cold_total\": {}, \"seconds_warm_total\": {:.6}, \"seconds_cold_total\": {:.6}, \"seconds_warm_per_batch_mean\": {:.6}, \"seconds_cold_per_batch_mean\": {:.6}, \"accuracy_warm\": {:.6}, \"accuracy_cold\": {:.6}}}{}",
            r.dataset.replace('"', "\\\""),
            r.method.replace('"', "\\\""),
            r.batches,
            r.batch_size,
            r.answers,
            r.iterations_warm_total,
            r.iterations_cold_total,
            r.seconds_warm_total,
            r.seconds_cold_total,
            r.seconds_warm_total / r.batches.max(1) as f64,
            r.seconds_cold_total / r.batches.max(1) as f64,
            r.accuracy_warm,
            r.accuracy_cold,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write stream bench output");
    eprintln!(
        "crowd-stream-bench: wrote {} rows to {out_path} in {total_seconds:.1}s (warm beats cold everywhere: {warm_wins_everywhere})",
        rows.len()
    );
}
