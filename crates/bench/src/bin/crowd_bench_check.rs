//! `crowd-bench-check` — the bench-regression CI gate.
//!
//! Compares a freshly measured `BENCH_*.json` against its committed
//! baseline and exits non-zero if the candidate regresses:
//!
//! - wall time on any baseline row by more than the threshold
//!   (default 25%, override with `--max-time-regress 0.4`),
//! - **any** accuracy metric by **any** amount,
//! - a baseline row or headline boolean disappearing.
//!
//! Scale/schema mismatches are hard usage errors (exit 2): comparing a
//! 2% smoke run against a 10% baseline would silently prove nothing.
//!
//! Usage:
//! `crowd-bench-check <baseline.json> <candidate.json> [--max-time-regress F]`

use crowd_bench::json;
use crowd_bench::regression::{compare, Thresholds};
use std::process::ExitCode;

fn load(path: &str, side: &str) -> Result<json::Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {side} {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("cannot parse {side} {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-time-regress" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or("--max-time-regress needs a value".to_string())?;
                thresholds.max_time_regression = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or(format!("bad --max-time-regress value {v:?}"))?;
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err(
            "usage: crowd-bench-check <baseline.json> <candidate.json> [--max-time-regress F]"
                .to_string(),
        );
    };

    let baseline = load(baseline_path, "baseline")?;
    let candidate = load(candidate_path, "candidate")?;
    let cmp = compare(&baseline, &candidate, &thresholds).map_err(|e| e.to_string())?;

    if cmp.passed() {
        println!(
            "bench-regression OK: {} rows within +{:.0}% wall time, no accuracy loss \
             ({baseline_path} vs {candidate_path})",
            cmp.rows_compared,
            thresholds.max_time_regression * 100.0
        );
        Ok(true)
    } else {
        eprintln!(
            "bench-regression FAILED: {} regression(s) over {} compared rows \
             ({baseline_path} vs {candidate_path})",
            cmp.regressions.len(),
            cmp.rows_compared
        );
        for r in &cmp.regressions {
            eprintln!("  - {r}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("crowd-bench-check: {msg}");
            ExitCode::from(2)
        }
    }
}
