//! `crowd-obs-check` — structural validation of a `crowd-obs` metrics
//! dump, the CI obs-smoke gate.
//!
//! Accepts either a bare registry snapshot (the `crowd-repro --metrics`
//! output) or a `BENCH_serve.json` whose top level embeds one under
//! `"obs"`. Checks, exiting non-zero on the first violation:
//!
//! - the dump parses and carries `"schema": "crowd-obs/v1"`;
//! - every series the instrumented serve path must emit is present and
//!   non-trivial (`--expect-serve`, which the CI smoke job passes after
//!   running `crowd-serve-bench`);
//! - counters and gauge high-waters are non-negative;
//! - histograms are internally consistent: quantiles finite,
//!   non-negative, and monotone (p50 ≤ p95 ≤ p99), `sum`/`max`
//!   non-negative, every rendered bucket non-empty with `lo ≤ hi`, and
//!   the bucket counts adding up to `count` exactly;
//! - when the input is a serve-bench artifact, the
//!   `obs_overhead_within_bound` headline boolean exists (the
//!   regression gate separately pins it `true` against the baseline).
//!
//! Usage: `crowd-obs-check <dump.json> [--expect-serve]`

use crowd_bench::json::{self, Json};
use std::process::ExitCode;

/// Counters the serve bench's workload cannot avoid incrementing.
const EXPECT_SERVE_COUNTERS: [&str; 13] = [
    "core.kernel.fused_rows_total",
    "core.pool.submits_total",
    "core.shard.dirty_rebuilds_total",
    "serve.ingest.answers_total",
    "serve.ingest.batches_total",
    "serve.recovery.sessions_recovered_total",
    "serve.snapshot.writes_total",
    "serve.truth.publishes_total",
    "serve.truth.reads_total",
    "serve.truth.retired_freed_total",
    "serve.wal.appends_total",
    "stream.engine.batches_total",
    "stream.engine.warm_resumes_total",
];

/// Histograms likewise guaranteed non-empty by the serve bench.
const EXPECT_SERVE_HISTOGRAMS: [&str; 10] = [
    "core.kernel.estep_seconds",
    "core.pool.dispatch_seconds",
    "core.shard.estep_seconds",
    "core.shard.reduce_seconds",
    "serve.recovery.replay_seconds",
    "serve.shard.tick_seconds",
    "serve.truth.read_seconds",
    "serve.wal.append_seconds",
    "stream.engine.batch_push_seconds",
    "stream.engine.converge_seconds",
];

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing {key:?}"))
}

fn num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = field(obj, key, ctx)?
        .as_num()
        .ok_or_else(|| format!("{ctx}: {key:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("{ctx}: {key:?} is not finite ({v})"));
    }
    if v < 0.0 {
        return Err(format!("{ctx}: {key:?} is negative ({v})"));
    }
    Ok(v)
}

fn check_histogram(name: &str, h: &Json) -> Result<(), String> {
    let ctx = format!("histogram {name:?}");
    let count = num(h, "count", &ctx)?;
    num(h, "sum", &ctx)?;
    num(h, "max", &ctx)?;
    num(h, "mean", &ctx)?;
    let p50 = num(h, "p50", &ctx)?;
    let p95 = num(h, "p95", &ctx)?;
    let p99 = num(h, "p99", &ctx)?;
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "{ctx}: quantiles not monotone (p50 {p50}, p95 {p95}, p99 {p99})"
        ));
    }
    let buckets = field(h, "buckets", &ctx)?
        .as_arr()
        .ok_or_else(|| format!("{ctx}: \"buckets\" is not an array"))?;
    let mut total = 0.0f64;
    for (i, b) in buckets.iter().enumerate() {
        let triple = b
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| format!("{ctx}: bucket {i} is not a [lo, hi, count] triple"))?;
        let lo = triple[0].as_num().unwrap_or(f64::NAN);
        let hi = triple[1].as_num().unwrap_or(f64::NAN);
        let c = triple[2].as_num().unwrap_or(f64::NAN);
        if !(lo.is_finite() && hi.is_finite() && lo >= 0.0 && hi >= lo) {
            return Err(format!("{ctx}: bucket {i} has bad bounds [{lo}, {hi}]"));
        }
        if !(c.is_finite() && c >= 1.0) {
            return Err(format!(
                "{ctx}: bucket {i} rendered with non-positive count {c}"
            ));
        }
        total += c;
    }
    if total != count {
        return Err(format!(
            "{ctx}: bucket counts sum to {total} but count is {count}"
        ));
    }
    Ok(())
}

fn check_snapshot(snap: &Json, expect_serve: bool) -> Result<(usize, usize, usize), String> {
    let schema = field(snap, "schema", "snapshot")?
        .as_str()
        .unwrap_or_default();
    if schema != "crowd-obs/v1" {
        return Err(format!("unexpected snapshot schema {schema:?}"));
    }

    let counters = field(snap, "counters", "snapshot")?
        .fields()
        .ok_or("snapshot: \"counters\" is not an object")?;
    for (name, v) in counters {
        let x = v
            .as_num()
            .ok_or_else(|| format!("counter {name:?} is not a number"))?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!("counter {name:?} has bad value {x}"));
        }
    }

    let gauges = field(snap, "gauges", "snapshot")?
        .fields()
        .ok_or("snapshot: \"gauges\" is not an object")?;
    for (name, g) in gauges {
        let ctx = format!("gauge {name:?}");
        let value = field(g, "value", &ctx)?
            .as_num()
            .ok_or_else(|| format!("{ctx}: \"value\" is not a number"))?;
        let hw = num(g, "high_water", &ctx)?;
        if value > hw {
            return Err(format!("{ctx}: value {value} above high_water {hw}"));
        }
    }

    let hists = field(snap, "histograms", "snapshot")?
        .fields()
        .ok_or("snapshot: \"histograms\" is not an object")?;
    for (name, h) in hists {
        check_histogram(name, h)?;
    }

    if expect_serve {
        for name in EXPECT_SERVE_COUNTERS {
            let v = counters
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.as_num())
                .ok_or_else(|| format!("expected serve counter {name:?} missing"))?;
            if v == 0.0 {
                return Err(format!("expected serve counter {name:?} is zero"));
            }
        }
        for name in EXPECT_SERVE_HISTOGRAMS {
            let h = hists
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, h)| h)
                .ok_or_else(|| format!("expected serve histogram {name:?} missing"))?;
            if num(h, "count", name)? == 0.0 {
                return Err(format!("expected serve histogram {name:?} is empty"));
            }
        }
    }

    Ok((counters.len(), gauges.len(), hists.len()))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut expect_serve = false;
    for arg in &args {
        match arg.as_str() {
            "--expect-serve" => expect_serve = true,
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown flag {other}\nusage: crowd-obs-check <dump.json> [--expect-serve]"
                ));
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("usage: crowd-obs-check <dump.json> [--expect-serve]".to_string());
                }
            }
        }
    }
    let path = path.ok_or("usage: crowd-obs-check <dump.json> [--expect-serve]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;

    // Every bench artifact embeds the snapshot under "obs"; the serve
    // artifact (recognised by its schema) must additionally carry the
    // overhead headline the regression gate pins.
    let snap = root.get("obs").unwrap_or(&root);
    if root.get("schema").and_then(Json::as_str) == Some("crowd-bench/serve/v1") {
        field(&root, "obs_overhead_within_bound", "serve artifact")?
            .as_bool()
            .ok_or("serve artifact: \"obs_overhead_within_bound\" is not a boolean")?;
    }
    let (nc, ng, nh) = check_snapshot(snap, expect_serve)?;
    println!(
        "obs-check OK: {path} valid ({nc} counters, {ng} gauges, {nh} histograms{})",
        if expect_serve {
            ", serve series present"
        } else {
            ""
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crowd-obs-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
