//! `crowd-shard-bench` — the sharded-substrate scaling sweep.
//!
//! Streams deterministic synthetic datasets of growing size (10⁴ to 10⁷
//! tasks at scale 1, multiplied by `CROWD_BENCH_SCALE`) straight into a
//! [`ShardedView`] — the single-pass `from_records` build, no flat
//! answer log is ever materialised — and runs a fixed-iteration D&S
//! converge per shard count. Reported per `(tasks, shards)` cell:
//! answers/sec through the sharded EM path, build time, and accuracy
//! against the generator's latent truth.
//!
//! The headline `scaling_flat` boolean records that per shard count,
//! throughput at the largest dataset held at least [`FLATNESS_FLOOR`] of
//! the smallest dataset's — "flat or better". The generous factor
//! absorbs the cache-hierarchy falloff of working sets outgrowing LLC;
//! what it must catch is the failure mode that matters, accidentally
//! superlinear work (an O(n²) regression craters the ratio by orders of
//! magnitude). Committed `true` in the baseline, so the `shard-scaling`
//! CI gate fails if streaming scale is ever lost.
//!
//! The sweep also asserts outright that every shard count of a given
//! size decodes the same truths — the bit-identity contract, enforced on
//! every run, not just in the unit suite.
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_SCALE` — size multiplier in `(0, 1]` (default `0.1`,
//!   i.e. 10³–10⁶ tasks).
//! - `CROWD_BENCH_REPEATS` — timed converges per cell after one warm-up
//!   (default `2`); the fastest is reported.
//! - `CROWD_SHARD_OUT` — output path (default `BENCH_shard.json`).
//!
//! Usage: `cargo run --release -p crowd-bench --bin crowd-shard-bench`

use std::fmt::Write as _;
use std::time::Instant;

use crowd_core::methods::Ds;
use crowd_core::views::ShardedView;
use crowd_core::InferenceOptions;
use crowd_data::{Answer, StreamSim};

/// Dataset sizes (tasks at scale 1) — the 10⁴–10⁷ axis.
const TASK_SIZES: [usize; 4] = [10_000, 100_000, 1_000_000, 10_000_000];

/// Shard counts per size.
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// Answers per task in the synthetic stream.
const REDUNDANCY: usize = 3;

/// Label choices.
const CHOICES: u8 = 3;

/// Fixed outer iterations per converge (the tolerance below is
/// unreachably small, so every cell runs exactly this many iterations
/// and answers/sec is comparable across sizes).
const ITERATIONS: usize = 5;

/// `scaling_flat` floor: largest-size throughput must hold this fraction
/// of smallest-size throughput, per shard count.
const FLATNESS_FLOOR: f64 = 0.35;

struct Row {
    tasks: usize,
    shards: usize,
    workers: usize,
    answers: usize,
    seconds_build: f64,
    seconds_total: f64,
    answers_per_sec: f64,
    accuracy_mean: f64,
}

fn main() {
    let scale = crowd_bench::env_scale(0.1);
    let out_path =
        std::env::var("CROWD_SHARD_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
    let repeats: usize = std::env::var("CROWD_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2)
        .max(1);
    eprintln!("crowd-shard-bench: scale={scale} repeats={repeats} out={out_path}");

    let mut options = InferenceOptions::seeded(7);
    options.max_iterations = ITERATIONS;
    // ConvergenceTracker requires a positive threshold; the smallest
    // positive double can never be reached, pinning the iteration count.
    options.tolerance = f64::MIN_POSITIVE;

    let sweep_start = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    let mut scaling_flat = true;

    for size in TASK_SIZES {
        let tasks = ((size as f64 * scale).round() as usize).max(100);
        // Worker pool grows with the task count (long-tail participation
        // is out of scope here — the sweep prices the substrate, not the
        // crowd model).
        let workers = (tasks / 20).max(50);
        let sim = StreamSim::new(11, tasks, workers, CHOICES, REDUNDANCY);
        eprintln!("  n={tasks} (|W|={workers}, |V|={})", sim.num_answers());
        let mut truths_at_size: Option<Vec<Answer>> = None;

        for shards in SHARD_COUNTS {
            let build_start = Instant::now();
            let view = ShardedView::from_records(
                tasks,
                workers,
                CHOICES as usize,
                shards,
                sim.records(),
                vec![None; tasks],
            );
            let seconds_build = build_start.elapsed().as_secs_f64();

            let mut seconds_total = f64::INFINITY;
            let mut result = None;
            for _ in 0..=repeats {
                let start = Instant::now();
                let r = Ds.infer_sharded(&view, &options).expect("valid view");
                let elapsed = start.elapsed().as_secs_f64();
                if result.is_none() {
                    result = Some(r); // warm-up run, untimed
                } else {
                    seconds_total = seconds_total.min(elapsed);
                    result = Some(r);
                }
            }
            let result = result.expect("at least one converge");

            // Bit-identity, enforced on every run: each shard count must
            // decode the same truths for the same data.
            match &truths_at_size {
                None => truths_at_size = Some(result.truths.clone()),
                Some(reference) => assert_eq!(
                    reference, &result.truths,
                    "shard count {shards} diverged from shard count {} at n={tasks}",
                    SHARD_COUNTS[0]
                ),
            }

            let accuracy_mean = (0..tasks)
                .filter(|&t| result.truths[t] == Answer::Label(sim.truth(t)))
                .count() as f64
                / tasks as f64;
            let answers_per_sec = sim.num_answers() as f64 / seconds_total.max(1e-12);
            eprintln!(
                "    shards={shards:>2}: {answers_per_sec:>12.0} answers/s \
                 (converge {:>8.3} ms, build {:>8.3} ms, accuracy {accuracy_mean:.4})",
                seconds_total * 1e3,
                seconds_build * 1e3,
            );
            rows.push(Row {
                tasks,
                shards,
                workers,
                answers: sim.num_answers(),
                seconds_build,
                seconds_total,
                answers_per_sec,
                accuracy_mean,
            });
        }
    }

    // Flatness per shard count: smallest vs largest size.
    for shards in SHARD_COUNTS {
        let per_size: Vec<&Row> = rows.iter().filter(|r| r.shards == shards).collect();
        let (first, last) = (per_size[0], per_size[per_size.len() - 1]);
        let ratio = last.answers_per_sec / first.answers_per_sec.max(1e-12);
        if ratio < FLATNESS_FLOOR {
            scaling_flat = false;
            eprintln!(
                "  WARNING: shards={shards} throughput fell to {ratio:.3}× of the smallest \
                 size's ({:.0} vs {:.0} answers/s) — below the {FLATNESS_FLOOR} floor",
                last.answers_per_sec, first.answers_per_sec
            );
        }
    }

    let total_seconds = sweep_start.elapsed().as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/shard/v1\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"method\": \"D&S\",");
    let _ = writeln!(json, "  \"iterations\": {ITERATIONS},");
    let _ = writeln!(json, "  \"total_seconds\": {total_seconds:.6},");
    let _ = writeln!(json, "  \"scaling_flat\": {scaling_flat},");
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"tasks\": {}, \"shards\": {}, \"workers\": {}, \"answers\": {}, \
             \"seconds_build\": {:.6}, \"seconds_total\": {:.6}, \"answers_per_sec\": {:.1}, \
             \"accuracy_mean\": {:.6}}}{}",
            r.tasks,
            r.shards,
            r.workers,
            r.answers,
            r.seconds_build,
            r.seconds_total,
            r.answers_per_sec,
            r.accuracy_mean,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write shard bench output");
    eprintln!(
        "crowd-shard-bench: wrote {} rows to {out_path} in {total_seconds:.1}s \
         (scaling flat: {scaling_flat})",
        rows.len()
    );
}
