//! `crowd-serve-bench` — the multi-session service sweep.
//!
//! Measures `crowd-serve` on a sessions × batch-count grid: S concurrent
//! sessions each replay an independent uniform collection run of the
//! D_Product configuration (distinct seeds — distinct streams of the
//! same shape) through the sharded service, one drain tick per round of
//! submissions. Reported per cell: end-to-end wall time, ingest
//! throughput, per-tick latency, and the mean final accuracy across
//! sessions (the comparator gates on it — multi-tenancy must not cost
//! quality).
//!
//! Each cell is measured in three **modes** (the `mode` row field is
//! part of the comparator's row identity):
//!
//! - `mem` — durability off; the pure in-memory service as before.
//! - `wal` — per-session write-ahead logging and snapshot checkpoints
//!   on (`FsyncPolicy::Never`, so the row isolates the WAL's
//!   serialisation + buffered-write overhead from the host's fsync
//!   latency, which is a per-deployment durability/throughput knob —
//!   see ARCHITECTURE.md; the fsync policies themselves are covered by
//!   the durability test suite). The top-level
//!   `wal_overhead_within_bound` boolean records that every `wal` cell
//!   stayed within the regression gate's 25% wall-time bound of its
//!   `mem` twin — committed `true`, so the gate fails if WAL overhead
//!   ever outgrows the bound.
//! - `recovery` — wall time for `CrowdServe::recover` to rebuild every
//!   session of the cell from the logs the `wal` run left behind
//!   (snapshot fast path + WAL tail replay). `answers_total` is the
//!   answer count restored, so `throughput_answers_per_sec` reads as
//!   recovery bandwidth; accuracy is measured on the *recovered*
//!   sessions, so the no-accuracy-regression gate also pins recovery
//!   fidelity.
//! - `mixed` — the wait-free read path under a mixed workload: one
//!   writer thread per session submits each round while 4 reader
//!   threads poll `TruthReader::snapshot` round-robin over the cell's
//!   sessions, for the whole replay (converges in flight) and then
//!   against the idle service. The row reports busy/idle read p50/p99
//!   (sampled every 64th read) and aggregate `reads_per_sec`, plus two
//!   booleans the gate pins: `reads_wait_free_within_bound` (busy p99 ≤
//!   max(10× idle p99, 1ms — the absolute floor absorbs scheduler
//!   preemption on saturated hosts)) and `read_throughput_within_bound`
//!   (≥ 10⁶ reads/s from the 4 threads). `read_p99_seconds` is also
//!   time-gated directly. A lock-taking read path fails these
//!   immediately: readers would serialise behind every converge.
//!
//! Each `mem` cell is additionally re-run with `crowd-obs` recording
//! switched off (`crowd_obs::set_enabled(false)`) — the A/B that prices
//! the observability spine. The top-level `obs_overhead_within_bound`
//! boolean records that the metrics-on mem sweep stayed within 3% of
//! the metrics-off total wall time (aggregate over all cells, with an
//! absolute noise floor — single ~10ms cells are too noisy to gate
//! individually); `obs_overhead_max_ratio` reports the noisiest single
//! cell for the curious. Committed `true` in the baseline, so the
//! regression gate fails if metrics ever stop being cheap enough to
//! leave on. The final registry snapshot is embedded under `"obs"`,
//! which `crowd-obs-check` validates structurally in CI.
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_SCALE` — dataset scale in `(0, 1]` (default `0.1`);
//!   CI smoke passes use `0.02`.
//! - `CROWD_BENCH_REPEATS` — timed replays per cell after one warm-up
//!   (default `3`); the fastest is reported, like `crowd-bench`'s
//!   `seconds_min`.
//! - `CROWD_SERVE_OUT` — output path (default `BENCH_serve.json`).
//!
//! Usage: `cargo run --release -p crowd-bench --bin crowd-serve-bench`

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{collect, AnswerRecord, AssignmentStrategy, Dataset, StreamSession};
use crowd_metrics::accuracy;
use crowd_serve::{CrowdServe, DurabilityConfig, FsyncPolicy, ServeConfig, TruthReader};
use crowd_stream::StreamConfig;

/// Concurrent-session counts (the service must sustain ≥ 8).
const SESSION_COUNTS: [usize; 4] = [1, 2, 8, 16];

/// Batches each session's stream is split into.
const BATCH_COUNTS: [usize; 2] = [8, 32];

/// Reader threads in the `mixed` mode (the ISSUE's acceptance bound is
/// stated for 4 readers).
const READER_THREADS: usize = 4;

/// Latency-sample cadence: every Nth read is individually timed. The
/// untimed reads still count toward `reads_per_sec`, so the throughput
/// figure is not distorted by `Instant::now` overhead on every call.
const SAMPLE_EVERY: u64 = 64;

/// Reads per thread in the idle phase (fixed count — the idle p99 is the
/// wait-free bound's denominator, so it needs enough samples to be
/// stable, but should not dominate the sweep's wall time).
const IDLE_READS_PER_THREAD: u64 = 100_000;

/// Snapshot cadence for the durable modes. Chosen so the batch counts
/// (8 and 32) are not multiples of it: the final converge frame is then
/// never covered by a snapshot, and the recovered sessions always carry
/// a replayed last report to measure accuracy on.
const SNAPSHOT_EVERY: u64 = 3;

struct Tenant {
    dataset: Dataset,
    batches: Vec<Vec<AnswerRecord>>,
}

struct Row {
    mode: &'static str,
    sessions: usize,
    batches: usize,
    batch_size: usize,
    answers_total: usize,
    ticks: usize,
    seconds_total: f64,
    seconds_per_tick_mean: f64,
    seconds_per_tick_max: f64,
    throughput: f64,
    accuracy_mean: f64,
    /// Read-path measurements; present only on `mixed` rows.
    mixed: Option<MixedStats>,
}

/// The `mixed` mode's read-path measurements.
struct MixedStats {
    reads_total: u64,
    reads_per_sec: f64,
    read_p50_seconds: f64,
    read_p99_seconds: f64,
    read_p50_seconds_idle: f64,
    read_p99_seconds_idle: f64,
    wait_free: bool,
    throughput_ok: bool,
}

/// Nearest-rank percentile (q in [0, 1]); sorts in place.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[((samples.len() - 1) as f64 * q).round() as usize]
}

/// One reader thread's loop: poll `snapshot()` round-robin over the
/// cell's sessions until `stop` is raised or `max_reads` is reached.
/// Returns the read count and the sampled per-read latencies.
fn poll_readers(readers: &[TruthReader], stop: &AtomicBool, max_reads: u64) -> (u64, Vec<f64>) {
    let mut reads = 0u64;
    let mut samples = Vec::with_capacity(4096);
    while reads < max_reads && !stop.load(Ordering::Relaxed) {
        let reader = &readers[(reads % readers.len() as u64) as usize];
        if reads.is_multiple_of(SAMPLE_EVERY) {
            let t = Instant::now();
            std::hint::black_box(reader.snapshot());
            samples.push(t.elapsed().as_secs_f64());
        } else {
            std::hint::black_box(reader.snapshot());
        }
        reads += 1;
    }
    (reads, samples)
}

fn durable_cfg(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        snapshot_every_converges: SNAPSHOT_EVERY,
        max_session_restarts: 3,
    }
}

fn main() {
    let scale = crowd_bench::env_scale(0.1);
    let out_path =
        std::env::var("CROWD_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let repeats = match std::env::var("CROWD_BENCH_REPEATS") {
        Err(_) => 3,
        Ok(v) if v.trim().is_empty() => 3,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("WARNING: invalid CROWD_BENCH_REPEATS value {v:?}: not a non-negative integer; using the default of 3");
            3
        }),
    }
    .max(1);
    eprintln!("crowd-serve-bench: scale={scale} repeats={repeats} out={out_path}");

    let dataset_id = PaperDataset::DProduct;
    let sim_cfg = dataset_id.config(scale);
    let budget = sim_cfg.num_tasks * sim_cfg.redundancy.max(1);
    let max_sessions = *SESSION_COUNTS.iter().max().unwrap();

    let wal_root = std::env::temp_dir().join(format!("crowd-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    std::fs::create_dir_all(&wal_root).expect("create WAL scratch dir");

    // One replayable stream per potential tenant, generated once.
    let tenants: Vec<Tenant> = (0..max_sessions)
        .map(|s| {
            let run = collect(&sim_cfg, AssignmentStrategy::Uniform, budget, 7 + s as u64)
                .expect("categorical Table-6 config");
            Tenant {
                dataset: run.dataset,
                batches: Vec::new(), // per-cell split below
            }
        })
        .collect();

    let sweep_start = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    let mut wal_within_bound = true;
    let mut wal_ratio_max = 0.0f64;
    let mut reads_wait_free = true;
    let mut reads_throughput_ok = true;
    let mut obs_on_total = 0.0f64;
    let mut obs_off_total = 0.0f64;
    let mut obs_ratio_max = 0.0f64;
    // The A/B below flips the process-global switch; make sure the sweep
    // starts (and every durable-mode row runs) with recording on.
    crowd_obs::set_enabled(true);

    for sessions in SESSION_COUNTS {
        for batches in BATCH_COUNTS {
            let mut cell_tenants: Vec<Tenant> = Vec::new();
            for t in tenants.iter().take(sessions) {
                let batch_size = t.dataset.num_answers().div_ceil(batches).max(1);
                cell_tenants.push(Tenant {
                    dataset: t.dataset.clone(),
                    batches: StreamSession::from_dataset(&t.dataset, batch_size)
                        .map(|b| b.records)
                        .collect(),
                });
            }
            let batch_size = cell_tenants[0]
                .dataset
                .num_answers()
                .div_ceil(batches)
                .max(1);

            // One full replay of the cell through a fresh service;
            // deterministic in everything but wall clock. With a WAL
            // directory the same schedule additionally logs every batch
            // and converge and snapshots on cadence.
            let run_cell = |wal_dir: Option<&Path>| {
                let serve = CrowdServe::new(ServeConfig {
                    shards: sessions.min(8),
                    durability: wal_dir.map(durable_cfg),
                    ..ServeConfig::default()
                })
                .expect("valid config");
                let ids: Vec<_> = cell_tenants
                    .iter()
                    .map(|t| {
                        serve
                            .create_session(StreamConfig::new(
                                Method::Ds,
                                t.dataset.task_type(),
                                t.dataset.num_tasks(),
                                t.dataset.num_workers(),
                            ))
                            .expect("valid session")
                    })
                    .collect();
                let rounds = cell_tenants.iter().map(|t| t.batches.len()).max().unwrap();
                let mut answers_total = 0usize;
                let mut tick_seconds: Vec<f64> = Vec::with_capacity(rounds);
                let start = Instant::now();
                for round in 0..rounds {
                    for (k, t) in cell_tenants.iter().enumerate() {
                        if let Some(batch) = t.batches.get(round) {
                            serve.submit(ids[k], batch.clone()).expect("in capacity");
                        }
                    }
                    let tick_start = Instant::now();
                    let tick = serve.drain_tick();
                    tick_seconds.push(tick_start.elapsed().as_secs_f64());
                    answers_total += tick.answers_ingested;
                    assert_eq!(tick.shard_failures, 0, "shard drain failed");
                    assert!(tick.errors.is_empty(), "replay is valid: {:?}", tick.errors);
                }
                let seconds_total = start.elapsed().as_secs_f64();
                let accuracy_mean = cell_tenants
                    .iter()
                    .zip(&ids)
                    .map(|(t, &sid)| {
                        let snap = serve.truth(sid).expect("session alive");
                        let report = snap.report.as_ref().expect("converged");
                        accuracy(&t.dataset, &report.result.truths)
                    })
                    .sum::<f64>()
                    / sessions as f64;
                (seconds_total, tick_seconds, answers_total, accuracy_mean)
            };

            let push_row = |rows: &mut Vec<Row>,
                            mode: &'static str,
                            measured: (f64, Vec<f64>, usize, f64),
                            mixed: Option<MixedStats>| {
                let (seconds_total, tick_seconds, answers_total, accuracy_mean) = measured;
                let ticks = tick_seconds.len();
                let row = Row {
                    mode,
                    sessions,
                    batches,
                    batch_size,
                    answers_total,
                    ticks,
                    seconds_total,
                    seconds_per_tick_mean: if ticks == 0 {
                        0.0
                    } else {
                        tick_seconds.iter().sum::<f64>() / ticks as f64
                    },
                    seconds_per_tick_max: tick_seconds.iter().cloned().fold(0.0, f64::max),
                    throughput: answers_total as f64 / seconds_total.max(1e-12),
                    accuracy_mean,
                    mixed,
                };
                eprintln!(
                    "  {:<8} sessions={:>2} batches={:>3}: {:>9.1} answers/s, total {:>8.3} ms, \
                     accuracy {:.4}",
                    row.mode,
                    row.sessions,
                    row.batches,
                    row.throughput,
                    row.seconds_total * 1e3,
                    row.accuracy_mean,
                );
                rows.push(row);
                seconds_total
            };

            // Warm up once, then keep the fastest of `repeats` replays —
            // single measurements of a ~10ms cell are dominated by
            // cold-start noise, which is exactly what the regression gate
            // must not flake on.
            run_cell(None);
            // The mem measurement doubles as the observability A/B: each
            // repeat replays the cell twice, once with `crowd-obs`
            // recording on and once off, in alternating order so slow
            // environmental drift (CPU frequency, noisy neighbours) hits
            // both sides equally instead of biasing whichever side ran
            // last. Min per side, like every other timing in the file.
            // The off-side is not pushed as a row (the comparator's row
            // set is mode × grid); only the aggregate bound below gates
            // it.
            let mut mem: Option<(f64, Vec<f64>, usize, f64)> = None;
            let mut obs_off_seconds = f64::INFINITY;
            for i in 0..repeats {
                let order = if i % 2 == 0 {
                    [true, false]
                } else {
                    [false, true]
                };
                for on in order {
                    crowd_obs::set_enabled(on);
                    let measured = run_cell(None);
                    if on {
                        if mem.as_ref().is_none_or(|best| measured.0 < best.0) {
                            mem = Some(measured);
                        }
                    } else {
                        obs_off_seconds = obs_off_seconds.min(measured.0);
                    }
                }
            }
            crowd_obs::set_enabled(true);
            let mem_seconds = push_row(&mut rows, "mem", mem.expect("at least one repeat"), None);
            obs_on_total += mem_seconds;
            obs_off_total += obs_off_seconds;
            obs_ratio_max = obs_ratio_max.max(mem_seconds / obs_off_seconds.max(1e-12));
            eprintln!(
                "  obs-off  sessions={sessions:>2} batches={batches:>3}: total {:>8.3} ms \
                 (on/off ratio {:.3})",
                obs_off_seconds * 1e3,
                mem_seconds / obs_off_seconds.max(1e-12),
            );

            // WAL mode: a fresh log directory per replay (session ids and
            // file names restart from zero each time); the last replay's
            // directory is kept as the recovery mode's input.
            let wal_dir = |i: usize| wal_root.join(format!("cell-{sessions}x{batches}-{i}"));
            let fresh_dir = |i: usize| {
                let dir = wal_dir(i);
                let _ = std::fs::remove_dir_all(&dir);
                dir
            };
            run_cell(Some(&fresh_dir(0)));
            let wal = (1..=repeats)
                .map(|i| run_cell(Some(&fresh_dir(i))))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("at least one repeat");
            let wal_seconds = push_row(&mut rows, "wal", wal, None);
            let ratio = wal_seconds / mem_seconds.max(1e-12);
            wal_ratio_max = wal_ratio_max.max(ratio);
            // Same bound shape as the regression gate: relative threshold
            // plus the absolute noise floor for microsecond-scale cells.
            if wal_seconds > mem_seconds * 1.25 && wal_seconds - mem_seconds >= 5e-4 {
                wal_within_bound = false;
                eprintln!(
                    "  WARNING: wal mode exceeded the 25% bound over mem \
                     ({wal_seconds:.6}s vs {mem_seconds:.6}s)"
                );
            }

            // Recovery mode: rebuild every session of the cell from the
            // last WAL replay's directory. A clean shutdown leaves no torn
            // tail, so recovery is idempotent and can be re-timed.
            let kept = wal_dir(repeats);
            let recover_cell = || {
                let start = Instant::now();
                let (recovered, report) = CrowdServe::recover(ServeConfig {
                    shards: sessions.min(8),
                    durability: Some(durable_cfg(&kept)),
                    ..ServeConfig::default()
                })
                .expect("recovery succeeds");
                let seconds = start.elapsed().as_secs_f64();
                assert_eq!(report.sessions_recovered, sessions, "all sessions recover");
                assert_eq!(report.sessions_skipped, 0, "clean logs: none skipped");
                let sids = recovered.sessions();
                let accuracy_mean = cell_tenants
                    .iter()
                    .zip(&sids)
                    .map(|(t, &sid)| {
                        let snap = recovered.truth(sid).expect("session alive");
                        let report = snap
                            .report
                            .as_ref()
                            .expect("replayed past the last snapshot");
                        accuracy(&t.dataset, &report.result.truths)
                    })
                    .sum::<f64>()
                    / sessions as f64;
                (seconds, accuracy_mean)
            };
            recover_cell();
            let (rec_seconds, rec_accuracy) = (0..repeats)
                .map(|_| recover_cell())
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("at least one repeat");
            let answers_total = cell_tenants
                .iter()
                .map(|t| t.batches.iter().map(Vec::len).sum::<usize>())
                .sum();
            push_row(
                &mut rows,
                "recovery",
                (rec_seconds, Vec::new(), answers_total, rec_accuracy),
                None,
            );

            // Mixed mode: the same replay with READER_THREADS threads
            // hammering `TruthReader::snapshot` the whole time (busy
            // phase: converges in flight), then against the idle service
            // (idle phase: the wait-free bound's denominator). One writer
            // thread per session submits each round, like a real
            // multi-tenant frontend.
            let run_mixed = || {
                let serve = CrowdServe::new(ServeConfig {
                    shards: sessions.min(8),
                    ..ServeConfig::default()
                })
                .expect("valid config");
                let ids: Vec<_> = cell_tenants
                    .iter()
                    .map(|t| {
                        serve
                            .create_session(StreamConfig::new(
                                Method::Ds,
                                t.dataset.task_type(),
                                t.dataset.num_tasks(),
                                t.dataset.num_workers(),
                            ))
                            .expect("valid session")
                    })
                    .collect();
                let rounds = cell_tenants.iter().map(|t| t.batches.len()).max().unwrap();
                let stop = AtomicBool::new(false);
                let mut answers_total = 0usize;
                let mut tick_seconds: Vec<f64> = Vec::with_capacity(rounds);
                let (busy_elapsed, busy_reads, mut busy_samples) = std::thread::scope(|scope| {
                    let pollers: Vec<_> = (0..READER_THREADS)
                        .map(|_| {
                            // Each thread owns its reader clones (and so
                            // its own hazard slots) — no sharing.
                            let readers: Vec<TruthReader> = ids
                                .iter()
                                .map(|&sid| serve.reader(sid).expect("session alive"))
                                .collect();
                            let stop = &stop;
                            scope.spawn(move || poll_readers(&readers, stop, u64::MAX))
                        })
                        .collect();
                    let start = Instant::now();
                    for round in 0..rounds {
                        std::thread::scope(|writers| {
                            for (k, t) in cell_tenants.iter().enumerate() {
                                if let Some(batch) = t.batches.get(round) {
                                    let serve = &serve;
                                    let sid = ids[k];
                                    writers.spawn(move || {
                                        serve.submit(sid, batch.clone()).expect("in capacity")
                                    });
                                }
                            }
                        });
                        let tick_start = Instant::now();
                        let tick = serve.drain_tick();
                        tick_seconds.push(tick_start.elapsed().as_secs_f64());
                        answers_total += tick.answers_ingested;
                        assert_eq!(tick.shard_failures, 0, "shard drain failed");
                        assert!(tick.errors.is_empty(), "replay is valid: {:?}", tick.errors);
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    stop.store(true, Ordering::Relaxed);
                    let mut reads = 0u64;
                    let mut samples = Vec::new();
                    for p in pollers {
                        let (n, s) = p.join().expect("reader thread");
                        reads += n;
                        samples.extend(s);
                    }
                    (elapsed, reads, samples)
                });
                // Idle phase: same service and sessions, nothing writing.
                let never = AtomicBool::new(false);
                let mut idle_samples: Vec<f64> = std::thread::scope(|scope| {
                    let pollers: Vec<_> = (0..READER_THREADS)
                        .map(|_| {
                            let readers: Vec<TruthReader> = ids
                                .iter()
                                .map(|&sid| serve.reader(sid).expect("session alive"))
                                .collect();
                            let never = &never;
                            scope.spawn(move || {
                                poll_readers(&readers, never, IDLE_READS_PER_THREAD).1
                            })
                        })
                        .collect();
                    pollers
                        .into_iter()
                        .flat_map(|p| p.join().expect("reader thread"))
                        .collect()
                });
                let accuracy_mean = cell_tenants
                    .iter()
                    .zip(&ids)
                    .map(|(t, &sid)| {
                        let snap = serve.truth(sid).expect("session alive");
                        let report = snap.report.as_ref().expect("converged");
                        accuracy(&t.dataset, &report.result.truths)
                    })
                    .sum::<f64>()
                    / sessions as f64;
                let reads_per_sec = busy_reads as f64 / busy_elapsed.max(1e-12);
                let read_p99_seconds = percentile(&mut busy_samples, 0.99);
                let read_p99_seconds_idle = percentile(&mut idle_samples, 0.99);
                let stats = MixedStats {
                    reads_total: busy_reads,
                    reads_per_sec,
                    read_p50_seconds: percentile(&mut busy_samples, 0.50),
                    read_p99_seconds,
                    read_p50_seconds_idle: percentile(&mut idle_samples, 0.50),
                    read_p99_seconds_idle,
                    // Busy p99 within 10× of idle p99, with a 1ms absolute
                    // floor: on a saturated host a sampled read can
                    // straddle a scheduler preemption, which is not the
                    // read path's doing.
                    wait_free: read_p99_seconds <= (10.0 * read_p99_seconds_idle).max(1e-3),
                    throughput_ok: reads_per_sec >= 1e6,
                };
                (
                    (busy_elapsed, tick_seconds, answers_total, accuracy_mean),
                    stats,
                )
            };
            run_mixed(); // warm-up
            let (mixed_measured, mixed_stats) = (0..repeats)
                .map(|_| run_mixed())
                .min_by(|a, b| a.0 .0.total_cmp(&b.0 .0))
                .expect("at least one repeat");
            if !mixed_stats.wait_free {
                reads_wait_free = false;
                eprintln!(
                    "  WARNING: busy read p99 {:.6}s exceeded the wait-free bound \
                     (idle p99 {:.6}s)",
                    mixed_stats.read_p99_seconds, mixed_stats.read_p99_seconds_idle
                );
            }
            if !mixed_stats.throughput_ok {
                reads_throughput_ok = false;
                eprintln!(
                    "  WARNING: {:.0} reads/s under the 1e6 bound",
                    mixed_stats.reads_per_sec
                );
            }
            eprintln!(
                "  mixed    sessions={sessions:>2} batches={batches:>3}: {:>9.0} reads/s, \
                 read p99 {:>7.1} µs busy / {:>7.1} µs idle",
                mixed_stats.reads_per_sec,
                mixed_stats.read_p99_seconds * 1e6,
                mixed_stats.read_p99_seconds_idle * 1e6,
            );
            push_row(&mut rows, "mixed", mixed_measured, Some(mixed_stats));
        }
    }

    let _ = std::fs::remove_dir_all(&wal_root);

    // A small *unmeasured* sharded side session so the shard-substrate
    // series (`core.shard.*`) are present in the embedded obs snapshot —
    // `crowd-obs-check --expect-serve` requires them. Two ticks: the
    // second batch dirties already-built shard ranges, exercising the
    // warm-resume rebuild counter. Runs outside every timed cell, so the
    // measured rows are untouched.
    {
        let serve = CrowdServe::new(ServeConfig::default()).expect("valid config");
        let t = &tenants[0];
        let sid = serve
            .create_session(
                StreamConfig::new(
                    Method::Ds,
                    t.dataset.task_type(),
                    t.dataset.num_tasks(),
                    t.dataset.num_workers(),
                )
                .with_shards(4),
            )
            .expect("valid session");
        let records = t.dataset.records();
        let split = records.len() / 2;
        serve
            .submit(sid, records[..split].to_vec())
            .expect("in capacity");
        serve.drain_tick();
        serve
            .submit(sid, records[split..].to_vec())
            .expect("in capacity");
        serve.drain_tick();
    }

    // ≤ 3% aggregate overhead, with an absolute floor so a sub-millisecond
    // wobble on a fast machine cannot fail the gate (same shape as the
    // wal/mem bound above).
    let obs_within_bound =
        !(obs_on_total > obs_off_total * 1.03 && obs_on_total - obs_off_total >= 1e-3);
    if !obs_within_bound {
        eprintln!(
            "  WARNING: metrics-on mem sweep exceeded the 3% bound over metrics-off \
             ({obs_on_total:.6}s vs {obs_off_total:.6}s)"
        );
    }

    let total_seconds = sweep_start.elapsed().as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/serve/v1\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"dataset\": \"{}\",", dataset_id.name());
    let _ = writeln!(json, "  \"method\": \"D&S\",");
    let _ = writeln!(json, "  \"total_seconds\": {total_seconds:.6},");
    let _ = writeln!(json, "  \"wal_overhead_within_bound\": {wal_within_bound},");
    let _ = writeln!(json, "  \"wal_overhead_max_ratio\": {wal_ratio_max:.4},");
    let _ = writeln!(
        json,
        "  \"reads_wait_free_within_bound\": {reads_wait_free},"
    );
    let _ = writeln!(
        json,
        "  \"read_throughput_within_bound\": {reads_throughput_ok},"
    );
    let _ = writeln!(json, "  \"obs_overhead_within_bound\": {obs_within_bound},");
    let obs_ratio_agg = obs_on_total / obs_off_total.max(1e-12);
    let _ = writeln!(json, "  \"obs_overhead_ratio\": {obs_ratio_agg:.4},");
    let _ = writeln!(json, "  \"obs_overhead_max_ratio\": {obs_ratio_max:.4},");
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"sessions\": {}, \"batches\": {}, \"batch_size\": {}, \
             \"answers_total\": {}, \
             \"ticks\": {}, \"seconds_total\": {:.6}, \"seconds_per_tick_mean\": {:.6}, \
             \"seconds_per_tick_max\": {:.6}, \"throughput_answers_per_sec\": {:.1}, \
             \"accuracy_mean\": {:.6}",
            r.mode,
            r.sessions,
            r.batches,
            r.batch_size,
            r.answers_total,
            r.ticks,
            r.seconds_total,
            r.seconds_per_tick_mean,
            r.seconds_per_tick_max,
            r.throughput,
            r.accuracy_mean,
        );
        if let Some(m) = &r.mixed {
            let _ = write!(
                json,
                ", \"readers\": {READER_THREADS}, \"reads_total\": {}, \
                 \"reads_per_sec\": {:.1}, \"read_p50_seconds\": {:.9}, \
                 \"read_p99_seconds\": {:.9}, \"read_p50_seconds_idle\": {:.9}, \
                 \"read_p99_seconds_idle\": {:.9}, \"reads_wait_free_within_bound\": {}, \
                 \"read_throughput_within_bound\": {}",
                m.reads_total,
                m.reads_per_sec,
                m.read_p50_seconds,
                m.read_p99_seconds,
                m.read_p50_seconds_idle,
                m.read_p99_seconds_idle,
                m.wait_free,
                m.throughput_ok,
            );
        }
        let _ = writeln!(json, "}}{comma}");
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write serve bench output");
    eprintln!(
        "crowd-serve-bench: wrote {} rows to {out_path} in {total_seconds:.1}s \
         (max wal/mem wall-time ratio {wal_ratio_max:.3})",
        rows.len()
    );
}
