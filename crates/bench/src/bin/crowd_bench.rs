//! `crowd-bench` — the machine-readable Table-6 timing sweep.
//!
//! Runs every method of the benchmark on (scaled) versions of all five
//! datasets, times each inference run, and writes a JSON trajectory file
//! so this and every future performance PR can be compared on the same
//! axis.
//!
//! Configuration (environment variables, all optional):
//!
//! - `CROWD_BENCH_SCALE`   — dataset scale in `(0, 1]` (default `0.1`);
//!   CI smoke passes use `0.02`.
//! - `CROWD_BENCH_REPEATS` — timed repeats per (method, dataset) cell
//!   (default `3`; the minimum is reported as the headline number).
//! - `CROWD_BENCH_OUT`     — output path (default `BENCH_table6.json`).
//! - `CROWD_BENCH_METHODS` — comma-separated method-name filter
//!   (default: all seventeen).
//!
//! Usage: `cargo run --release -p crowd-bench --bin crowd-bench`

use std::fmt::Write as _;
use std::time::Instant;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;

struct Cell {
    dataset: &'static str,
    method: &'static str,
    seconds_min: f64,
    seconds_mean: f64,
    iterations: usize,
    converged: bool,
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        // Empty means "unset", not a parse error.
        Ok(v) if v.trim().is_empty() => default,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("WARNING: invalid {name} value {v:?}: not a non-negative integer; using the default of {default}");
            default
        }),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let scale = crowd_bench::env_scale(0.1);
    let repeats = env_usize("CROWD_BENCH_REPEATS", 3).max(1);
    let out_path =
        std::env::var("CROWD_BENCH_OUT").unwrap_or_else(|_| "BENCH_table6.json".to_string());
    let method_filter: Option<Vec<Method>> = std::env::var("CROWD_BENCH_METHODS").ok().map(|v| {
        v.split(',')
            .filter_map(|name| {
                let parsed = Method::parse(name.trim());
                if parsed.is_none() {
                    eprintln!("warning: unknown method name '{}' ignored", name.trim());
                }
                parsed
            })
            .collect()
    });

    eprintln!("crowd-bench: scale={scale} repeats={repeats} out={out_path}");

    let sweep_start = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    // The iteration cap behind every row's `converged` flag — recorded in
    // the artifact so "hit the cap" rows (GLAD at scale 0.1, see the
    // method docs) are interpretable, and so the regression gate's
    // converged-flip rule is auditable against a known budget.
    let mut max_iterations = 0usize;

    for dataset_id in PaperDataset::ALL {
        let dataset = dataset_id.generate(scale, 7);
        eprintln!(
            "  {} (n={}, |W|={}, |V|={})",
            dataset_id.name(),
            dataset.num_tasks(),
            dataset.num_workers(),
            dataset.num_answers()
        );
        for method in Method::ALL {
            if let Some(filter) = &method_filter {
                if !filter.contains(&method) {
                    continue;
                }
            }
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            let opts = InferenceOptions::seeded(7);
            max_iterations = max_iterations.max(opts.max_iterations);
            // One untimed warm-up run settles page faults and branch caches.
            let warm = instance.infer(&dataset, &opts).expect("method runs");
            let mut times = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let start = Instant::now();
                let r = instance.infer(&dataset, &opts).expect("method runs");
                let dt = start.elapsed().as_secs_f64();
                std::hint::black_box(r.truths.len());
                times.push(dt);
            }
            let min = times.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            eprintln!(
                "    {:<8} {:>10.4} ms  ({} iters)",
                method.name(),
                min * 1e3,
                warm.iterations
            );
            cells.push(Cell {
                dataset: dataset_id.name(),
                method: method.name(),
                seconds_min: min,
                seconds_mean: mean,
                iterations: warm.iterations,
                converged: warm.converged,
            });
        }
    }

    let total_seconds = sweep_start.elapsed().as_secs_f64();
    let rss = peak_rss_kb();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"crowd-bench/table6/v1\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"max_iterations\": {max_iterations},");
    let _ = writeln!(json, "  \"total_seconds\": {total_seconds:.6},");
    match rss {
        Some(kb) => {
            let _ = writeln!(json, "  \"peak_rss_kb\": {kb},");
        }
        None => {
            let _ = writeln!(json, "  \"peak_rss_kb\": null,");
        }
    }
    let _ = writeln!(json, "  \"obs\": {},", crowd_obs::snapshot().to_json());
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"method\": \"{}\", \"seconds_min\": {:.6}, \"seconds_mean\": {:.6}, \"iterations\": {}, \"converged\": {}}}{}",
            json_escape(c.dataset),
            json_escape(c.method),
            c.seconds_min,
            c.seconds_mean,
            c.iterations,
            c.converged,
            comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "crowd-bench: wrote {} cells to {out_path} in {total_seconds:.1}s (peak RSS: {})",
        cells.len(),
        rss.map(|kb| format!("{kb} kB"))
            .unwrap_or_else(|| "unknown".into())
    );
}
