//! The running-time column of Table 6: wall-clock inference time of every
//! method on (scaled) versions of all five datasets.
//!
//! The paper's absolute numbers come from Python on a 2.4 GHz server; the
//! *relative tiers* are algorithmic and must survive the port:
//! direct computation (MV/Mean/Median) ≪ light EM (ZC/D&S/LFC/CATD/PM/
//! LFC_N) < sampling & message passing (BCC/CBCC/KOS/VI-MF/Multi) <
//! gradient-heavy methods (GLAD/Minimax/VI-BP).
//!
//! Run with: `cargo bench -p crowd-bench --bench table6_time`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;

/// Scale for the benchmark instances when `CROWD_BENCH_SCALE` is unset.
/// Keeps the full sweep (17 methods × 5 datasets) in minutes; the time
/// *ratios* between methods are stable across scales (see the
/// `redundancy_scaling` bench for the growth curves).
const DEFAULT_SCALE: f64 = 0.1;

fn bench_table6(c: &mut Criterion) {
    let scale = crowd_bench::env_scale(DEFAULT_SCALE);
    for dataset_id in PaperDataset::ALL {
        let dataset = dataset_id.generate(scale, 7);
        let mut group = c.benchmark_group(format!("table6/{}", dataset_id.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(2));
        for method in Method::ALL {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(method.name()),
                &dataset,
                |b, d| {
                    let opts = InferenceOptions::seeded(7);
                    b.iter(|| {
                        let r = instance.infer(black_box(d), &opts).expect("method runs");
                        black_box(r.truths.len())
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
