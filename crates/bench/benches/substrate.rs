//! Micro-benchmarks of the numerical substrate the methods sit on:
//! chi-squared quantiles (CATD's per-worker coefficient), Dirichlet/Gamma
//! sampling (the Gibbs samplers' inner loop), digamma (VI's expected-log
//! weights), and the redundancy sub-sampler (run 30× per sweep point in
//! Figures 4–6).
//!
//! Run with: `cargo bench -p crowd-bench --bench substrate`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crowd_data::datasets::PaperDataset;
use crowd_data::subsample_redundancy;
use crowd_stats::{chi2_quantile_975, digamma, sample_dirichlet, sample_gamma};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("special");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("chi2_quantile_975/k=20", |b| {
        b.iter(|| black_box(chi2_quantile_975(black_box(20))))
    });
    group.bench_function("chi2_quantile_975/k=2000", |b| {
        b.iter(|| black_box(chi2_quantile_975(black_box(2000))))
    });
    group.bench_function("digamma", |b| b.iter(|| black_box(digamma(black_box(3.7)))));
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("gamma/shape=2", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(sample_gamma(&mut rng, 2.0, 1.0)))
    });
    group.bench_function("dirichlet/4", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let alpha = [2.0, 1.0, 1.0, 1.0];
        b.iter(|| black_box(sample_dirichlet(&mut rng, &alpha)))
    });
    group.finish();
}

fn bench_subsample(c: &mut Criterion) {
    let dataset = PaperDataset::SRel.generate(0.2, 7);
    let mut group = c.benchmark_group("subsample");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for r in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(subsample_redundancy(&dataset, r, 9).num_answers()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_special_functions,
    bench_sampling,
    bench_subsample
);
criterion_main!(benches);
