//! Scaling behaviour behind Figures 4–6: how inference time grows with
//! data redundancy `r` and with dataset size.
//!
//! Two sweeps:
//!
//! - `redundancy/*` — fix the dataset, vary `r` (the x-axis of the
//!   paper's figures); iterative methods scale linearly in `|V| = r·n`.
//! - `tasks/*` — fix redundancy, vary the task count (the ablation for
//!   the survey's "large in task size" dataset-selection criterion).
//!
//! Run with: `cargo bench -p crowd-bench --bench redundancy_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::subsample_redundancy;

fn bench_redundancy(c: &mut Criterion) {
    let dataset = PaperDataset::DPosSent.generate(0.3, 7);
    let mut group = c.benchmark_group("redundancy/D_PosSent");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for r in [1usize, 5, 10, 20] {
        let sub = subsample_redundancy(&dataset, r, 11);
        group.throughput(Throughput::Elements(sub.num_answers() as u64));
        for method in [Method::Mv, Method::Ds, Method::Zc] {
            let instance = method.build();
            group.bench_with_input(BenchmarkId::new(method.name(), r), &sub, |b, d| {
                let opts = InferenceOptions::seeded(7);
                b.iter(|| black_box(instance.infer(black_box(d), &opts).unwrap().iterations));
            });
        }
    }
    group.finish();
}

fn bench_task_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasks/D_Product");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in [0.05, 0.1, 0.2, 0.4] {
        let dataset = PaperDataset::DProduct.generate(scale, 7);
        group.throughput(Throughput::Elements(dataset.num_answers() as u64));
        for method in [Method::Ds, Method::Pm] {
            let instance = method.build();
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.num_tasks()),
                &dataset,
                |b, d| {
                    let opts = InferenceOptions::seeded(7);
                    b.iter(|| black_box(instance.infer(black_box(d), &opts).unwrap().iterations));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_redundancy, bench_task_count);
criterion_main!(benches);
