//! The async sweep runner — budgeted, observable, cancellable execution
//! of experiment cell grids.
//!
//! The paper's headline experiments are **grids**: (dataset × repeat ×
//! redundancy) cells for Figures 4–6, (method × dataset) cells for
//! Table 6. Until this module they fanned out through the blocking
//! [`crowd_core::exec::parallel_map`] barrier: submit everything, go
//! dark, get every result at once. [`SweepRunner`] replaces that with
//! the serve layer's ingest/drain shape on the same substrate —
//! [`crowd_core::exec::WorkerPool::submit_with_result`] /
//! [`crowd_core::exec::TypedTicket`]:
//!
//! - **Budgeted concurrency** — the runner owns a [`WorkerPool`] capped
//!   at its concurrency budget; all cells are queued up front and at
//!   most `budget` run at any moment.
//! - **Progress streaming** — every cell completion (success, panic, or
//!   cancellation) is reported through a caller-supplied callback in
//!   *completion order*, with running completed/failed/cancelled
//!   counts, while the grid is still in flight.
//! - **Cooperative cancellation** — a [`CancelToken`] flips an atomic
//!   flag; cells not yet started observe it and finish as
//!   [`CellStatus::Cancelled`] without running their payload.
//! - **Cell panic isolation** — a panic inside one cell is delivered as
//!   [`CellOutcome::Failed`] with the payload message; sibling cells
//!   and the submitting thread are untouched (the same isolation the
//!   multi-session serve layer is built on).
//!
//! Determinism: cells are pure functions of their inputs and results
//! are collected **in grid order**, so aggregation over a
//! [`SweepOutcome`] is bit-identical to running the same cells in a
//! sequential loop — pinned by `tests/sweep_runner.rs` against the
//! blocking reference sweeps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

use crowd_core::exec::{JobError, TypedTicket, WorkerPool};

fn obs_cell_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("exp.sweep.cell_seconds"))
}

fn obs_cells() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("exp.sweep.cells_total"))
}

fn obs_panics() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("exp.sweep.cell_panics_total"))
}

fn obs_cancelled() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("exp.sweep.cells_cancelled_total"))
}

/// Cooperative cancellation flag shared between a sweep's driver and its
/// in-flight cells. Cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation: cells that have not started yet will be
    /// skipped (already-running cells finish — cancellation is
    /// cooperative, not preemptive).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One cell of a sweep grid: a display label (progress events carry it)
/// plus the work itself.
pub struct SweepCell<T> {
    /// Human-readable cell identity, e.g. `"rep 2 r=5"` or `"DS×D_Product"`.
    pub label: String,
    /// The cell computation. Must be a pure function of its captures for
    /// the runner's determinism guarantee to hold.
    pub job: Box<dyn FnOnce() -> T + Send + 'static>,
}

impl<T> SweepCell<T> {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, job: impl FnOnce() -> T + Send + 'static) -> Self {
        Self {
            label: label.into(),
            job: Box::new(job),
        }
    }
}

/// How one cell ended, as reported in progress events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell ran to completion.
    Completed,
    /// The cell panicked (the outcome carries the message).
    Failed,
    /// The cell was skipped by cancellation.
    Cancelled,
}

/// One cell's final outcome, in grid order.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell's value.
    Completed(T),
    /// The cell panicked; best-effort payload message.
    Failed(String),
    /// The cell never ran (cancelled token or pool shutdown).
    Cancelled,
}

impl<T> CellOutcome<T> {
    /// The value, if the cell completed.
    pub fn ok(self) -> Option<T> {
        match self {
            Self::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// The status this outcome corresponds to.
    pub fn status(&self) -> CellStatus {
        match self {
            Self::Completed(_) => CellStatus::Completed,
            Self::Failed(_) => CellStatus::Failed,
            Self::Cancelled => CellStatus::Cancelled,
        }
    }
}

/// A progress event, delivered on the driver thread in **completion
/// order** while the grid is still running.
#[derive(Debug, Clone)]
pub struct SweepProgress {
    /// Grid index of the cell this event reports.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// Cells finished so far (this one included).
    pub done: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Running count of completed cells.
    pub completed: usize,
    /// Running count of panicked cells.
    pub failed: usize,
    /// Running count of cancelled cells.
    pub cancelled: usize,
}

/// The finished grid: per-cell outcomes in grid order plus final counts.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Per-cell outcomes, indexed exactly like the submitted grid.
    pub cells: Vec<CellOutcome<T>>,
    /// Cells that completed.
    pub completed: usize,
    /// Cells that panicked.
    pub failed: usize,
    /// Cells skipped by cancellation.
    pub cancelled: usize,
}

/// What a cell reports over the progress channel. Kept apart from
/// [`CellStatus`] only to document that the panic *message* travels via
/// the ticket, not the channel.
type CellNote = (usize, CellStatus);

/// Bumps `exp.sweep.cell_panics_total` if dropped during unwind; the
/// happy path defuses it with `mem::forget`.
struct CountPanicOnDrop;

impl Drop for CountPanicOnDrop {
    fn drop(&mut self) {
        obs_panics().inc();
    }
}

/// Sends exactly one note per started cell — including during a panic
/// unwind, which is what makes the driver's `recv` loop total.
struct NoteOnDrop {
    tx: mpsc::Sender<CellNote>,
    index: usize,
    status: CellStatus,
}

impl Drop for NoteOnDrop {
    fn drop(&mut self) {
        // The receiver only disappears once the driver has already
        // collected every ticket, so a send error is unreachable in
        // practice; ignore it rather than panic during unwind.
        let _ = self.tx.send((self.index, self.status));
    }
}

/// The non-blocking sweep scheduler. Owns a worker pool capped at the
/// concurrency budget; reusable across grids (threads persist between
/// [`SweepRunner::run`] calls, so a figure's datasets share one pool).
pub struct SweepRunner {
    pool: WorkerPool,
    budget: usize,
}

impl SweepRunner {
    /// A runner that executes at most `budget` cells concurrently
    /// (clamped to at least 1).
    pub fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        Self {
            pool: WorkerPool::new(budget),
            budget,
        }
    }

    /// The concurrency budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Run a grid of cells under the budget, streaming one
    /// [`SweepProgress`] event per cell (in completion order, on the
    /// calling thread) and honouring `token` between cells. Returns
    /// outcomes in grid order.
    pub fn run<T: Send + 'static>(
        &self,
        cells: Vec<SweepCell<T>>,
        token: &CancelToken,
        mut on_progress: impl FnMut(&SweepProgress),
    ) -> SweepOutcome<T> {
        let total = cells.len();
        let mut labels: Vec<String> = Vec::with_capacity(total);
        let (tx, rx) = mpsc::channel::<CellNote>();

        // Queue every cell; the pool spawns at most `budget` workers, so
        // the queue itself is the scheduler.
        let tickets: Vec<TypedTicket<Option<T>>> = cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| {
                labels.push(cell.label);
                let job = cell.job;
                let token = token.clone();
                let tx = tx.clone();
                self.pool.submit_with_result(move || {
                    // Default note Failed: only a panic skips the explicit
                    // status assignments below, and the note is sent from
                    // this guard's Drop even then.
                    let mut note = NoteOnDrop {
                        tx,
                        index,
                        status: CellStatus::Failed,
                    };
                    if token.is_cancelled() {
                        note.status = CellStatus::Cancelled;
                        obs_cancelled().inc();
                        return None;
                    }
                    // The timer's Drop records even through a panic
                    // unwind, so `exp.sweep.cell_seconds` covers panicked
                    // cells too; the panic itself is counted separately
                    // by the guard below.
                    let timer = obs_cell_seconds().start_timer();
                    let panic_guard = CountPanicOnDrop;
                    let value = job();
                    std::mem::forget(panic_guard);
                    let dt = timer.stop();
                    obs_cells().inc();
                    crowd_obs::journal::record(crowd_obs::SpanKind::SweepCell, index as u64, dt);
                    note.status = CellStatus::Completed;
                    Some(value)
                })
            })
            .collect();
        drop(tx);

        // Pump progress in completion order while the grid runs. Every
        // started cell sends exactly one note (NoteOnDrop), and every
        // queued cell starts because the pool outlives this loop.
        let (mut completed, mut failed, mut cancelled) = (0usize, 0usize, 0usize);
        for done in 1..=total {
            let (index, status) = rx.recv().expect("one note per cell");
            match status {
                CellStatus::Completed => completed += 1,
                CellStatus::Failed => failed += 1,
                CellStatus::Cancelled => cancelled += 1,
            }
            on_progress(&SweepProgress {
                index,
                label: labels[index].clone(),
                status,
                done,
                total,
                completed,
                failed,
                cancelled,
            });
        }

        // Collect outcomes in grid order; panic payloads arrive through
        // the typed tickets.
        let cells = tickets
            .into_iter()
            .map(|t| match t.join() {
                Ok(Some(value)) => CellOutcome::Completed(value),
                Ok(None) => CellOutcome::Cancelled,
                Err(e @ JobError::Panicked(_)) => CellOutcome::Failed(e.message()),
                Err(JobError::Cancelled) => CellOutcome::Cancelled,
            })
            .collect();
        SweepOutcome {
            cells,
            completed,
            failed,
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outcomes_in_grid_order_events_in_completion_order() {
        let runner = SweepRunner::new(3);
        let cells: Vec<SweepCell<usize>> = (0..24usize)
            .map(|i| SweepCell::new(format!("cell {i}"), move || i * 10))
            .collect();
        let mut events = Vec::new();
        let out = runner.run(cells, &CancelToken::new(), |p| {
            events.push((p.index, p.status, p.done))
        });
        assert_eq!(out.completed, 24);
        assert_eq!(out.failed, 0);
        assert_eq!(out.cancelled, 0);
        // Grid order regardless of completion order.
        let values: Vec<usize> = out.cells.into_iter().map(|c| c.ok().unwrap()).collect();
        assert_eq!(values, (0..24usize).map(|i| i * 10).collect::<Vec<_>>());
        // One event per cell, `done` strictly increasing, all indices seen.
        assert_eq!(events.len(), 24);
        assert!(events.iter().enumerate().all(|(k, e)| e.2 == k + 1));
        let mut seen: Vec<usize> = events.iter().map(|e| e.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn budget_caps_in_flight_cells() {
        let budget = 2;
        let runner = SweepRunner::new(budget);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let cells: Vec<SweepCell<()>> = (0..16)
            .map(|i| {
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                SweepCell::new(format!("{i}"), move || {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let out = runner.run(cells, &CancelToken::new(), |_| {});
        assert_eq!(out.completed, 16);
        assert!(
            peak.load(Ordering::SeqCst) <= budget,
            "budget {budget} exceeded: peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn runner_is_reusable_across_grids() {
        let runner = SweepRunner::new(2);
        for round in 0..3 {
            let cells: Vec<SweepCell<usize>> = (0..8usize)
                .map(|i| SweepCell::new("c", move || i + round))
                .collect();
            let out = runner.run(cells, &CancelToken::new(), |_| {});
            assert_eq!(out.completed, 8);
        }
    }

    #[test]
    fn empty_grid_is_a_noop() {
        let runner = SweepRunner::new(4);
        let out = runner.run(Vec::<SweepCell<u8>>::new(), &CancelToken::new(), |_| {
            panic!("no events expected")
        });
        assert!(out.cells.is_empty());
        assert_eq!(out.completed + out.failed + out.cancelled, 0);
    }
}
