//! Multi-tenant replay — the serving-shaped scenario over the paper's
//! Table-6 datasets, on `crowd-serve`.
//!
//! Every categorical Table-6 dataset becomes one **tenant**: an
//! independent collection run replayed as a live answer stream into its
//! own session of a shared [`CrowdServe`] service. Rounds interleave the
//! tenants (each submits its next batch, then one drain tick re-converges
//! every dirty session on the sharded worker pool), which is exactly the
//! mixed-tenant load the ROADMAP's service milestone describes: big and
//! small universes, different convergence costs, one budget.
//!
//! The scenario records, per tenant and per round, the accuracy of the
//! served (warm, possibly budget-sliced) estimates against ground truth,
//! plus the service-level tick telemetry — and finishes by evicting every
//! session gracefully.

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{collect, AnswerRecord, AssignmentStrategy, DataError, Dataset, StreamSession};
use crowd_metrics::accuracy;
use crowd_serve::{CrowdServe, ServeConfig, ServeError, SessionId, TruthReader};
use crowd_stream::StreamConfig;

use crate::runner::{CancelToken, CellOutcome, SweepCell, SweepRunner};
use crate::ExpConfig;

/// One tenant's state of play after one round.
#[derive(Debug, Clone)]
pub struct TenantPoint {
    /// 0-based round index.
    pub round: usize,
    /// Answers the tenant's session has absorbed after this round.
    pub answers_seen: usize,
    /// Accuracy of the latest served estimates against ground truth.
    pub accuracy: f64,
    /// Whether the latest converge actually met the tolerance (false
    /// while an iteration budget slices the tenant's convergence across
    /// ticks).
    pub converged: bool,
}

/// One tenant's full trajectory.
#[derive(Debug, Clone)]
pub struct TenantCurve {
    /// The tenant's dataset name (Table 6).
    pub dataset: &'static str,
    /// Accuracy per round.
    pub points: Vec<TenantPoint>,
    /// Total answers replayed.
    pub answers_total: usize,
    /// Warm converges the session ran over the whole replay.
    pub converges: usize,
}

/// Service-level telemetry for one round's drain tick.
#[derive(Debug, Clone)]
pub struct TickPoint {
    /// 0-based round index.
    pub round: usize,
    /// Answers ingested across all tenants this tick.
    pub answers_ingested: usize,
    /// Sessions that converged / ran out of budget this tick.
    pub sessions_converged: usize,
    /// Sessions whose iteration budget expired this tick.
    pub sessions_budget_exhausted: usize,
    /// Wall-clock seconds of the tick.
    pub seconds: f64,
}

/// The full multi-tenant replay result.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Per-tenant accuracy trajectories, in `PaperDataset::ALL` order.
    pub tenants: Vec<TenantCurve>,
    /// Per-round service telemetry.
    pub ticks: Vec<TickPoint>,
}

/// Errors of the multi-tenant replay.
#[derive(Debug)]
pub enum MultiTenantError {
    /// The collection simulation rejected a configuration.
    Collection(DataError),
    /// The service rejected a session, batch, or read.
    Serve(ServeError),
    /// A tenant's setup cell was lost on the sweep runner (panic or
    /// cancellation); the payload is the runner's cell message.
    Cell(String),
}

impl std::fmt::Display for MultiTenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Collection(e) => write!(f, "collection failed: {e}"),
            Self::Serve(e) => write!(f, "service failed: {e}"),
            Self::Cell(msg) => write!(f, "tenant setup lost: {msg}"),
        }
    }
}

impl std::error::Error for MultiTenantError {}

impl From<ServeError> for MultiTenantError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

/// Replay every categorical Table-6 dataset as one tenant of a shared
/// service, `batches` interleaved rounds each, re-converging `method`
/// per tick under `tick_iteration_budget` (use `usize::MAX` for
/// unbudgeted ticks).
pub fn multi_tenant_replay(
    method: Method,
    batches: usize,
    tick_iteration_budget: usize,
    config: &ExpConfig,
) -> Result<MultiTenantReport, MultiTenantError> {
    struct Tenant {
        name: &'static str,
        dataset: Dataset,
        batches: Vec<Vec<AnswerRecord>>,
        session: SessionId,
        reader: TruthReader,
    }

    let serve = CrowdServe::new(ServeConfig {
        shards: config.threads.clamp(1, 8),
        tick_iteration_budget,
        ..ServeConfig::default()
    })?;

    // Tenant replay sources are independent simulations — build them
    // concurrently on the sweep runner (one cell per tenant), then create
    // the sessions serially in dataset order so session-id assignment
    // (and thus shard pinning) stays deterministic.
    struct TenantSeed {
        name: &'static str,
        dataset: Dataset,
        batches: Vec<Vec<AnswerRecord>>,
    }
    let cells: Vec<SweepCell<Result<TenantSeed, DataError>>> = PaperDataset::ALL
        .into_iter()
        .enumerate()
        .filter(|(_, id)| id.task_type().is_categorical())
        .map(|(i, dataset_id)| {
            let config = *config;
            SweepCell::new(dataset_id.name(), move || {
                let sim_cfg = dataset_id.config(config.scale);
                let budget = sim_cfg.num_tasks * sim_cfg.redundancy.max(1);
                let run = collect(
                    &sim_cfg,
                    AssignmentStrategy::Uniform,
                    budget,
                    config.seed + i as u64,
                )?;
                let dataset = run.dataset;
                let batch_size = dataset.num_answers().div_ceil(batches.max(1)).max(1);
                Ok(TenantSeed {
                    name: dataset_id.name(),
                    batches: StreamSession::from_dataset(&dataset, batch_size)
                        .map(|b| b.records)
                        .collect(),
                    dataset,
                })
            })
        })
        .collect();
    let runner = SweepRunner::new(config.threads);
    let seeds = runner.run(cells, &CancelToken::new(), |_| {});

    let mut tenants: Vec<Tenant> = Vec::new();
    for cell in seeds.cells {
        let seed = match cell {
            CellOutcome::Completed(r) => r.map_err(MultiTenantError::Collection)?,
            CellOutcome::Failed(msg) => return Err(MultiTenantError::Cell(msg)),
            CellOutcome::Cancelled => return Err(MultiTenantError::Cell("cancelled".into())),
        };
        let session = serve.create_session(StreamConfig::new(
            method,
            seed.dataset.task_type(),
            seed.dataset.num_tasks(),
            seed.dataset.num_workers(),
        ))?;
        let reader = serve.reader(session)?;
        tenants.push(Tenant {
            name: seed.name,
            batches: seed.batches,
            dataset: seed.dataset,
            session,
            reader,
        });
    }

    let mut curves: Vec<TenantCurve> = tenants
        .iter()
        .map(|t| TenantCurve {
            dataset: t.name,
            points: Vec::new(),
            answers_total: 0,
            converges: 0,
        })
        .collect();
    let mut ticks: Vec<TickPoint> = Vec::new();

    // Interleaved rounds, plus trailing ticks until every budget-sliced
    // tenant has fully converged.
    let rounds = tenants.iter().map(|t| t.batches.len()).max().unwrap_or(0);
    let mut round = 0usize;
    loop {
        let mut submitted = false;
        for t in &tenants {
            if let Some(batch) = t.batches.get(round) {
                serve.submit(t.session, batch.clone())?;
                submitted = true;
            }
        }
        // The per-tenant reader handles answer from the published truth
        // snapshots — no engine lock, no serve call at all.
        let dirty = tenants
            .iter()
            .any(|t| t.reader.snapshot().stats.needs_converge);
        if round >= rounds && !submitted && !dirty {
            break;
        }
        let start = std::time::Instant::now();
        let tick = serve.drain_tick();
        ticks.push(TickPoint {
            round,
            answers_ingested: tick.answers_ingested,
            sessions_converged: tick.sessions_converged,
            sessions_budget_exhausted: tick.sessions_budget_exhausted,
            seconds: start.elapsed().as_secs_f64(),
        });
        for (t, curve) in tenants.iter().zip(curves.iter_mut()) {
            // One snapshot carries both the counters and the report, so
            // answers_seen and accuracy always describe the same epoch.
            let snap = t.reader.snapshot();
            if let Some(report) = &snap.report {
                curve.points.push(TenantPoint {
                    round,
                    answers_seen: snap.stats.answers_seen,
                    accuracy: accuracy(&t.dataset, &report.result.truths),
                    converged: report.result.converged,
                });
            }
        }
        round += 1;
        if round > rounds + 1000 {
            break; // runaway guard; the budget property tests pin real convergence
        }
    }

    for (t, curve) in tenants.iter().zip(curves.iter_mut()) {
        let evicted = serve.evict(t.session)?;
        curve.answers_total = evicted.answers_seen;
        curve.converges = evicted.converges;
    }

    Ok(MultiTenantReport {
        tenants: curves,
        ticks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_stream::{ConvergeBudget, StreamEngine};

    fn quick_config() -> ExpConfig {
        ExpConfig {
            scale: 0.05,
            repeats: 1,
            seed: 11,
            threads: 4,
        }
    }

    #[test]
    fn replays_all_categorical_tenants_and_quality_rises() {
        let report = multi_tenant_replay(Method::Ds, 5, usize::MAX, &quick_config()).expect("runs");
        // The four categorical Table-6 datasets become four tenants.
        assert_eq!(report.tenants.len(), 4);
        assert_eq!(report.ticks.len(), 5);
        for curve in &report.tenants {
            assert_eq!(curve.points.len(), 5, "{}", curve.dataset);
            assert!(curve.answers_total > 0);
            assert_eq!(curve.converges, 5);
            let first = curve.points.first().unwrap();
            let last = curve.points.last().unwrap();
            assert_eq!(last.answers_seen, curve.answers_total);
            assert!(last.converged);
            // Quality must not fall along the stream on the
            // decision-making tenants; the multi-choice S_* warm paths
            // are known to trail their cold baselines mid-stream (see
            // BENCH_stream.json), so only structure is asserted there.
            if curve.dataset.starts_with("D_") {
                assert!(
                    last.accuracy >= first.accuracy - 0.05,
                    "{}: accuracy fell {} → {}",
                    curve.dataset,
                    first.accuracy,
                    last.accuracy
                );
            }
        }
        let ingested: usize = report.ticks.iter().map(|t| t.answers_ingested).sum();
        let total: usize = report.tenants.iter().map(|t| t.answers_total).sum();
        assert_eq!(ingested, total);
    }

    #[test]
    fn budgeted_ticks_slice_convergence_but_finish_at_the_same_labels() {
        let cfg = quick_config();
        let budgeted = multi_tenant_replay(Method::Ds, 3, 2, &cfg).expect("runs");
        // The tiny budget forces extra ticks beyond the 3 submission
        // rounds...
        assert!(budgeted.ticks.len() > 3);
        assert!(budgeted
            .ticks
            .iter()
            .any(|t| t.sessions_budget_exhausted > 0));
        // ...but every tenant ends fully converged, at the accuracy a
        // lone unbudgeted engine reaches on the same stream (the serve
        // path is bit-identical to sequential replay; here we pin the
        // scenario wiring end-to-end at the accuracy level).
        let unbudgeted = multi_tenant_replay(Method::Ds, 3, usize::MAX, &cfg).expect("runs");
        for (b, u) in budgeted.tenants.iter().zip(&unbudgeted.tenants) {
            assert_eq!(b.dataset, u.dataset);
            assert!(b.points.last().unwrap().converged);
            let (ba, ua) = (
                b.points.last().unwrap().accuracy,
                u.points.last().unwrap().accuracy,
            );
            assert!(
                (ba - ua).abs() < 0.02,
                "{}: budgeted {} vs unbudgeted {}",
                b.dataset,
                ba,
                ua
            );
        }
    }

    #[test]
    fn serve_final_state_matches_a_lone_stream_engine() {
        // The tenant wiring must not perturb inference: replay one
        // tenant's exact batch sequence through a bare StreamEngine and
        // compare labels bit-for-bit with the served result.
        let cfg = quick_config();
        let report = multi_tenant_replay(Method::Ds, 4, usize::MAX, &cfg).expect("runs");

        // Rebuild tenant 0's stream exactly as the scenario does.
        let dataset_id = PaperDataset::ALL
            .into_iter()
            .find(|d| d.task_type().is_categorical())
            .unwrap();
        let sim_cfg = dataset_id.config(cfg.scale);
        let budget = sim_cfg.num_tasks * sim_cfg.redundancy.max(1);
        let run = collect(&sim_cfg, AssignmentStrategy::Uniform, budget, cfg.seed).unwrap();
        let d = run.dataset;
        let batch_size = d.num_answers().div_ceil(4).max(1);
        let mut engine = StreamEngine::new(StreamConfig::new(
            Method::Ds,
            d.task_type(),
            d.num_tasks(),
            d.num_workers(),
        ))
        .unwrap();
        let mut last_accuracy = 0.0;
        for batch in StreamSession::from_dataset(&d, batch_size) {
            engine.push_batch(&batch.records).unwrap();
            let r = engine.converge_budgeted(ConvergeBudget::default()).unwrap();
            last_accuracy = accuracy(&d, &r.result.truths);
        }
        let served = &report.tenants[0];
        assert_eq!(served.dataset, dataset_id.name());
        assert_eq!(
            served.points.last().unwrap().accuracy.to_bits(),
            last_accuracy.to_bits(),
            "served accuracy must be bit-identical to the lone engine"
        );
    }
}
