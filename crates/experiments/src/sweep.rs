//! Redundancy sweeps — Figures 4, 5 and 6 (§6.3.1).
//!
//! For each redundancy `r`, sub-sample `r` answers per task, run every
//! applicable method, and average quality over repeated draws (the paper
//! repeats 30 times).
//!
//! The grid runs on the async [`SweepRunner`] (budgeted concurrency,
//! streaming progress, cooperative cancellation); aggregation happens in
//! grid order, so the result is bit-identical to the sequential blocking
//! reference [`redundancy_sweep_blocking`] — pinned by
//! `tests/sweep_runner.rs`.

use std::sync::Arc;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::{subsample_redundancy, Dataset};

use crate::runner::{CancelToken, CellOutcome, SweepCell, SweepProgress, SweepRunner};
use crate::{run::evaluate, EvalOutcome, ExpConfig};

/// One method's quality curve over redundancy values.
///
/// A point with **zero successful cells** is `f64::NAN`, not `0.0` — a
/// missing measurement must stay distinguishable from a genuinely zero
/// score; `failures` says how many of the repeats went missing.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// The method.
    pub method: Method,
    /// Mean accuracy per redundancy point (categorical) — empty for
    /// numeric datasets.
    pub accuracy: Vec<f64>,
    /// Mean F1 per redundancy point (decision-making only).
    pub f1: Vec<f64>,
    /// Mean MAE per redundancy point (numeric only).
    pub mae: Vec<f64>,
    /// Mean RMSE per redundancy point (numeric only).
    pub rmse: Vec<f64>,
    /// Per redundancy point: repeats that produced **no** outcome for
    /// this method (failed or cancelled cells). `0` everywhere on a
    /// clean sweep.
    pub failures: Vec<usize>,
}

/// Result of a full redundancy sweep on one dataset.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The dataset swept.
    pub dataset: PaperDataset,
    /// The redundancy values (x axis).
    pub redundancies: Vec<usize>,
    /// One curve per applicable method, Table 4 order.
    pub curves: Vec<SweepCurve>,
}

/// The independent RNG streams an experiment cell needs. A raw cell seed
/// must never feed two consumers: before this split, the data-sampling
/// RNG (sub-sample / golden split / bootstrap / collection) and every
/// method's init RNG were *identical streams*.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeedPurpose {
    /// Which `r` answers per task survive sub-sampling (Figures 4–6).
    Subsample = 1,
    /// Method initialisation (`InferenceOptions::seeded`).
    Inference = 2,
    /// Which tasks become golden in a hidden-test split (Figures 7–9).
    GoldenSplit = 3,
    /// The bootstrap qualification-test sample (Table 7).
    Bootstrap = 4,
    /// A simulated collection run (assignment comparison).
    Collection = 5,
}

/// SplitMix64 finaliser — the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for one `(base, rep, r_idx, purpose)` cell stream by
/// chaining SplitMix64 over the coordinates. Distinct purposes (and
/// distinct cells) get decorrelated streams; same inputs reproduce.
pub(crate) fn cell_seed(base: u64, rep: usize, r_idx: usize, purpose: SeedPurpose) -> u64 {
    let mut h = splitmix64(base);
    h = splitmix64(h ^ rep as u64);
    h = splitmix64(h ^ r_idx as u64);
    splitmix64(h ^ purpose as u64)
}

/// One grid cell's outputs: all methods on one `(rep, r)` sub-sample.
struct Cell {
    r_idx: usize,
    outcomes: Vec<Option<EvalOutcome>>,
}

/// The cell computation, shared verbatim by the async and blocking paths
/// (that sharing is what makes bit-identity a structural property).
fn run_cell(
    dataset: &Dataset,
    methods: &[Method],
    base_seed: u64,
    rep: usize,
    r_idx: usize,
    r: usize,
) -> Cell {
    let sub = subsample_redundancy(
        dataset,
        r,
        cell_seed(base_seed, rep, r_idx, SeedPurpose::Subsample),
    );
    let opts = InferenceOptions::seeded(cell_seed(base_seed, rep, r_idx, SeedPurpose::Inference));
    let outcomes = methods
        .iter()
        .map(|&m| evaluate(m, &sub, &opts, None))
        .collect();
    Cell { r_idx, outcomes }
}

/// Aggregate cells (in grid order) into per-method mean curves. Cells
/// that did not complete are `None` and count as failures at their
/// redundancy point.
fn aggregate(
    dataset_id: PaperDataset,
    redundancies: Vec<usize>,
    methods: &[Method],
    repeats: usize,
    cells: &[Option<Cell>],
) -> SweepResult {
    let nr = redundancies.len();
    let nm = methods.len();
    let mut acc = vec![vec![0.0; nr]; nm];
    let mut f1 = vec![vec![0.0; nr]; nm];
    let mut mae = vec![vec![0.0; nr]; nm];
    let mut rmse = vec![vec![0.0; nr]; nm];
    let mut counts = vec![vec![0usize; nr]; nm];
    for cell in cells.iter().flatten() {
        for (m_idx, outcome) in cell.outcomes.iter().enumerate() {
            if let Some(o) = outcome {
                acc[m_idx][cell.r_idx] += o.accuracy;
                f1[m_idx][cell.r_idx] += o.f1;
                mae[m_idx][cell.r_idx] += o.mae;
                rmse[m_idx][cell.r_idx] += o.rmse;
                counts[m_idx][cell.r_idx] += 1;
            }
        }
    }
    let curves = methods
        .iter()
        .enumerate()
        .map(|(m_idx, &method)| {
            let norm = |v: &[f64]| {
                v.iter()
                    .zip(&counts[m_idx])
                    .map(|(&x, &c)| if c > 0 { x / c as f64 } else { f64::NAN })
                    .collect::<Vec<f64>>()
            };
            SweepCurve {
                method,
                accuracy: norm(&acc[m_idx]),
                f1: norm(&f1[m_idx]),
                mae: norm(&mae[m_idx]),
                rmse: norm(&rmse[m_idx]),
                failures: counts[m_idx].iter().map(|&c| repeats - c).collect(),
            }
        })
        .collect();

    SweepResult {
        dataset: dataset_id,
        redundancies,
        curves,
    }
}

/// Shared sweep setup: generated dataset, resolved x-axis, method list.
fn sweep_inputs(
    dataset_id: PaperDataset,
    redundancies: Option<Vec<usize>>,
    config: &ExpConfig,
) -> (Dataset, Vec<usize>, Vec<Method>) {
    let dataset = dataset_id.generate(config.scale, config.seed);
    // Clip the x-axis by the true per-task maximum, not the rounded mean
    // redundancy — on ragged logs the mean rounds below the largest
    // answer count and silently truncated the axis.
    let max_r = dataset.max_task_degree();
    let redundancies = redundancies.unwrap_or_else(|| default_redundancies(dataset_id, max_r));
    let methods = Method::for_task_type(dataset.task_type());
    (dataset, redundancies, methods)
}

/// Run the redundancy sweep of Figures 4–6 on one dataset, on the async
/// [`SweepRunner`] at `config.threads` budgeted concurrency.
///
/// `redundancies` defaults (when `None`) to the paper's x-axes:
/// `1..=3` for D_Product, `1..=20` for D_PosSent, `1..=5` / `1..=9` for
/// S_Rel / S_Adult, `1..=10` for N_Emotion.
pub fn redundancy_sweep(
    dataset_id: PaperDataset,
    redundancies: Option<Vec<usize>>,
    config: &ExpConfig,
) -> SweepResult {
    let runner = SweepRunner::new(config.threads);
    redundancy_sweep_observed(
        dataset_id,
        redundancies,
        config,
        &runner,
        &CancelToken::new(),
        |_| {},
    )
}

/// [`redundancy_sweep`] with the runner, cancellation token, and
/// progress stream exposed: one [`SweepProgress`] event per grid cell in
/// completion order (cell labels are `"rep {k} r={r}"`). Cancelled or
/// panicked cells surface as NaN points / `failures` counts in the
/// aggregated curves instead of poisoning the sweep.
pub fn redundancy_sweep_observed(
    dataset_id: PaperDataset,
    redundancies: Option<Vec<usize>>,
    config: &ExpConfig,
    runner: &SweepRunner,
    token: &CancelToken,
    on_progress: impl FnMut(&SweepProgress),
) -> SweepResult {
    let (dataset, redundancies, methods) = sweep_inputs(dataset_id, redundancies, config);
    let dataset = Arc::new(dataset);
    let methods = Arc::new(methods);

    // One cell per (repeat, redundancy); each runs all methods on the
    // same sub-sample so methods are compared on identical data, exactly
    // as in the paper.
    let mut cells: Vec<SweepCell<Cell>> = Vec::new();
    for rep in 0..config.repeats {
        for (r_idx, &r) in redundancies.iter().enumerate() {
            let dataset = Arc::clone(&dataset);
            let methods = Arc::clone(&methods);
            let base_seed = config.seed;
            cells.push(SweepCell::new(format!("rep {rep} r={r}"), move || {
                run_cell(&dataset, &methods, base_seed, rep, r_idx, r)
            }));
        }
    }
    let outcome = runner.run(cells, token, on_progress);
    let cells: Vec<Option<Cell>> = outcome.cells.into_iter().map(CellOutcome::ok).collect();
    aggregate(dataset_id, redundancies, &methods, config.repeats, &cells)
}

/// The sequential blocking reference: the same cells, one after another
/// on the calling thread, aggregated in the same grid order. The async
/// path must reproduce this **bit-identically** (`tests/sweep_runner.rs`
/// pins it for the full Figures 4–6 grids).
pub fn redundancy_sweep_blocking(
    dataset_id: PaperDataset,
    redundancies: Option<Vec<usize>>,
    config: &ExpConfig,
) -> SweepResult {
    let (dataset, redundancies, methods) = sweep_inputs(dataset_id, redundancies, config);
    let mut cells: Vec<Option<Cell>> = Vec::new();
    for rep in 0..config.repeats {
        for (r_idx, &r) in redundancies.iter().enumerate() {
            cells.push(Some(run_cell(
                &dataset,
                &methods,
                config.seed,
                rep,
                r_idx,
                r,
            )));
        }
    }
    aggregate(dataset_id, redundancies, &methods, config.repeats, &cells)
}

/// The paper's per-dataset x-axes, clipped to the available redundancy
/// (`max_r` = the dataset's **maximum** per-task answer count).
pub fn default_redundancies(dataset: PaperDataset, max_r: usize) -> Vec<usize> {
    let upper = match dataset {
        PaperDataset::DProduct => 3,
        PaperDataset::DPosSent => 20,
        PaperDataset::SRel => 5,
        PaperDataset::SAdult => 9,
        PaperDataset::NEmotion => 10,
    };
    (1..=upper.min(max_r.max(1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExpConfig {
        ExpConfig {
            scale: 0.03,
            repeats: 2,
            seed: 5,
            threads: 4,
        }
    }

    #[test]
    fn decision_sweep_shape() {
        let res = redundancy_sweep(PaperDataset::DProduct, Some(vec![1, 3]), &tiny_config());
        assert_eq!(res.redundancies, vec![1, 3]);
        assert_eq!(res.curves.len(), 14, "Figure 4 compares 14 methods");
        for c in &res.curves {
            assert_eq!(c.accuracy.len(), 2);
            assert!(c.accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
            assert_eq!(c.failures, vec![0, 0], "clean sweep has no failures");
        }
    }

    #[test]
    fn quality_increases_with_redundancy_for_mv() {
        let cfg = ExpConfig {
            scale: 0.1,
            repeats: 3,
            seed: 5,
            threads: 4,
        };
        let res = redundancy_sweep(PaperDataset::DPosSent, Some(vec![1, 9]), &cfg);
        let mv = res.curves.iter().find(|c| c.method == Method::Mv).unwrap();
        assert!(
            mv.accuracy[1] > mv.accuracy[0] + 0.02,
            "MV accuracy should rise with r: {:?}",
            mv.accuracy
        );
    }

    #[test]
    fn numeric_sweep_reports_errors() {
        let cfg = ExpConfig {
            scale: 0.2,
            repeats: 2,
            seed: 5,
            threads: 4,
        };
        let res = redundancy_sweep(PaperDataset::NEmotion, Some(vec![2, 8]), &cfg);
        assert_eq!(res.curves.len(), 5, "Figure 6 compares 5 methods");
        for c in &res.curves {
            assert!(c.mae.iter().all(|&e| e > 0.0));
            assert!(c.rmse.iter().zip(&c.mae).all(|(r, m)| r >= m));
        }
        // Errors should shrink with more answers for Mean.
        let mean = res
            .curves
            .iter()
            .find(|c| c.method == Method::Mean)
            .unwrap();
        assert!(
            mean.mae[1] < mean.mae[0],
            "Mean MAE should fall with r: {:?}",
            mean.mae
        );
    }

    #[test]
    fn default_axes_match_paper() {
        assert_eq!(
            default_redundancies(PaperDataset::DProduct, 3),
            vec![1, 2, 3]
        );
        assert_eq!(default_redundancies(PaperDataset::DPosSent, 20).len(), 20);
        assert_eq!(default_redundancies(PaperDataset::NEmotion, 10).len(), 10);
        // Clipped when the log has fewer answers.
        assert_eq!(
            default_redundancies(PaperDataset::SAdult, 4),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn axis_clips_by_max_task_degree_not_rounded_mean() {
        // Regression: `default_redundancies` used to receive the *rounded
        // mean* redundancy. On a ragged log the mean rounds below the
        // largest per-task answer count and truncated the x-axis; the
        // sweep must reach every redundancy some task actually has.
        for id in PaperDataset::ALL {
            let cfg = tiny_config();
            let d = id.generate(cfg.scale, cfg.seed);
            let max_deg = d.max_task_degree();
            let mean_r = d.redundancy().round() as usize;
            assert!(
                max_deg >= mean_r,
                "{}: degree stats inconsistent",
                id.name()
            );
            let axis = default_redundancies(id, max_deg);
            let paper_upper = match id {
                PaperDataset::DProduct => 3,
                PaperDataset::DPosSent => 20,
                PaperDataset::SRel => 5,
                PaperDataset::SAdult => 9,
                PaperDataset::NEmotion => 10,
            };
            assert_eq!(
                *axis.last().unwrap(),
                paper_upper.min(max_deg.max(1)),
                "{}: axis must extend to the true max degree",
                id.name()
            );
        }
    }

    #[test]
    fn subsample_and_inference_seeds_are_decorrelated() {
        // Regression: both consumers used to receive the *same* seed, so
        // the sub-sampling RNG and every method's init RNG were identical
        // streams. The purpose-split streams must differ for every cell,
        // and cells must not collide with each other.
        let purposes = [
            SeedPurpose::Subsample,
            SeedPurpose::Inference,
            SeedPurpose::GoldenSplit,
            SeedPurpose::Bootstrap,
            SeedPurpose::Collection,
        ];
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 5, 7, u64::MAX] {
            for rep in 0..30 {
                for r_idx in 0..20 {
                    for purpose in purposes {
                        let s = cell_seed(base, rep, r_idx, purpose);
                        assert!(
                            seen.insert(s),
                            "stream collision at ({base},{rep},{r_idx},{purpose:?})"
                        );
                    }
                }
            }
        }
        // Deterministic: same coordinates, same seed.
        assert_eq!(
            cell_seed(7, 3, 4, SeedPurpose::Subsample),
            cell_seed(7, 3, 4, SeedPurpose::Subsample)
        );
    }

    #[test]
    fn empty_points_are_nan_with_failure_counts() {
        // Regression: a redundancy point with zero successful cells used
        // to aggregate to 0.0 — indistinguishable from a genuinely zero
        // score. Feed the aggregator a grid where every cell of one
        // column is missing.
        let methods = vec![Method::Mv, Method::Ds];
        let repeats = 3;
        let cells: Vec<Option<Cell>> = (0..repeats)
            .flat_map(|_| {
                vec![
                    Some(Cell {
                        r_idx: 0,
                        outcomes: vec![
                            Some(EvalOutcome {
                                accuracy: 0.5,
                                f1: 0.5,
                                mae: 0.0,
                                rmse: 0.0,
                                seconds: 0.0,
                                iterations: 1,
                                converged: true,
                            }),
                            None,
                        ],
                    }),
                    None, // the whole r_idx=1 column failed
                ]
            })
            .collect();
        let res = aggregate(
            PaperDataset::DProduct,
            vec![1, 2],
            &methods,
            repeats,
            &cells,
        );
        let mv = &res.curves[0];
        assert_eq!(mv.accuracy[0], 0.5);
        assert!(mv.accuracy[1].is_nan(), "missing point must be NaN, not 0");
        assert_eq!(mv.failures, vec![0, repeats]);
        // A method with no outcomes anywhere: NaN at every point, full
        // failure counts.
        let ds = &res.curves[1];
        assert!(ds.accuracy.iter().all(|a| a.is_nan()));
        assert_eq!(ds.failures, vec![repeats, repeats]);
    }
}
