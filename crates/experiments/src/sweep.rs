//! Redundancy sweeps — Figures 4, 5 and 6 (§6.3.1).
//!
//! For each redundancy `r`, sub-sample `r` answers per task, run every
//! applicable method, and average quality over repeated draws (the paper
//! repeats 30 times).

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::subsample_redundancy;

use crate::{parallel_map, run::evaluate, ExpConfig};

/// One method's quality curve over redundancy values.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// The method.
    pub method: Method,
    /// Mean accuracy per redundancy point (categorical) — empty for
    /// numeric datasets.
    pub accuracy: Vec<f64>,
    /// Mean F1 per redundancy point (decision-making only).
    pub f1: Vec<f64>,
    /// Mean MAE per redundancy point (numeric only).
    pub mae: Vec<f64>,
    /// Mean RMSE per redundancy point (numeric only).
    pub rmse: Vec<f64>,
}

/// Result of a full redundancy sweep on one dataset.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The dataset swept.
    pub dataset: PaperDataset,
    /// The redundancy values (x axis).
    pub redundancies: Vec<usize>,
    /// One curve per applicable method, Table 4 order.
    pub curves: Vec<SweepCurve>,
}

/// Run the redundancy sweep of Figures 4–6 on one dataset.
///
/// `redundancies` defaults (when `None`) to the paper's x-axes:
/// `1..=3` for D_Product, `1..=20` for D_PosSent, `1..=5` / `1..=9` for
/// S_Rel / S_Adult, `1..=10` for N_Emotion.
pub fn redundancy_sweep(
    dataset_id: PaperDataset,
    redundancies: Option<Vec<usize>>,
    config: &ExpConfig,
) -> SweepResult {
    let dataset = dataset_id.generate(config.scale, config.seed);
    let max_r = dataset.redundancy().round() as usize;
    let redundancies = redundancies.unwrap_or_else(|| default_redundancies(dataset_id, max_r));
    let methods = Method::for_task_type(dataset.task_type());

    // Jobs: one per (repeat, redundancy); each runs all methods on the
    // same sub-sample so methods are compared on identical data, exactly
    // as in the paper.
    struct Cell {
        r_idx: usize,
        outcomes: Vec<Option<crate::EvalOutcome>>,
    }
    let mut jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for rep in 0..config.repeats {
        for (r_idx, &r) in redundancies.iter().enumerate() {
            let dataset = &dataset;
            let methods = &methods;
            let seed = config.seed.wrapping_add(1000 * rep as u64 + r_idx as u64);
            jobs.push(Box::new(move || {
                let sub = subsample_redundancy(dataset, r, seed);
                let opts = InferenceOptions::seeded(seed);
                let outcomes = methods
                    .iter()
                    .map(|&m| evaluate(m, &sub, &opts, None))
                    .collect();
                Cell { r_idx, outcomes }
            }));
        }
    }
    let cells = parallel_map(config.threads, jobs);

    // Aggregate means.
    let nr = redundancies.len();
    let nm = methods.len();
    let mut acc = vec![vec![0.0; nr]; nm];
    let mut f1 = vec![vec![0.0; nr]; nm];
    let mut mae = vec![vec![0.0; nr]; nm];
    let mut rmse = vec![vec![0.0; nr]; nm];
    let mut counts = vec![vec![0usize; nr]; nm];
    for cell in cells {
        for (m_idx, outcome) in cell.outcomes.iter().enumerate() {
            if let Some(o) = outcome {
                acc[m_idx][cell.r_idx] += o.accuracy;
                f1[m_idx][cell.r_idx] += o.f1;
                mae[m_idx][cell.r_idx] += o.mae;
                rmse[m_idx][cell.r_idx] += o.rmse;
                counts[m_idx][cell.r_idx] += 1;
            }
        }
    }
    let curves = methods
        .iter()
        .enumerate()
        .map(|(m_idx, &method)| {
            let norm = |v: &[f64]| {
                v.iter()
                    .zip(&counts[m_idx])
                    .map(|(&x, &c)| if c > 0 { x / c as f64 } else { 0.0 })
                    .collect::<Vec<f64>>()
            };
            SweepCurve {
                method,
                accuracy: norm(&acc[m_idx]),
                f1: norm(&f1[m_idx]),
                mae: norm(&mae[m_idx]),
                rmse: norm(&rmse[m_idx]),
            }
        })
        .collect();

    SweepResult {
        dataset: dataset_id,
        redundancies,
        curves,
    }
}

/// The paper's per-dataset x-axes, clipped to the available redundancy.
pub fn default_redundancies(dataset: PaperDataset, max_r: usize) -> Vec<usize> {
    let upper = match dataset {
        PaperDataset::DProduct => 3,
        PaperDataset::DPosSent => 20,
        PaperDataset::SRel => 5,
        PaperDataset::SAdult => 9,
        PaperDataset::NEmotion => 10,
    };
    (1..=upper.min(max_r.max(1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExpConfig {
        ExpConfig {
            scale: 0.03,
            repeats: 2,
            seed: 5,
            threads: 4,
        }
    }

    #[test]
    fn decision_sweep_shape() {
        let res = redundancy_sweep(PaperDataset::DProduct, Some(vec![1, 3]), &tiny_config());
        assert_eq!(res.redundancies, vec![1, 3]);
        assert_eq!(res.curves.len(), 14, "Figure 4 compares 14 methods");
        for c in &res.curves {
            assert_eq!(c.accuracy.len(), 2);
            assert!(c.accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
        }
    }

    #[test]
    fn quality_increases_with_redundancy_for_mv() {
        let cfg = ExpConfig {
            scale: 0.1,
            repeats: 3,
            seed: 5,
            threads: 4,
        };
        let res = redundancy_sweep(PaperDataset::DPosSent, Some(vec![1, 9]), &cfg);
        let mv = res.curves.iter().find(|c| c.method == Method::Mv).unwrap();
        assert!(
            mv.accuracy[1] > mv.accuracy[0] + 0.02,
            "MV accuracy should rise with r: {:?}",
            mv.accuracy
        );
    }

    #[test]
    fn numeric_sweep_reports_errors() {
        let cfg = ExpConfig {
            scale: 0.2,
            repeats: 2,
            seed: 5,
            threads: 4,
        };
        let res = redundancy_sweep(PaperDataset::NEmotion, Some(vec![2, 8]), &cfg);
        assert_eq!(res.curves.len(), 5, "Figure 6 compares 5 methods");
        for c in &res.curves {
            assert!(c.mae.iter().all(|&e| e > 0.0));
            assert!(c.rmse.iter().zip(&c.mae).all(|(r, m)| r >= m));
        }
        // Errors should shrink with more answers for Mean.
        let mean = res
            .curves
            .iter()
            .find(|c| c.method == Method::Mean)
            .unwrap();
        assert!(
            mean.mae[1] < mean.mae[0],
            "Mean MAE should fall with r: {:?}",
            mean.mae
        );
    }

    #[test]
    fn default_axes_match_paper() {
        assert_eq!(
            default_redundancies(PaperDataset::DProduct, 3),
            vec![1, 2, 3]
        );
        assert_eq!(default_redundancies(PaperDataset::DPosSent, 20).len(), 20);
        assert_eq!(default_redundancies(PaperDataset::NEmotion, 10).len(), 10);
        // Clipped when the log has fewer answers.
        assert_eq!(
            default_redundancies(PaperDataset::SAdult, 4),
            vec![1, 2, 3, 4]
        );
    }
}
