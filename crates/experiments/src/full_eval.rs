//! Table 6 — quality and running time of every method on the complete
//! data of all five datasets (§6.3.1).

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;

use crate::{parallel_map, run::evaluate, EvalOutcome, ExpConfig};

/// One cell of Table 6: a method's outcome on a dataset (`None` when the
/// method does not apply — the paper's "×").
pub type Cell = Option<EvalOutcome>;

/// Table 6 in data form.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// The datasets evaluated (columns), in Table 5 order.
    pub datasets: Vec<PaperDataset>,
    /// The methods evaluated (rows), in Table 4 order.
    pub methods: Vec<Method>,
    /// `cells[m][d]` = method `m` on dataset `d`.
    pub cells: Vec<Vec<Cell>>,
}

/// Run every method on the complete data of every dataset. Quality cells
/// are averaged over `config.repeats` runs with distinct seeds; times are
/// per-run means.
pub fn table6(config: &ExpConfig) -> Table6 {
    let datasets: Vec<PaperDataset> = PaperDataset::ALL.to_vec();
    let methods: Vec<Method> = Method::ALL.to_vec();

    // Generate each dataset once.
    let data: Vec<crowd_data::Dataset> = datasets
        .iter()
        .map(|d| d.generate(config.scale, config.seed))
        .collect();

    // One job per (method, dataset): runs `repeats` times internally so a
    // single slow method does not serialise the whole table.
    struct Slot {
        m_idx: usize,
        d_idx: usize,
        cell: Cell,
    }
    let mut jobs: Vec<Box<dyn FnOnce() -> Slot + Send>> = Vec::new();
    for (m_idx, &method) in methods.iter().enumerate() {
        for (d_idx, dataset) in data.iter().enumerate() {
            let repeats = config.repeats;
            let base_seed = config.seed;
            jobs.push(Box::new(move || {
                let mut agg: Option<EvalOutcome> = None;
                for rep in 0..repeats {
                    let opts = InferenceOptions::seeded(base_seed + rep as u64);
                    match evaluate(method, dataset, &opts, None) {
                        Some(o) => {
                            let acc = agg.get_or_insert(EvalOutcome {
                                accuracy: 0.0,
                                f1: 0.0,
                                mae: 0.0,
                                rmse: 0.0,
                                seconds: 0.0,
                                iterations: 0,
                                converged: true,
                            });
                            acc.accuracy += o.accuracy / repeats as f64;
                            acc.f1 += o.f1 / repeats as f64;
                            acc.mae += o.mae / repeats as f64;
                            acc.rmse += o.rmse / repeats as f64;
                            acc.seconds += o.seconds / repeats as f64;
                            acc.iterations += o.iterations;
                            acc.converged &= o.converged;
                        }
                        None => {
                            return Slot {
                                m_idx,
                                d_idx,
                                cell: None,
                            }
                        }
                    }
                }
                Slot {
                    m_idx,
                    d_idx,
                    cell: agg,
                }
            }));
        }
    }
    let slots = parallel_map(config.threads, jobs);

    let mut cells = vec![vec![None; datasets.len()]; methods.len()];
    for s in slots {
        cells[s.m_idx][s.d_idx] = s.cell;
    }
    Table6 {
        datasets,
        methods,
        cells,
    }
}

impl Table6 {
    /// Look up a cell by method and dataset.
    pub fn cell(&self, method: Method, dataset: PaperDataset) -> &Cell {
        let m = self
            .methods
            .iter()
            .position(|&x| x == method)
            .expect("method in table");
        let d = self
            .datasets
            .iter()
            .position(|&x| x == dataset)
            .expect("dataset in table");
        &self.cells[m][d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_applicability() {
        let cfg = ExpConfig {
            scale: 0.02,
            repeats: 1,
            seed: 3,
            threads: 8,
        };
        let t = table6(&cfg);
        assert_eq!(t.methods.len(), 17);
        assert_eq!(t.datasets.len(), 5);

        // Numeric-only methods are × on categorical datasets and vice
        // versa, matching the paper's × pattern.
        assert!(t.cell(Method::Mean, PaperDataset::DProduct).is_none());
        assert!(t.cell(Method::Mean, PaperDataset::NEmotion).is_some());
        assert!(t.cell(Method::Mv, PaperDataset::NEmotion).is_none());
        assert!(t.cell(Method::Kos, PaperDataset::SRel).is_none());
        assert!(t.cell(Method::Kos, PaperDataset::DPosSent).is_some());
        assert!(t.cell(Method::Catd, PaperDataset::NEmotion).is_some());

        // Every decision-making method fills both D_ columns.
        for m in Method::for_task_type(crowd_data::TaskType::DecisionMaking) {
            assert!(
                t.cell(m, PaperDataset::DProduct).is_some(),
                "{} missing",
                m.name()
            );
        }
    }

    #[test]
    fn quality_cells_are_probabilities() {
        let cfg = ExpConfig {
            scale: 0.02,
            repeats: 1,
            seed: 3,
            threads: 8,
        };
        let t = table6(&cfg);
        for (m_idx, row) in t.cells.iter().enumerate() {
            for (d_idx, cell) in row.iter().enumerate() {
                if let Some(o) = cell {
                    if t.datasets[d_idx].task_type().is_categorical() {
                        assert!(
                            (0.0..=1.0).contains(&o.accuracy),
                            "{} on {}: accuracy {}",
                            t.methods[m_idx].name(),
                            t.datasets[d_idx].name(),
                            o.accuracy
                        );
                    } else {
                        assert!(o.mae > 0.0 && o.rmse >= o.mae);
                    }
                }
            }
        }
    }
}
