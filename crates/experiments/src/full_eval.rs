//! Table 6 — quality and running time of every method on the complete
//! data of all five datasets (§6.3.1).

use std::sync::Arc;

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;

use crate::runner::{CancelToken, CellOutcome, SweepCell, SweepProgress, SweepRunner};
use crate::{run::evaluate, EvalOutcome, ExpConfig};

/// One cell of Table 6: a method's outcome on a dataset (`None` when the
/// method does not apply — the paper's "×").
pub type Cell = Option<EvalOutcome>;

/// Table 6 in data form.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// The datasets evaluated (columns), in Table 5 order.
    pub datasets: Vec<PaperDataset>,
    /// The methods evaluated (rows), in Table 4 order.
    pub methods: Vec<Method>,
    /// `cells[m][d]` = method `m` on dataset `d`.
    pub cells: Vec<Vec<Cell>>,
    /// Cells lost to a panic or cancellation on the runner, with the
    /// cause — so a missing measurement stays distinguishable from the
    /// `None` a non-applicable method legitimately gets.
    pub lost: Vec<(Method, PaperDataset, String)>,
}

/// Run every method on the complete data of every dataset. Quality cells
/// are averaged over `config.repeats` runs with distinct seeds; times are
/// per-run means.
pub fn table6(config: &ExpConfig) -> Table6 {
    let runner = SweepRunner::new(config.threads);
    table6_observed(config, &runner, &CancelToken::new(), |_| {})
}

/// [`table6`] on a caller-supplied [`SweepRunner`], streaming one
/// progress event per (method × dataset) cell in completion order (cell
/// labels are `"{method}×{dataset}"`). Cells lost to cancellation or a
/// panic stay `None` in the grid and are recorded in [`Table6::lost`]
/// with their cause.
pub fn table6_observed(
    config: &ExpConfig,
    runner: &SweepRunner,
    token: &CancelToken,
    on_progress: impl FnMut(&SweepProgress),
) -> Table6 {
    let datasets: Vec<PaperDataset> = PaperDataset::ALL.to_vec();
    let methods: Vec<Method> = Method::ALL.to_vec();

    // Generate each dataset once, shared by every cell.
    let data: Arc<Vec<crowd_data::Dataset>> = Arc::new(
        datasets
            .iter()
            .map(|d| d.generate(config.scale, config.seed))
            .collect(),
    );

    // One cell per (method, dataset): runs `repeats` times internally so a
    // single slow method does not serialise the whole table.
    struct Slot {
        m_idx: usize,
        d_idx: usize,
        cell: Cell,
    }
    let mut grid: Vec<SweepCell<Slot>> = Vec::new();
    for (m_idx, &method) in methods.iter().enumerate() {
        for (d_idx, &dataset_id) in datasets.iter().enumerate() {
            let repeats = config.repeats;
            let base_seed = config.seed;
            let data = Arc::clone(&data);
            let label = format!("{}×{}", method.name(), dataset_id.name());
            grid.push(SweepCell::new(label, move || {
                let dataset = &data[d_idx];
                let mut agg: Option<EvalOutcome> = None;
                for rep in 0..repeats {
                    let opts = InferenceOptions::seeded(base_seed + rep as u64);
                    match evaluate(method, dataset, &opts, None) {
                        Some(o) => {
                            let acc = agg.get_or_insert(EvalOutcome {
                                accuracy: 0.0,
                                f1: 0.0,
                                mae: 0.0,
                                rmse: 0.0,
                                seconds: 0.0,
                                iterations: 0,
                                converged: true,
                            });
                            acc.accuracy += o.accuracy / repeats as f64;
                            acc.f1 += o.f1 / repeats as f64;
                            acc.mae += o.mae / repeats as f64;
                            acc.rmse += o.rmse / repeats as f64;
                            acc.seconds += o.seconds / repeats as f64;
                            acc.iterations += o.iterations;
                            acc.converged &= o.converged;
                        }
                        None => {
                            return Slot {
                                m_idx,
                                d_idx,
                                cell: None,
                            }
                        }
                    }
                }
                Slot {
                    m_idx,
                    d_idx,
                    cell: agg,
                }
            }));
        }
    }
    let outcome = runner.run(grid, token, on_progress);

    let mut cells = vec![vec![None; datasets.len()]; methods.len()];
    let mut lost = Vec::new();
    for (index, cell) in outcome.cells.into_iter().enumerate() {
        // Grid order is method-major: index = m_idx * |datasets| + d_idx.
        let (m_idx, d_idx) = (index / datasets.len(), index % datasets.len());
        match cell {
            CellOutcome::Completed(s) => cells[s.m_idx][s.d_idx] = s.cell,
            CellOutcome::Failed(msg) => lost.push((methods[m_idx], datasets[d_idx], msg)),
            CellOutcome::Cancelled => {
                lost.push((methods[m_idx], datasets[d_idx], "cancelled".to_string()))
            }
        }
    }
    Table6 {
        datasets,
        methods,
        cells,
        lost,
    }
}

impl Table6 {
    /// Look up a cell by method and dataset.
    pub fn cell(&self, method: Method, dataset: PaperDataset) -> &Cell {
        let m = self
            .methods
            .iter()
            .position(|&x| x == method)
            .expect("method in table");
        let d = self
            .datasets
            .iter()
            .position(|&x| x == dataset)
            .expect("dataset in table");
        &self.cells[m][d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_applicability() {
        let cfg = ExpConfig {
            scale: 0.02,
            repeats: 1,
            seed: 3,
            threads: 8,
        };
        let t = table6(&cfg);
        assert_eq!(t.methods.len(), 17);
        assert_eq!(t.datasets.len(), 5);

        // Numeric-only methods are × on categorical datasets and vice
        // versa, matching the paper's × pattern.
        assert!(t.cell(Method::Mean, PaperDataset::DProduct).is_none());
        assert!(t.cell(Method::Mean, PaperDataset::NEmotion).is_some());
        assert!(t.cell(Method::Mv, PaperDataset::NEmotion).is_none());
        assert!(t.cell(Method::Kos, PaperDataset::SRel).is_none());
        assert!(t.cell(Method::Kos, PaperDataset::DPosSent).is_some());
        assert!(t.cell(Method::Catd, PaperDataset::NEmotion).is_some());

        // Every decision-making method fills both D_ columns.
        for m in Method::for_task_type(crowd_data::TaskType::DecisionMaking) {
            assert!(
                t.cell(m, PaperDataset::DProduct).is_some(),
                "{} missing",
                m.name()
            );
        }
    }

    #[test]
    fn lost_cells_are_recorded_not_silently_crossed() {
        // A cancelled run loses every cell: the grid is all None (like
        // "×"), but `lost` names each (method, dataset) with its cause —
        // a missing measurement stays distinguishable from a genuinely
        // non-applicable method.
        let cfg = ExpConfig {
            scale: 0.02,
            repeats: 1,
            seed: 3,
            threads: 2,
        };
        let token = CancelToken::new();
        token.cancel();
        let t = table6_observed(&cfg, &SweepRunner::new(2), &token, |_| {});
        assert_eq!(t.lost.len(), t.methods.len() * t.datasets.len());
        assert!(t.lost.iter().all(|(_, _, cause)| cause == "cancelled"));
        assert!(t.cells.iter().flatten().all(|c| c.is_none()));
        // A clean run loses nothing.
        let clean = table6(&cfg);
        assert!(clean.lost.is_empty());
    }

    #[test]
    fn quality_cells_are_probabilities() {
        let cfg = ExpConfig {
            scale: 0.02,
            repeats: 1,
            seed: 3,
            threads: 8,
        };
        let t = table6(&cfg);
        for (m_idx, row) in t.cells.iter().enumerate() {
            for (d_idx, cell) in row.iter().enumerate() {
                if let Some(o) = cell {
                    if t.datasets[d_idx].task_type().is_categorical() {
                        assert!(
                            (0.0..=1.0).contains(&o.accuracy),
                            "{} on {}: accuracy {}",
                            t.methods[m_idx].name(),
                            t.datasets[d_idx].name(),
                            o.accuracy
                        );
                    } else {
                        assert!(o.mae > 0.0 && o.rmse >= o.mae);
                    }
                }
            }
        }
    }
}
